"""Tests for joint acyclicity and MFA — the sufficient-condition zoo.

The paper's introduction motivates the decidability question with the
"long line of research on identifying syntactic properties [ensuring]
termination" (citations [5, 8, 12]); these tests pin the classic
hierarchy   WA ⊆ JA ⊆ MFA ⊆ CT_so   and its strictness.
"""

from repro.graphs import (
    existential_dependency_graph,
    is_jointly_acyclic,
    is_weakly_acyclic,
    joint_acyclicity_witness,
    movement_sets,
)
from repro.parser import parse_program
from repro.termination import (
    SkolemTerm,
    decide_termination,
    is_mfa,
    mfa_witness,
    skolem_chase,
)
from repro.workloads import random_guarded, random_linear, random_simple_linear


class TestMovementSets:
    def test_head_positions_seed_movement(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        moves = movement_sets(rules)
        assert len(moves) == 1
        ((_, moved),) = moves.items()
        assert {str(p) for p in moved} == {"q[1]"}

    def test_transfer_through_rules(self):
        rules = parse_program(
            "p(X) -> exists Z . q(X, Z)\nq(X, Y) -> r(Y, Y)"
        )
        moves = movement_sets(rules)
        moved = moves[(0, "Z")]
        assert {str(p) for p in moved} == {"q[1]", "r[0]", "r[1]"}

    def test_blocked_transfer_with_repeated_variable(self):
        # x occurs at q[0] and q[1]; only q[1] is reachable by Z-nulls,
        # so x's transfer must NOT fire.
        rules = parse_program(
            "p(X) -> exists Z . q(X, Z)\nq(Y, Y) -> r(Y)"
        )
        moves = movement_sets(rules)
        moved = moves[(0, "Z")]
        assert {str(p) for p in moved} == {"q[1]"}


class TestJointAcyclicity:
    def test_diverging_rule_not_ja(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        assert not is_jointly_acyclic(rules)
        assert joint_acyclicity_witness(rules) is not None

    def test_terminating_chain_is_ja(self):
        rules = parse_program(
            "p(X) -> exists Z . q(X, Z)\nq(X, Y) -> r(X)"
        )
        assert is_jointly_acyclic(rules)
        assert joint_acyclicity_witness(rules) is None

    def test_ja_strictly_finer_than_wa(self):
        # The diagonal rule: not WA, but JA (the repeated body variable
        # cannot be covered by the existential's movement set).
        rules = parse_program("p(X, X) -> exists Z . p(X, Z)")
        assert not is_weakly_acyclic(rules)
        assert is_jointly_acyclic(rules)

    def test_wa_subset_ja_on_samples(self):
        samples = (
            [random_simple_linear(4, seed=s) for s in range(10)]
            + [random_linear(4, repeat_prob=0.5, seed=s) for s in range(10)]
            + [random_guarded(3, seed=s) for s in range(8)]
        )
        for rules in samples:
            if is_weakly_acyclic(rules):
                assert is_jointly_acyclic(rules), [str(r) for r in rules]

    def test_ja_sound_for_so_termination(self):
        samples = (
            [random_simple_linear(4, seed=s) for s in range(10)]
            + [random_guarded(3, seed=s) for s in range(8)]
        )
        for rules in samples:
            if is_jointly_acyclic(rules):
                verdict = decide_termination(rules, variant="semi_oblivious")
                assert verdict.terminating, [str(r) for r in rules]

    def test_graph_nodes_are_existentials(self):
        rules = parse_program(
            "p(X) -> exists Z, W . q(X, Z), r(X, W)\nq(X, Y) -> s(X)"
        )
        graph = existential_dependency_graph(rules)
        assert set(graph.nodes()) == {(0, "W"), (0, "Z")}


class TestSkolemTerm:
    def test_equality_by_structure(self):
        from repro.model import Constant

        a = SkolemTerm((0, "Z"), (Constant("*"),))
        b = SkolemTerm((0, "Z"), (Constant("*"),))
        assert a == b
        assert hash(a) == hash(b)

    def test_cyclic_detection(self):
        from repro.model import Constant

        base = SkolemTerm((0, "Z"), (Constant("*"),))
        nested_other = SkolemTerm((1, "W"), (base,))
        nested_same = SkolemTerm((0, "Z"), (nested_other,))
        assert not base.is_cyclic()
        assert not nested_other.is_cyclic()
        assert nested_same.is_cyclic()

    def test_depth(self):
        from repro.model import Constant

        base = SkolemTerm((0, "Z"), (Constant("*"),))
        assert base.depth() == 1
        assert SkolemTerm((1, "W"), (base,)).depth() == 2


class TestMFA:
    def test_diverging_rule_not_mfa(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        assert not is_mfa(rules)
        witness = mfa_witness(rules)
        assert witness is not None
        assert witness.is_cyclic()

    def test_terminating_chain_is_mfa(self):
        rules = parse_program(
            "p(X) -> exists Z . q(X, Z)\nq(X, Y) -> r(X)"
        )
        assert is_mfa(rules)
        assert mfa_witness(rules) is None

    def test_empty_program_is_mfa(self):
        assert is_mfa([])

    def test_mfa_strictly_finer_than_ja(self):
        # Two existentials feeding each other's rules but whose Skolem
        # terms never nest the same symbol twice: q-nulls trigger the
        # p-rule only through a position the p-rule drops.
        rules = parse_program(
            """
            a(X) -> exists Y . e(X, Y)
            e(X, Y) -> exists W . f(X, W)
            f(X, W) -> a(X)
            """
        )
        # JA: Y moves into e[1]; the e-rule's X sits at e[0] only — but
        # f's W moves to f[1] and f-rule's X at f[0]; check the zoo:
        ja = is_jointly_acyclic(rules)
        mfa = is_mfa(rules)
        exact = decide_termination(rules, variant="semi_oblivious")
        # All three must agree with ground truth on this terminating set.
        assert exact.terminating
        assert mfa
        assert ja  # JA also catches this one

    def test_ja_subset_mfa_on_samples(self):
        samples = (
            [random_simple_linear(4, seed=s) for s in range(10)]
            + [random_linear(3, repeat_prob=0.5, seed=s) for s in range(8)]
        )
        for rules in samples:
            if is_jointly_acyclic(rules):
                assert is_mfa(rules), [str(r) for r in rules]

    def test_mfa_sound_for_so_termination(self):
        samples = [random_simple_linear(4, seed=s) for s in range(12)]
        for rules in samples:
            if is_mfa(rules):
                verdict = decide_termination(rules, variant="semi_oblivious")
                assert verdict.terminating, [str(r) for r in rules]

    def test_skolem_chase_fixpoint_instance(self):
        from repro.chase import critical_instance

        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        instance, cyclic, fixpoint = skolem_chase(
            critical_instance(rules), rules
        )
        assert fixpoint and cyclic is None
        skolems = [
            t for t in instance.active_domain()
            if isinstance(t, SkolemTerm)
        ]
        assert len(skolems) == 1
