"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import pytest

from repro.model import Atom, Constant, Predicate, TGD, Variable


@pytest.fixture
def xyz():
    """Three standard variables."""
    return Variable("X"), Variable("Y"), Variable("Z")


def atom(name: str, *terms) -> Atom:
    """Shorthand atom builder: strings starting upper-case become
    variables, everything else constants."""
    converted = []
    for term in terms:
        if isinstance(term, str):
            if term[:1].isupper() or term[:1] == "_":
                converted.append(Variable(term))
            else:
                converted.append(Constant(term))
        else:
            converted.append(term)
    return Atom(Predicate(name, len(converted)), converted)


def tgd(body, head, label="") -> TGD:
    """Shorthand TGD builder accepting single atoms or lists."""
    if isinstance(body, Atom):
        body = [body]
    if isinstance(head, Atom):
        head = [head]
    return TGD(body, head, label=label)
