"""Tests for conjunctive queries and universality checks."""

import pytest

from repro.chase import semi_oblivious_chase
from repro.cq import ConjunctiveQuery, is_model, is_model_of, is_universal_for
from repro.model import Constant, Instance, Null, Variable
from repro.parser import parse_atom, parse_database, parse_program
from tests.conftest import atom


class TestConstruction:
    def test_needs_atoms(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([], [])

    def test_answer_variables_must_occur(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([Variable("W")], [parse_atom("p(X)")])

    def test_boolean_query(self):
        query = ConjunctiveQuery([], [parse_atom("p(X)")])
        assert query.is_boolean()

    def test_equality(self):
        a = ConjunctiveQuery([Variable("X")], [parse_atom("p(X)")])
        b = ConjunctiveQuery([Variable("X")], [parse_atom("p(X)")])
        assert a == b and hash(a) == hash(b)


class TestAnswers:
    def test_naive_answers(self):
        inst = Instance([atom("p", "a"), atom("p", "b")])
        query = ConjunctiveQuery([Variable("X")], [parse_atom("p(X)")])
        assert {t[0].name for t in query.answers(inst)} == {"a", "b"}

    def test_answers_deduplicated(self):
        inst = Instance([atom("e", "a", "b"), atom("e", "a", "c")])
        query = ConjunctiveQuery([Variable("X")],
                                 [parse_atom("e(X, Y)")])
        assert len(list(query.answers(inst))) == 1

    def test_join_query(self):
        inst = Instance(
            [atom("e", "a", "b"), atom("e", "b", "c"), atom("e", "c", "a")]
        )
        x, z = Variable("X"), Variable("Z")
        query = ConjunctiveQuery(
            [x, z], [parse_atom("e(X, Y)"), parse_atom("e(Y, Z)")]
        )
        answers = set(query.answers(inst))
        assert (Constant("a"), Constant("c")) in answers
        assert len(answers) == 3

    def test_certain_answers_filter_nulls(self):
        from repro.model import Atom, Predicate

        inst = Instance(
            [atom("p", "a"), Atom(Predicate("p", 1), [Null(1)])]
        )
        query = ConjunctiveQuery([Variable("X")], [parse_atom("p(X)")])
        certain = query.certain_answers(inst)
        assert certain == [(Constant("a"),)]

    def test_certain_answers_sorted(self):
        inst = Instance([atom("p", "b"), atom("p", "a")])
        query = ConjunctiveQuery([Variable("X")], [parse_atom("p(X)")])
        names = [t[0].name for t in query.certain_answers(inst)]
        assert names == ["a", "b"]

    def test_holds_in(self):
        inst = Instance([atom("p", "a")])
        assert ConjunctiveQuery([], [parse_atom("p(X)")]).holds_in(inst)
        assert not ConjunctiveQuery([], [parse_atom("q(X)")]).holds_in(inst)


class TestCertainAnswersViaChase:
    def test_certain_answers_on_universal_model(self):
        rules = parse_program(
            "emp(X) -> exists D . works(X, D)\nworks(X, D) -> dept(D)"
        )
        db = parse_database("emp(ada)")
        result = semi_oblivious_chase(db, rules)
        assert result.terminated
        # dept(D): only a null witness exists -> no certain answers.
        query = ConjunctiveQuery([Variable("D")], [parse_atom("dept(D)")])
        assert query.certain_answers(result.instance) == []
        # but the boolean query is certain.
        boolean = ConjunctiveQuery([], [parse_atom("dept(D)")])
        assert boolean.holds_in(result.instance)


class TestModelChecks:
    RULES = parse_program("p(X) -> exists Z . q(X, Z)")

    def test_is_model_positive(self):
        inst = Instance([atom("p", "a"), atom("q", "a", "w")])
        assert is_model(inst, self.RULES)

    def test_is_model_negative(self):
        inst = Instance([atom("p", "a")])
        assert not is_model(inst, self.RULES)

    def test_is_model_of_requires_database(self):
        db = parse_database("p(a)")
        inst = Instance([atom("q", "a", "w")])
        assert not is_model_of(inst, db, self.RULES)

    def test_chase_result_is_model_of_inputs(self):
        db = parse_database("p(a)\np(b)")
        result = semi_oblivious_chase(db, self.RULES)
        assert is_model_of(result.instance, db, self.RULES)

    def test_universality_direction(self):
        db = parse_database("p(a)")
        result = semi_oblivious_chase(db, self.RULES)
        model = Instance([atom("p", "a"), atom("q", "a", "b")])
        assert is_universal_for(result.instance, model)
        # The converse fails: the model has a constant the chase lacks.
        assert not is_universal_for(model, result.instance)
