"""Unit tests for the type-saturation engine (the Theorem 4 core)."""

import pytest

from repro.errors import BudgetExceededError, UnsupportedClassError
from repro.model import Constant, Predicate
from repro.parser import parse_database, parse_program
from repro.termination import TypeAnalysis
from repro.termination.abstraction import FRESH


class TestConstruction:
    def test_rejects_unguarded(self):
        rules = parse_program("p(X, Y), q(Y, Z) -> r(X, Z)")
        with pytest.raises(UnsupportedClassError):
            TypeAnalysis(rules)

    def test_root_is_critical_instance_abstraction(self):
        rules = parse_program("p(X, Y) -> exists Z . q(Y, Z)")
        analysis = TypeAnalysis(rules)
        # single constant *, all patterns over it
        assert analysis.num_constants == 1
        assert len(analysis.root.cloud) == 2  # p(*,*), q(*,*)

    def test_program_constants_widen_root(self):
        rules = parse_program("p(X, a) -> q(X)")
        analysis = TypeAnalysis(rules)
        assert analysis.num_constants == 2
        p = Predicate("p", 2)
        assert sum(1 for pr, _ in analysis.root.cloud if pr == p) == 4

    def test_standard_adds_three_constants_and_zero_one(self):
        rules = parse_program("p(X) -> q(X)")
        analysis = TypeAnalysis(rules, standard=True)
        assert analysis.num_constants == 3
        assert "zero" in analysis.schema
        assert "one" in analysis.schema

    def test_standard_and_database_exclusive(self):
        rules = parse_program("p(X) -> q(X)")
        with pytest.raises(ValueError):
            TypeAnalysis(rules, standard=True,
                         database=parse_database("p(a)"))

    def test_database_root(self):
        rules = parse_program("p(X) -> q(X)")
        analysis = TypeAnalysis(rules, database=parse_database("p(a)\np(b)"))
        assert analysis.num_constants == 2
        assert len(analysis.root.cloud) == 2


class TestSaturationSemantics:
    def test_full_rules_close_locally(self):
        rules = parse_program("p(X) -> q(X)\nq(X) -> r(X)")
        analysis = TypeAnalysis(rules, database=parse_database("p(a)"))
        analysis.saturate()
        cloud = analysis.saturated_cloud(analysis.root)
        names = {pred.name for pred, _ in cloud}
        assert names == {"p", "q", "r"}

    def test_up_propagation_through_children(self):
        # a(X) creates e(X, Y); the child derives back a fact over the
        # inherited X — the parent's cloud must receive marked(X).
        rules = parse_program(
            """
            a(X) -> exists Y . e(X, Y)
            e(X, Y) -> marked(X)
            """
        )
        analysis = TypeAnalysis(rules, database=parse_database("a(c)"))
        analysis.saturate()
        cloud = analysis.saturated_cloud(analysis.root)
        marked = Predicate("marked", 1)
        c_class = analysis.constant_class[Constant("c")]
        assert (marked, (c_class,)) in cloud

    def test_iterated_up_and_down_propagation(self):
        # Two levels: the grandchild's derivation must reach the root.
        rules = parse_program(
            """
            a(X) -> exists Y . e(X, Y)
            e(X, Y) -> exists Z . f(Y, Z)
            f(Y, Z) -> done(Y)
            e(X, Y), done(Y) -> ok(X)
            """
        )
        analysis = TypeAnalysis(rules, database=parse_database("a(c)"))
        analysis.saturate()
        cloud = analysis.saturated_cloud(analysis.root)
        ok = Predicate("ok", 1)
        c_class = analysis.constant_class[Constant("c")]
        assert (ok, (c_class,)) in cloud

    def test_child_edges_have_registered_targets(self):
        rules = parse_program("g(X, Y), q(Y) -> exists Z . g(Y, Z), q(Z)")
        analysis = TypeAnalysis(rules)
        analysis.saturate()
        for bag_type in list(analysis.table):
            for edge in analysis.child_edges(bag_type):
                assert edge.target in analysis.table

    def test_flow_marks_inherited_and_fresh(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        analysis = TypeAnalysis(rules)
        analysis.saturate()
        flows = [
            sorted(edge.flow.values(), key=str)
            for bag_type in analysis.table
            for edge in analysis.child_edges(bag_type)
        ]
        assert any(FRESH in flow for flow in flows)

    def test_trigger_classes_oblivious_superset_of_semi(self):
        rules = parse_program("p(X, Y) -> exists Z . q(X, Z)")
        analysis = TypeAnalysis(rules)
        analysis.saturate()
        for bag_type in analysis.table:
            for edge in analysis.child_edges(bag_type):
                assert edge.trigger_so <= edge.trigger_o

    def test_type_budget_enforced(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        with pytest.raises(BudgetExceededError):
            analysis = TypeAnalysis(rules, max_types=1)
            analysis.saturate()

    def test_type_count_stable_after_saturation(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        analysis = TypeAnalysis(rules)
        analysis.saturate()
        count = analysis.type_count()
        analysis.saturate()
        assert analysis.type_count() == count
