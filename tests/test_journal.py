"""The write-ahead ingest journal: durability, replay, idempotency.

The load-bearing tests rebuild a service over the same store directory
after simulated crash points — a journaled-but-unacknowledged delta
must be replayed to exactly the state an uninterrupted run reaches,
and a torn trailing record must be truncated, never trusted.
"""

import os

import pytest

from repro.chase import ChaseVariant
from repro.chase.incremental import ChaseSession
from repro.parser import parse_database, parse_fact, parse_program
from repro.serve import ChaseService
from repro.storage import JOURNAL_FILE, IngestJournal
from repro.storage.journal import MAX_ACKS, _frame

RULES = parse_program(
    """
    e(X, Y) -> p(X, Y)
    p(X, Y), e(Y, Z) -> p(X, Z)
    """
)


def facts(*texts):
    return [parse_fact(t) for t in texts]


def store_session(tmp_path, name="store"):
    path = str(tmp_path / name)
    return ChaseSession.start(
        parse_database("e(n0, n1)\ne(n1, n2)"), RULES,
        variant=ChaseVariant.SEMI_OBLIVIOUS, save=path,
    ), path


# -- record round-trips ------------------------------------------------------


def test_delta_roundtrip_and_pending(tmp_path):
    path = str(tmp_path / JOURNAL_FILE)
    journal = IngestJournal(path)
    delta = facts("e(n2, n3)", "p(a, b)")
    journal.append_delta("d1", delta)
    assert "d1" in journal.pending

    reopened = IngestJournal(path)
    assert list(reopened.pending) == ["d1"]
    assert reopened.pending["d1"] == delta
    assert reopened.torn_bytes == 0


def test_ack_covers_delta_and_replays_response(tmp_path):
    path = str(tmp_path / JOURNAL_FILE)
    journal = IngestJournal(path)
    journal.append_delta("d1", facts("e(n2, n3)"))
    journal.append_ack("d1", {"watermark": 7, "new_facts": 2})

    reopened = IngestJournal(path)
    assert not reopened.pending
    assert reopened.recorded("d1") == {"watermark": 7, "new_facts": 2}
    assert reopened.recorded("unknown") is None


def test_torn_tail_is_truncated_not_fatal(tmp_path):
    path = str(tmp_path / JOURNAL_FILE)
    journal = IngestJournal(path)
    journal.append_delta("d1", facts("e(n2, n3)"))
    journal.append_delta("d2", facts("e(n3, n4)"))
    # Tear the final record: keep the first, chop the second mid-way.
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(size - 5)

    reopened = IngestJournal(path)
    assert list(reopened.pending) == ["d1"]
    assert reopened.torn_bytes > 0
    # The truncation is durable: a third open sees a clean file.
    assert IngestJournal(path).torn_bytes == 0


def test_garbage_tail_is_truncated(tmp_path):
    path = str(tmp_path / JOURNAL_FILE)
    journal = IngestJournal(path)
    journal.append_delta("d1", facts("e(n2, n3)"))
    with open(path, "ab") as fh:
        fh.write(b"not a journal record at all")
    reopened = IngestJournal(path)
    assert list(reopened.pending) == ["d1"]
    assert reopened.torn_bytes > 0


def test_corrupt_crc_rejects_record(tmp_path):
    path = str(tmp_path / JOURNAL_FILE)
    journal = IngestJournal(path)
    journal.append_delta("d1", facts("e(n2, n3)"))
    # Flip one payload byte; the CRC must catch it.
    with open(path, "r+b") as fh:
        fh.seek(-1, os.SEEK_END)
        last = fh.read(1)
        fh.seek(-1, os.SEEK_END)
        fh.write(bytes([last[0] ^ 0xFF]))
    reopened = IngestJournal(path)
    assert not reopened.pending
    assert reopened.torn_bytes > 0


def test_ack_window_is_bounded_and_compaction_keeps_pending(tmp_path):
    path = str(tmp_path / JOURNAL_FILE)
    journal = IngestJournal(path, compact_bytes=1)  # compact every ack
    journal.append_delta("stuck", facts("e(n2, n3)"))
    for i in range(MAX_ACKS + 10):
        journal.append_delta(f"d{i}", facts(f"e(a{i}, b{i})"))
        journal.append_ack(f"d{i}", {"i": i})
    assert len(journal.acked) == MAX_ACKS
    assert journal.recorded("d0") is None  # aged out of the window
    assert journal.recorded(f"d{MAX_ACKS + 9}") == {"i": MAX_ACKS + 9}

    reopened = IngestJournal(path)
    assert list(reopened.pending) == ["stuck"]
    assert len(reopened.acked) == MAX_ACKS


def test_compaction_shrinks_the_file(tmp_path):
    path = str(tmp_path / JOURNAL_FILE)
    journal = IngestJournal(path, compact_bytes=10**9)  # never auto
    wide = facts(*[f"e(x{i}, y{i})" for i in range(50)])
    for i in range(20):
        journal.append_delta(f"d{i}", wide)
        journal.append_ack(f"d{i}", {"i": i})
    before = os.path.getsize(path)
    journal.compact()
    after = os.path.getsize(path)
    assert after < before  # covered delta payloads dropped
    reopened = IngestJournal(path)
    assert not reopened.pending
    assert len(reopened.acked) == 20


def test_unknown_record_kind_stops_the_scan(tmp_path):
    path = str(tmp_path / JOURNAL_FILE)
    journal = IngestJournal(path)
    journal.append_delta("d1", facts("e(n2, n3)"))
    with open(path, "ab") as fh:
        fh.write(_frame(ord("Z"), b"future record kind"))
    reopened = IngestJournal(path)
    assert list(reopened.pending) == ["d1"]
    assert reopened.torn_bytes > 0


# -- service integration: the crash window -----------------------------------


def test_service_replays_unacked_delta_after_crash(tmp_path):
    """Crash point: after the WAL fsync, before the chase leg — the
    restarted service must replay the delta and reach the state the
    uninterrupted run reaches."""
    session, path = store_session(tmp_path)
    service = ChaseService()
    service.add_session("default", session, journal=True)
    service.close()

    # Simulate the crash window: journal the delta, never run the leg.
    journal = IngestJournal.attach(path)
    journal.append_delta("d1", facts("e(n2, n3)"))

    resumed = ChaseSession.resume(path)
    recovered = ChaseService()
    resident = recovered.add_session("default", resumed, journal=True)
    assert resident.ingests == 1  # the replayed delta
    out = recovered.query("q(X, Y) :- p(X, Y)", certain=True)
    assert "q(n0, n3)" in out["answers"]  # transitively derived
    # The retried ingest_id dedupes to the recorded replay response.
    retry = recovered.ingest(["e(n2, n3)"], ingest_id="d1")
    assert retry["replayed"] is True
    assert retry["watermark"] == out["watermark"]
    recovered.close()


def test_replay_matches_uninterrupted_run(tmp_path):
    """Byte-level equivalence: crash-and-replay produces the same
    manifest watermark and answers as never crashing."""
    clean_session, _clean = store_session(tmp_path, "clean")
    clean = ChaseService()
    clean.add_session("default", clean_session, journal=True)
    clean.ingest(["e(n2, n3)"], ingest_id="d1")
    expected = clean.query("q(X, Y) :- p(X, Y)", certain=True)
    clean.close()

    crash_session, path = store_session(tmp_path, "crashed")
    crash = ChaseService()
    crash.add_session("default", crash_session, journal=True)
    crash.close()
    IngestJournal.attach(path).append_delta("d1", facts("e(n2, n3)"))

    recovered = ChaseService()
    recovered.add_session(
        "default", ChaseSession.resume(path), journal=True
    )
    got = recovered.query("q(X, Y) :- p(X, Y)", certain=True)
    assert sorted(got["answers"]) == sorted(expected["answers"])
    assert got["watermark"] == expected["watermark"]
    recovered.close()


def test_ingest_without_id_gets_synthesized_key(tmp_path):
    session, _path = store_session(tmp_path)
    service = ChaseService()
    service.add_session("default", session, journal=True)
    out = service.ingest(["e(n2, n3)"])
    assert out["ingest_id"].startswith("auto-")
    service.close()


def test_journal_true_requires_durable_session():
    session = ChaseSession.start(
        parse_database("e(n0, n1)"), RULES,
        variant=ChaseVariant.SEMI_OBLIVIOUS,
    )
    service = ChaseService()
    with pytest.raises(ValueError, match="durable"):
        service.add_session("default", session, journal=True)
    session.close()


def test_store_path_property(tmp_path):
    durable, path = store_session(tmp_path)
    assert durable.store_path == path
    durable.close()
    memory = ChaseSession.start(
        parse_database("e(n0, n1)"), RULES,
        variant=ChaseVariant.SEMI_OBLIVIOUS,
    )
    assert memory.store_path is None
    memory.close()
