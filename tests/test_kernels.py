"""The batch execution tier ≡ the tuple engine ≡ the oracle.

``repro.query.kernels`` adds two alternative evaluation kernels to the
compiled-query stack: ``vector`` (NumPy-vectorized hash joins over the
interned int columns, with a pure-Python twin when NumPy is absent)
and ``wcoj`` (leapfrog worst-case-optimal multiway intersection).  The
contract this suite enforces, on randomized chase-grown instances with
labelled nulls and Skolem terms:

* ``vector`` is **order-exact**: its answer *sequence* equals the
  tuple engine's, byte for byte — which is why the chase engines may
  route trigger discovery through it without perturbing results.
* ``wcoj`` is **set-exact**: same answer set, enumeration order is the
  trie order instead of the DFS order.
* Both agree with the retained object-level oracle
  (:func:`repro.model.naive_homomorphisms`).
* The pure-Python fallback (``_np`` forced to ``None``) is
  answer-identical to the NumPy path, order included.
* A chase run under ``kernel="vector"``/``"auto"`` is byte-identical
  to the default: same fact sequence, same step trigger keys.
"""

import random

import pytest

from repro.chase import ChaseVariant, critical_instance, run_chase
from repro.cq import ConjunctiveQuery
from repro.model import (
    Atom,
    Constant,
    Database,
    Instance,
    Null,
    Predicate,
    TGD,
    Variable,
    naive_homomorphisms,
)
from repro.query import (
    CompiledQuery,
    KERNELS,
    choose_kernel,
    is_cyclic,
    numpy_active,
)
from repro.query import kernels as kernels_module
from repro.termination import skolem_chase
from tests.conftest import atom

X, Y, Z, W = (Variable(n) for n in ("X", "Y", "Z", "W"))


def oracle_answer_set(answer_variables, atoms, instance):
    return {
        tuple(assignment[v] for v in answer_variables)
        for assignment in naive_homomorphisms(atoms, instance)
    }


def _random_program(rng):
    preds = [Predicate(f"p{i}", rng.randint(1, 3)) for i in range(3)]
    variables = [Variable(n) for n in ("X", "Y", "Z", "W")]
    consts = [Constant(c) for c in ("a", "b")]
    rules = []
    for _ in range(rng.randint(2, 4)):
        body = []
        for _ in range(rng.randint(1, 2)):
            pred = rng.choice(preds)
            body.append(Atom(pred, [
                rng.choice(consts) if rng.random() < 0.15
                else rng.choice(variables[:3])
                for _ in range(pred.arity)
            ]))
        body_vars = {t for a in body for t in a.variables()}
        head_pred = rng.choice(preds)
        head_pool = sorted(body_vars) + [variables[3]]
        head = [Atom(head_pred, [
            rng.choice(head_pool) for _ in range(head_pred.arity)
        ])]
        rules.append(TGD(body, head))
    return rules, preds, consts


def _random_query(rng, preds):
    variables = [Variable(n) for n in ("X", "Y", "Z")]
    body = []
    for _ in range(rng.randint(1, 3)):
        pred = rng.choice(preds)
        body.append(Atom(pred, [
            rng.choice(variables) for _ in range(pred.arity)
        ]))
    body_vars = sorted({t for a in body for t in a.variables()})
    answer = [v for v in body_vars if rng.random() < 0.6]
    return ConjunctiveQuery(answer, body)


def _grown(rng, rules, preds, consts):
    db = Database()
    for _ in range(rng.randint(3, 7)):
        pred = rng.choice(preds)
        db.add(Atom(pred, [rng.choice(consts)
                           for _ in range(pred.arity)]))
    return run_chase(db, rules, ChaseVariant.SEMI_OBLIVIOUS,
                     max_steps=80).instance


def _edge_instance(n=40, extra=()):
    """A sparse digraph with planted triangles for cyclic queries."""
    inst = Instance()
    for i in range(n):
        inst.add(atom("e", f"v{i}", f"v{(i * 7 + 3) % n}"))
    for a, b in extra:
        inst.add(atom("e", a, b))
    return inst


TRIANGLE = [atom("e", "X", "Y"), atom("e", "Y", "Z"), atom("e", "Z", "X")]


class TestKernelAnswerEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_vector_is_order_exact_and_oracle_equal(self, seed):
        rng = random.Random(seed + 2000)
        rules, preds, consts = _random_program(rng)
        grown = _grown(rng, rules, preds, consts)
        for _ in range(4):
            query = _random_query(rng, preds)
            tuple_answers = list(query.answers(grown, kernel="tuple"))
            vector_answers = list(query.answers(grown, kernel="vector"))
            # Sequence equality, not just set equality.
            assert vector_answers == tuple_answers
            assert set(tuple_answers) == oracle_answer_set(
                query.answer_variables, query.atoms, grown
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_wcoj_is_set_exact_on_chase_grown(self, seed):
        rng = random.Random(seed + 3000)
        rules, preds, consts = _random_program(rng)
        grown = _grown(rng, rules, preds, consts)
        for _ in range(4):
            query = _random_query(rng, preds)
            oracle = oracle_answer_set(
                query.answer_variables, query.atoms, grown
            )
            assert set(query.answers(grown, kernel="wcoj")) == oracle

    @pytest.mark.parametrize("seed", range(4))
    def test_kernels_agree_on_skolem_instances(self, seed):
        rng = random.Random(seed + 4000)
        rules, preds, consts = _random_program(rng)
        grown, _, _ = skolem_chase(critical_instance(rules), rules,
                                   max_steps=200)
        for _ in range(3):
            query = _random_query(rng, preds)
            tuple_answers = list(query.answers(grown, kernel="tuple"))
            assert (list(query.answers(grown, kernel="vector"))
                    == tuple_answers)
            assert (set(query.answers(grown, kernel="wcoj"))
                    == set(tuple_answers))

    @pytest.mark.parametrize("seed", range(5))
    def test_certain_answers_agree_across_kernels(self, seed):
        rng = random.Random(seed + 5000)
        rules, preds, consts = _random_program(rng)
        grown = _grown(rng, rules, preds, consts)
        for _ in range(3):
            query = _random_query(rng, preds)
            expected = query.certain_answers(grown, kernel="tuple")
            assert query.certain_answers(grown, kernel="vector") == expected
            assert query.certain_answers(grown, kernel="wcoj") == expected
            nulls = grown.nulls()
            for answer in expected:
                assert not any(isinstance(t, Null) for t in answer)
            del nulls

    @pytest.mark.parametrize("seed", range(5))
    def test_boolean_queries_agree_across_kernels(self, seed):
        rng = random.Random(seed + 6000)
        rules, preds, consts = _random_program(rng)
        grown = _grown(rng, rules, preds, consts)
        for _ in range(4):
            query = _random_query(rng, preds)
            boolean = ConjunctiveQuery([], query.atoms)
            expected = boolean.holds_in(grown, kernel="tuple")
            assert boolean.holds_in(grown, kernel="vector") == expected
            assert boolean.holds_in(grown, kernel="wcoj") == expected

    def test_auto_matches_tuple(self):
        inst = _edge_instance(extra=[("v1", "v0")])
        query = ConjunctiveQuery([X, Z], TRIANGLE)
        assert (set(query.answers(inst, kernel="auto"))
                == set(query.answers(inst, kernel="tuple")))

    def test_triangle_query_wcoj(self):
        inst = _edge_instance(
            n=30,
            extra=[("t0", "t1"), ("t1", "t2"), ("t2", "t0")],
        )
        query = ConjunctiveQuery([X, Y, Z], TRIANGLE)
        oracle = oracle_answer_set([X, Y, Z], TRIANGLE, inst)
        assert set(query.answers(inst, kernel="wcoj")) == oracle
        assert set(query.answers(inst, kernel="vector")) == oracle
        assert (Constant("t0"), Constant("t1"), Constant("t2")) in oracle


class TestPurePythonFallback:
    @pytest.mark.parametrize("seed", range(5))
    def test_fallback_is_answer_identical(self, seed, monkeypatch):
        rng = random.Random(seed + 7000)
        rules, preds, consts = _random_program(rng)
        grown = _grown(rng, rules, preds, consts)
        queries = [_random_query(rng, preds) for _ in range(3)]
        with_np = [
            (list(q.answers(grown, kernel="vector")),
             sorted(q.answers(grown, kernel="wcoj")))
            for q in queries
        ]
        monkeypatch.setattr(kernels_module, "_np", None)
        assert not numpy_active()
        without_np = [
            (list(q.answers(Instance(grown.facts()), kernel="vector")),
             sorted(q.answers(Instance(grown.facts()), kernel="wcoj")))
            for q in queries
        ]
        assert without_np == with_np

    def test_fallback_chase_is_byte_identical(self, monkeypatch):
        rules, db = _chase_workload()
        baseline = run_chase(db, rules, ChaseVariant.SEMI_OBLIVIOUS,
                             max_steps=400, kernel="tuple")
        monkeypatch.setattr(kernels_module, "_np", None)
        forced = run_chase(db, rules, ChaseVariant.SEMI_OBLIVIOUS,
                           max_steps=400, kernel="vector")
        assert forced.instance.facts() == baseline.instance.facts()


def _chase_workload():
    """A join-heavy program over a seeded edge relation — enough rows
    that the batch tier actually engages in discovery."""
    rules = [
        TGD([atom("e", "X", "Y"), atom("e", "Y", "Z")],
            [atom("p", "X", "Z")]),
        TGD([atom("p", "X", "Y")],
            [Atom(Predicate("q", 2), [X, W])]),  # existential W
        TGD([atom("q", "X", "Y"), atom("e", "X", "Z")],
            [atom("r", "Y", "Z")]),
    ]
    db = Database()
    for i in range(60):
        db.add(atom("e", f"v{i}", f"v{(i * 11 + 5) % 60}"))
    return rules, db


class TestChaseByteIdentity:
    @pytest.mark.parametrize("variant", [
        ChaseVariant.OBLIVIOUS,
        ChaseVariant.SEMI_OBLIVIOUS,
        ChaseVariant.RESTRICTED,
    ])
    @pytest.mark.parametrize("kernel", ["vector", "auto"])
    def test_chase_is_byte_identical_across_kernels(self, variant, kernel):
        rules, db = _chase_workload()
        baseline = run_chase(db, rules, variant, max_steps=600,
                             kernel="tuple")
        routed = run_chase(db, rules, variant, max_steps=600,
                           kernel=kernel)
        assert routed.instance.facts() == baseline.instance.facts()
        assert len(routed.steps) == len(baseline.steps)
        for ours, theirs in zip(routed.steps, baseline.steps):
            assert ours.trigger.key(variant) == theirs.trigger.key(variant)

    def test_wcoj_kernel_falls_back_in_discovery(self):
        # Rule bodies are pivot-seeded, so the wcoj kernel routes
        # discovery through the tuple engine — still byte-identical.
        rules, db = _chase_workload()
        baseline = run_chase(db, rules, ChaseVariant.RESTRICTED,
                             max_steps=600, kernel="tuple")
        routed = run_chase(db, rules, ChaseVariant.RESTRICTED,
                           max_steps=600, kernel="wcoj")
        assert routed.instance.facts() == baseline.instance.facts()

    def test_run_chase_rejects_unknown_kernel(self):
        rules, db = _chase_workload()
        with pytest.raises(ValueError):
            run_chase(db, rules, ChaseVariant.RESTRICTED, kernel="simd")


class TestKernelSelection:
    def test_kernel_vocabulary(self):
        assert KERNELS == ("tuple", "vector", "wcoj", "auto")

    def test_triangle_is_cyclic(self):
        assert is_cyclic(TRIANGLE)

    def test_path_is_acyclic(self):
        assert not is_cyclic([atom("e", "X", "Y"), atom("e", "Y", "Z")])

    def test_single_atom_is_acyclic(self):
        assert not is_cyclic([atom("e", "X", "Y")])

    def test_choose_kernel_small_instance_is_tuple(self):
        inst = Instance([atom("e", "a", "b")])
        assert choose_kernel(
            tuple([atom("e", "X", "Y"), atom("f", "Y", "Z")]), inst
        ) == "tuple"

    @pytest.mark.skipif(not numpy_active(), reason="NumPy absent")
    def test_choose_kernel_cyclic_is_wcoj(self):
        inst = _edge_instance()
        assert choose_kernel(tuple(TRIANGLE), inst) == "wcoj"

    def test_compiled_query_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            CompiledQuery([X], [atom("e", "X", "Y")], kernel="gpu")


class TestEarlyOut:
    def test_unsatisfiable_constant_short_circuits(self):
        inst = Instance([atom("e", "a", "b")])
        compiled = CompiledQuery(
            [X], [atom("e", "X", "Y"), atom("e", "X", "zzz")],
            kernel="tuple",
        )
        assert list(compiled.answers(inst)) == []
        assert compiled.stats["early_outs"] == 1

    def test_empty_relation_short_circuits(self):
        inst = Instance([atom("e", "a", "b")])
        compiled = CompiledQuery(
            [X], [atom("e", "X", "Y"), atom("ghost", "Y")],
        )
        assert list(compiled.answers(inst)) == []
        assert compiled.stats["early_outs"] == 1

    def test_early_out_applies_to_every_verb(self):
        inst = Instance([atom("e", "a", "b")])
        compiled = CompiledQuery(
            [], [atom("e", "X", "Y"), atom("e", "X", "zzz")],
        )
        assert not compiled.holds_in(inst)
        assert list(compiled.certain_ids(inst)) == []
        assert compiled.stats["early_outs"] >= 2

    def test_early_out_is_not_sticky(self):
        # The relation can become satisfiable later: the check is per
        # call, not baked into the cached plan.
        inst = Instance([atom("e", "a", "b")])
        compiled = CompiledQuery(
            [X], [atom("e", "X", "Y"), atom("ghost", "Y")],
        )
        assert list(compiled.answers(inst)) == []
        inst.add(atom("ghost", "b"))
        assert list(compiled.answers(inst)) == [(Constant("a"),)]
