"""Unit tests for repro.model.instances."""

import pytest

from repro.model import Atom, Constant, Database, Instance, Null, Predicate, union
from tests.conftest import atom


class TestInstance:
    def test_add_and_contains(self):
        inst = Instance()
        assert inst.add(atom("p", "a"))
        assert atom("p", "a") in inst
        assert atom("p", "b") not in inst

    def test_add_duplicate_returns_false(self):
        inst = Instance([atom("p", "a")])
        assert not inst.add(atom("p", "a"))
        assert len(inst) == 1

    def test_non_ground_rejected(self):
        with pytest.raises(ValueError):
            Instance().add(atom("p", "X"))

    def test_nulls_allowed(self):
        inst = Instance()
        fact = Atom(Predicate("p", 1), [Null(1)])
        assert inst.add(fact)
        assert inst.nulls() == {Null(1)}

    def test_add_all_counts_new(self):
        inst = Instance([atom("p", "a")])
        added = inst.add_all([atom("p", "a"), atom("p", "b"), atom("q", "c")])
        assert added == 2

    def test_insertion_order_preserved(self):
        inst = Instance([atom("p", "b"), atom("p", "a")])
        assert list(inst.facts()) == [atom("p", "b"), atom("p", "a")]

    def test_facts_with_predicate(self):
        inst = Instance([atom("p", "a"), atom("q", "a", "b"), atom("p", "c")])
        p_facts = inst.facts_with_predicate(Predicate("p", 1))
        assert p_facts == (atom("p", "a"), atom("p", "c"))
        assert inst.facts_with_predicate(Predicate("zz", 1)) == ()

    def test_predicates_and_schema(self):
        inst = Instance([atom("p", "a"), atom("q", "a", "b")])
        assert {p.name for p in inst.predicates()} == {"p", "q"}
        assert inst.schema().predicate_names() == {"p", "q"}

    def test_active_domain(self):
        inst = Instance([atom("p", "a", "b")])
        assert inst.active_domain() == {Constant("a"), Constant("b")}

    def test_constants_vs_nulls_partition(self):
        inst = Instance([Atom(Predicate("p", 2), [Constant("a"), Null(3)])])
        assert inst.constants() == {Constant("a")}
        assert inst.nulls() == {Null(3)}

    def test_is_database(self):
        assert Instance([atom("p", "a")]).is_database()
        assert not Instance(
            [Atom(Predicate("p", 1), [Null(1)])]
        ).is_database()

    def test_copy_is_independent(self):
        inst = Instance([atom("p", "a")])
        clone = inst.copy()
        clone.add(atom("p", "b"))
        assert len(inst) == 1
        assert len(clone) == 2

    def test_equality_ignores_order(self):
        a = Instance([atom("p", "a"), atom("p", "b")])
        b = Instance([atom("p", "b"), atom("p", "a")])
        assert a == b

    def test_frozen_snapshot(self):
        inst = Instance([atom("p", "a")])
        snap = inst.frozen()
        inst.add(atom("p", "b"))
        assert len(snap) == 1


class TestDatabase:
    def test_rejects_nulls(self):
        with pytest.raises(ValueError):
            Database().add(Atom(Predicate("p", 1), [Null(1)]))

    def test_accepts_constants(self):
        db = Database([atom("p", "a")])
        assert len(db) == 1

    def test_copy_returns_database(self):
        assert isinstance(Database([atom("p", "a")]).copy(), Database)


class TestUnion:
    def test_union_merges_and_dedups(self):
        a = Instance([atom("p", "a")])
        b = Instance([atom("p", "a"), atom("q", "b")])
        merged = union(a, b)
        assert len(merged) == 2

    def test_union_leaves_inputs_untouched(self):
        a = Instance([atom("p", "a")])
        union(a, Instance([atom("q", "b")]))
        assert len(a) == 1
