"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def rules_file(tmp_path):
    path = tmp_path / "rules.tgd"
    path.write_text(
        "person(X) -> exists Y . hasFather(X, Y), person(Y)\n"
    )
    return str(path)


@pytest.fixture
def terminating_rules_file(tmp_path):
    path = tmp_path / "ok.tgd"
    path.write_text("emp(X) -> exists D . dept(X, D)\n")
    return str(path)


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.facts"
    path.write_text("person(bob)\n")
    return str(path)


class TestClassify:
    def test_reports_class(self, rules_file, capsys):
        assert main(["classify", rules_file]) == 0
        out = capsys.readouterr().out
        assert "narrowest class: simple_linear" in out
        assert "guarded: yes" in out


class TestCheck:
    def test_diverging_exit_code_1(self, rules_file, capsys):
        assert main(["check", rules_file, "--variant", "so"]) == 1
        out = capsys.readouterr().out
        assert "infinite" in out

    def test_terminating_exit_code_0(self, terminating_rules_file, capsys):
        assert main(["check", terminating_rules_file]) == 0
        out = capsys.readouterr().out
        assert "terminates" in out

    def test_oblivious_variant(self, terminating_rules_file, capsys):
        assert main(
            ["check", terminating_rules_file, "--variant", "o"]
        ) == 0
        assert "rich_acyclicity" in capsys.readouterr().out

    def test_standard_flag(self, terminating_rules_file):
        assert main(
            ["check", terminating_rules_file, "--standard",
             "--variant", "so"]
        ) == 0


class TestChase:
    def test_budgeted_run(self, rules_file, db_file, capsys):
        code = main(
            ["chase", rules_file, db_file, "--variant", "so",
             "--max-steps", "5"]
        )
        assert code == 1  # budget exhausted on the diverging rules
        out = capsys.readouterr().out
        assert "budget exhausted" in out
        assert "person(bob)" in out

    def test_terminating_run(self, terminating_rules_file, tmp_path, capsys):
        db = tmp_path / "emp.facts"
        db.write_text("emp(ada)\n")
        assert main(
            ["chase", terminating_rules_file, str(db), "--variant", "r"]
        ) == 0
        out = capsys.readouterr().out
        assert "fixpoint" in out


class TestQuery:
    @pytest.fixture
    def exchange_rules_file(self, tmp_path):
        path = tmp_path / "exchange.tgd"
        path.write_text(
            "emp(X) -> exists D . works(X, D)\nworks(X, D) -> dept(D)\n"
        )
        return str(path)

    @pytest.fixture
    def emp_db_file(self, tmp_path):
        path = tmp_path / "emp.facts"
        path.write_text("emp(ada)\nemp(bob)\n")
        return str(path)

    def test_naive_answers(self, exchange_rules_file, emp_db_file, capsys):
        assert main(
            ["query", exchange_rules_file, emp_db_file,
             "q(X) :- works(X, D)"]
        ) == 0
        out = capsys.readouterr().out
        assert "q(ada)" in out and "q(bob)" in out
        assert "% 2 answers" in out

    def test_certain_answers_drop_nulls(
        self, exchange_rules_file, emp_db_file, capsys
    ):
        # dept(D) only holds for invented nulls -> no certain answers.
        assert main(
            ["query", exchange_rules_file, emp_db_file,
             "q(D) :- dept(D)", "--certain"]
        ) == 0
        out = capsys.readouterr().out
        assert "% 0 certain answers" in out
        # ...but naive answers exist (one null witness per employee).
        assert main(
            ["query", exchange_rules_file, emp_db_file, "q(D) :- dept(D)"]
        ) == 0
        assert "% 2 answers" in capsys.readouterr().out

    def test_boolean_query(self, exchange_rules_file, emp_db_file, capsys):
        assert main(
            ["query", exchange_rules_file, emp_db_file, "dept(D)"]
        ) == 0
        assert "true" in capsys.readouterr().out
        assert main(
            ["query", exchange_rules_file, emp_db_file, "missing(D)"]
        ) == 0
        assert "false" in capsys.readouterr().out

    def test_planner_policies_agree(
        self, exchange_rules_file, emp_db_file, capsys
    ):
        outs = []
        for policy in ("cost", "heuristic"):
            assert main(
                ["query", exchange_rules_file, emp_db_file,
                 "q(X) :- works(X, D)", "--certain", "--planner", policy]
            ) == 0
            outs.append(capsys.readouterr().out)
        assert outs[0] == outs[1]

    def test_budget_exhausted_exit_code(self, rules_file, db_file, capsys):
        assert main(
            ["query", rules_file, db_file,
             "q(X) :- person(X)", "--variant", "so", "--max-steps", "3"]
        ) == 1
        captured = capsys.readouterr()
        assert "budget exhausted" in captured.out

    def test_malformed_query_errors(
        self, exchange_rules_file, emp_db_file, capsys
    ):
        assert main(
            ["query", exchange_rules_file, emp_db_file, "q(a) :- dept(D)"]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestCritical:
    def test_prints_critical_instance(self, terminating_rules_file, capsys):
        assert main(["critical", terminating_rules_file]) == 0
        out = capsys.readouterr().out
        assert "emp('*')" in out

    def test_standard_instance(self, terminating_rules_file, capsys):
        assert main(
            ["critical", terminating_rules_file, "--standard"]
        ) == 0
        out = capsys.readouterr().out
        assert "zero(0)" in out


class TestEntail:
    def test_entailed(self, tmp_path, capsys):
        rules = tmp_path / "r.tgd"
        rules.write_text("p(X) -> q(X)\n")
        db = tmp_path / "d.facts"
        db.write_text("p(a)\n")
        assert main(["entail", str(rules), str(db), "q(a)"]) == 0
        assert "entailed" in capsys.readouterr().out

    def test_not_entailed(self, tmp_path, capsys):
        rules = tmp_path / "r.tgd"
        rules.write_text("p(X) -> q(X)\n")
        db = tmp_path / "d.facts"
        db.write_text("p(a)\n")
        assert main(["entail", str(rules), str(db), "q(b)"]) == 1
        assert "not entailed" in capsys.readouterr().out


class TestDot:
    @pytest.mark.parametrize("graph", ["dep", "extdep", "joint", "types"])
    def test_dot_outputs(self, rules_file, graph, capsys):
        assert main(["dot", rules_file, "--graph", graph]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert out.rstrip().endswith("}")


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["classify", "/nonexistent/file.tgd"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unguarded_check_error(self, tmp_path, capsys):
        rules = tmp_path / "bad.tgd"
        rules.write_text("p(X, Y), q(Y, Z) -> exists W . r(X, W)\n")
        assert main(["check", str(rules)]) == 2
        assert "error:" in capsys.readouterr().err
