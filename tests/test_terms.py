"""Unit tests for repro.model.terms."""

import multiprocessing
import pickle
import threading

from repro.model import (
    Atom,
    Constant,
    Database,
    Instance,
    Null,
    NullFactory,
    Predicate,
    TGD,
    Variable,
    intern_constant,
    intern_predicate,
    intern_variable,
    is_constant,
    is_ground,
    is_null,
    is_variable,
)
from repro.termination import SkolemTerm


class TestConstant:
    def test_equality_by_name(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_not_equal_to_variable_of_same_name(self):
        assert Constant("a") != Variable("a")

    def test_hashable_and_usable_in_sets(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2

    def test_ordering_is_by_string_name(self):
        assert Constant("a") < Constant("b")
        assert not Constant("b") < Constant("a")

    def test_str_and_repr(self):
        assert str(Constant("bob")) == "bob"
        assert "bob" in repr(Constant("bob"))

    def test_non_string_names_allowed(self):
        assert Constant(3) == Constant(3)
        assert Constant(3) != Constant("3")


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_ordering(self):
        assert Variable("A") < Variable("B")

    def test_str(self):
        assert str(Variable("X1")) == "X1"


class TestNull:
    def test_equality_by_index(self):
        assert Null(1) == Null(1)
        assert Null(1) != Null(2)

    def test_origin_does_not_affect_identity(self):
        assert Null(1, "r1:Z") == Null(1, "other")

    def test_ordering_by_index(self):
        assert Null(1) < Null(2)

    def test_str_uses_z_prefix(self):
        assert str(Null(7)) == "z7"

    def test_distinct_from_constant(self):
        assert Null(1) != Constant(1)


class TestNullFactory:
    def test_fresh_nulls_are_distinct_and_increasing(self):
        factory = NullFactory()
        a, b, c = factory.fresh(), factory.fresh(), factory.fresh()
        assert a != b != c
        assert a.index < b.index < c.index

    def test_fresh_many_returns_ordered(self):
        nulls = NullFactory().fresh_many(5)
        assert len(nulls) == 5
        assert sorted(nulls) == nulls
        assert len(set(nulls)) == 5

    def test_custom_start(self):
        assert NullFactory(start=100).fresh().index == 100

    def test_origin_recorded(self):
        assert NullFactory().fresh("r1:Z").origin == "r1:Z"

    def test_independent_factories_reuse_indices(self):
        assert NullFactory().fresh() == NullFactory().fresh()


class TestKindPredicates:
    def test_is_constant(self):
        assert is_constant(Constant("a"))
        assert not is_constant(Variable("X"))
        assert not is_constant(Null(1))

    def test_is_variable(self):
        assert is_variable(Variable("X"))
        assert not is_variable(Constant("a"))

    def test_is_null(self):
        assert is_null(Null(1))
        assert not is_null(Constant("a"))

    def test_is_ground(self):
        assert is_ground(Constant("a"))
        assert is_ground(Null(1))
        assert not is_ground(Variable("X"))


# -- pickling and interning (the `process` round executor's contract) ------
#
# Every term caches its hash; a cached hash is only meaningful under the
# interpreter that computed it (string hashing is randomized per
# process).  The __reduce__ protocol therefore rebuilds terms through
# their constructors — recomputing hashes — and funnels constants,
# variables, and predicates through threading.Lock-guarded intern
# tables.  The spawn-pool test exercises the full cross-interpreter
# round trip: a term pickled into a worker with a different hash seed
# must still hit dict entries keyed by worker-local equal terms.


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestPickleRoundTrips:
    def test_terms_rebuild_through_constructors(self):
        for term in (Constant("a"), Variable("X"), Null(7, "r1:Z")):
            clone = _roundtrip(term)
            assert clone == term
            assert hash(clone) == hash(term)
        assert _roundtrip(Null(7, "r1:Z")).origin == "r1:Z"

    def test_constants_and_variables_intern(self):
        assert _roundtrip(Constant("a")) is _roundtrip(Constant("a"))
        assert _roundtrip(Variable("X")) is _roundtrip(Variable("X"))
        p = Predicate("p", 2)
        assert _roundtrip(p) is _roundtrip(p)

    def test_atom_rule_instance_roundtrip(self):
        p = Predicate("p", 2)
        fact = Atom(p, [Constant("a"), Null(3)])
        assert _roundtrip(fact) == fact
        rule = TGD(
            [Atom(p, [Variable("X"), Variable("Y")])],
            [Atom(p, [Variable("Y"), Variable("X")])],
            label="swap",
        )
        clone = _roundtrip(rule)
        assert clone == rule
        assert clone.label == "swap"
        assert clone.frontier_sorted == rule.frontier_sorted
        instance = Instance([fact, Atom(p, [Constant("b"), Constant("c")])])
        inst_clone = _roundtrip(instance)
        assert inst_clone.facts() == instance.facts()
        assert inst_clone.facts_matching(p, {0: Constant("b")}) == [
            Atom(p, [Constant("b"), Constant("c")])
        ]
        assert type(_roundtrip(Database([Atom(p, [Constant("a"),
                                                  Constant("b")])]))) \
            is Database

    def test_skolem_term_keeps_structure(self):
        base = SkolemTerm((0, "Z"), (Constant("*"),))
        nested = SkolemTerm((0, "Z"), (base,))
        clone = _roundtrip(nested)
        assert type(clone) is SkolemTerm
        assert clone == nested
        assert clone.is_cyclic() and clone.depth() == 2

    def test_intern_tables_are_thread_safe(self):
        results = []

        def intern_many():
            results.append(
                [
                    (
                        intern_constant("shared-c"),
                        intern_variable("SharedV"),
                        intern_predicate("shared_p", 3),
                    )
                    for _ in range(200)
                ]
            )

        threads = [threading.Thread(target=intern_many) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        flat = [trio for chunk in results for trio in chunk]
        first = flat[0]
        assert all(
            c is first[0] and v is first[1] and p is first[2]
            for c, v, p in flat
        )


def _lookup_in_worker(payload):
    """Spawn-pool worker: look shipped terms up in dicts keyed by
    worker-locally constructed equal terms (fails with stale hashes)."""
    constant, atom, rule = payload
    local_const = Constant("k0")
    local_atom = Atom(Predicate("edge", 2), [Constant("k0"), Constant("k1")])
    table = {local_const: "const", local_atom: "atom"}
    return (
        table.get(constant),
        table.get(atom),
        rule.frontier_sorted == tuple(sorted(rule.frontier)),
        hash(constant) == hash(local_const),
    )


class TestSpawnPoolRoundTrip:
    def test_interned_terms_survive_spawn_pickling(self):
        edge = Predicate("edge", 2)
        payload = (
            Constant("k0"),
            Atom(edge, [Constant("k0"), Constant("k1")]),
            TGD(
                [Atom(edge, [Variable("X"), Variable("Y")])],
                [Atom(edge, [Variable("Y"), Variable("X")])],
            ),
        )
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            const_hit, atom_hit, rule_ok, hash_ok = pool.apply(
                _lookup_in_worker, (payload,)
            )
        assert const_hit == "const"
        assert atom_hit == "atom"
        assert rule_ok
        assert hash_ok
