"""Unit tests for repro.model.terms."""

import pytest

from repro.model import (
    Constant,
    Null,
    NullFactory,
    Variable,
    is_constant,
    is_ground,
    is_null,
    is_variable,
)


class TestConstant:
    def test_equality_by_name(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_not_equal_to_variable_of_same_name(self):
        assert Constant("a") != Variable("a")

    def test_hashable_and_usable_in_sets(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2

    def test_ordering_is_by_string_name(self):
        assert Constant("a") < Constant("b")
        assert not Constant("b") < Constant("a")

    def test_str_and_repr(self):
        assert str(Constant("bob")) == "bob"
        assert "bob" in repr(Constant("bob"))

    def test_non_string_names_allowed(self):
        assert Constant(3) == Constant(3)
        assert Constant(3) != Constant("3")


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_ordering(self):
        assert Variable("A") < Variable("B")

    def test_str(self):
        assert str(Variable("X1")) == "X1"


class TestNull:
    def test_equality_by_index(self):
        assert Null(1) == Null(1)
        assert Null(1) != Null(2)

    def test_origin_does_not_affect_identity(self):
        assert Null(1, "r1:Z") == Null(1, "other")

    def test_ordering_by_index(self):
        assert Null(1) < Null(2)

    def test_str_uses_z_prefix(self):
        assert str(Null(7)) == "z7"

    def test_distinct_from_constant(self):
        assert Null(1) != Constant(1)


class TestNullFactory:
    def test_fresh_nulls_are_distinct_and_increasing(self):
        factory = NullFactory()
        a, b, c = factory.fresh(), factory.fresh(), factory.fresh()
        assert a != b != c
        assert a.index < b.index < c.index

    def test_fresh_many_returns_ordered(self):
        nulls = NullFactory().fresh_many(5)
        assert len(nulls) == 5
        assert sorted(nulls) == nulls
        assert len(set(nulls)) == 5

    def test_custom_start(self):
        assert NullFactory(start=100).fresh().index == 100

    def test_origin_recorded(self):
        assert NullFactory().fresh("r1:Z").origin == "r1:Z"

    def test_independent_factories_reuse_indices(self):
        assert NullFactory().fresh() == NullFactory().fresh()


class TestKindPredicates:
    def test_is_constant(self):
        assert is_constant(Constant("a"))
        assert not is_constant(Variable("X"))
        assert not is_constant(Null(1))

    def test_is_variable(self):
        assert is_variable(Variable("X"))
        assert not is_variable(Constant("a"))

    def test_is_null(self):
        assert is_null(Null(1))
        assert not is_null(Constant("a"))

    def test_is_ground(self):
        assert is_ground(Constant("a"))
        assert is_ground(Null(1))
        assert not is_ground(Variable("X"))
