"""Theorem 4 tests: the guarded decision procedure."""

import pytest

from repro.chase import ChaseVariant
from repro.errors import UnsupportedClassError
from repro.parser import parse_program
from repro.termination import (
    PumpingWitness,
    critical_chase_terminates,
    decide_guarded,
    decide_termination,
)

# Curated guarded suite: (program, o-terminates, so-terminates)
CURATED = [
    # guard + side atom, self-feeding cycle: diverges
    ("g(X, Y), q(Y) -> exists Z . g(Y, Z), q(Z)", False, False),
    # side atom never re-satisfied on fresh nulls: terminates
    ("g(X, Y), q(Y) -> exists Z . g(Y, Z)", True, True),
    # feedback through a full rule: terminates
    (
        "r(X, Y), p(X) -> exists Z . s(Y, Z)\ns(X, Y) -> p(Y)",
        True,
        True,
    ),
    # feedback through a full rule closing the loop: diverges
    (
        "r(X, Y), p(X) -> exists Z . r(Y, Z), p2(Z)\np2(X) -> p(X)",
        False,
        False,
    ),
    # up-propagation enables the guard again: diverges
    ("a(X) -> exists Y . e(X, Y)\ne(X, Y) -> a(Y)", False, False),
    # multi-guard rule, no feedback: terminates
    ("g(X, Y), h(X, Y) -> exists Z . out(X, Z)", True, True),
    # three-rule guarded loop: diverges
    (
        "a(X) -> exists Y . b(X, Y)\n"
        "b(X, Y) -> exists Z . c(Y, Z)\n"
        "c(X, Y) -> a(Y)",
        False,
        False,
    ),
    # a cycle that only recycles the original value: terminates
    (
        "a(X) -> exists Y . b(X, Y)\nb(X, Y) -> a(X)",
        True,
        True,
    ),
    # as above, but c keeps the fresh null in its first position, so
    # the closing full rule re-feeds it into a: diverges
    (
        "a(X) -> exists Y . b(X, Y)\n"
        "b(X, Y) -> exists Z . c(Y, Z)\n"
        "c(X, Y) -> a(X)",
        False,
        False,
    ),
]


class TestTheorem4:
    @pytest.mark.parametrize("text,o_expected,so_expected", CURATED)
    def test_oblivious(self, text, o_expected, so_expected):
        rules = parse_program(text)
        verdict = decide_guarded(rules, ChaseVariant.OBLIVIOUS)
        assert verdict.terminating == o_expected

    @pytest.mark.parametrize("text,o_expected,so_expected", CURATED)
    def test_semi_oblivious(self, text, o_expected, so_expected):
        rules = parse_program(text)
        verdict = decide_guarded(rules, ChaseVariant.SEMI_OBLIVIOUS)
        assert verdict.terminating == so_expected

    @pytest.mark.parametrize("text,o_expected,so_expected", CURATED)
    def test_oracle_agreement(self, text, o_expected, so_expected):
        rules = parse_program(text)
        for variant, expected in (
            (ChaseVariant.OBLIVIOUS, o_expected),
            (ChaseVariant.SEMI_OBLIVIOUS, so_expected),
        ):
            oracle = critical_chase_terminates(rules, variant, max_steps=600)
            assert (oracle is True) == expected, (text, variant)

    @pytest.mark.parametrize("text,o_expected,so_expected", CURATED)
    def test_standard_databases_agree_here(
        self, text, o_expected, so_expected
    ):
        """These programs do not mention zero/one, so the verdict over
        standard databases coincides with the plain one (the standard
        critical instance only adds constants the rules cannot
        distinguish)."""
        rules = parse_program(text)
        verdict = decide_guarded(
            rules, ChaseVariant.SEMI_OBLIVIOUS, standard=True
        )
        assert verdict.terminating == so_expected

    def test_non_terminating_witness_is_pumping_walk(self):
        rules = parse_program("a(X) -> exists Y . e(X, Y)\ne(X, Y) -> a(Y)")
        verdict = decide_guarded(rules, ChaseVariant.SEMI_OBLIVIOUS)
        assert isinstance(verdict.witness, PumpingWitness)
        assert verdict.witness.verified

    def test_stats_reported(self):
        rules = parse_program("g(X, Y), q(Y) -> exists Z . g(Y, Z)")
        verdict = decide_guarded(rules, ChaseVariant.OBLIVIOUS)
        assert verdict.stats["types"] >= 1
        assert "edges" in verdict.stats

    def test_rejects_unguarded(self):
        rules = parse_program("p(X, Y), q(Y, Z) -> r(X, Z)")
        with pytest.raises(UnsupportedClassError):
            decide_guarded(rules, ChaseVariant.OBLIVIOUS)

    def test_rejects_restricted_variant(self):
        rules = parse_program("g(X, Y), q(Y) -> exists Z . g(Y, Z)")
        with pytest.raises(UnsupportedClassError):
            decide_guarded(rules, ChaseVariant.RESTRICTED)


class TestCloudSensitivity:
    """The verdict must depend on the cloud (the atoms alongside the
    guard), which is what distinguishes G from L."""

    def test_side_atom_blocks_divergence(self):
        diverging = parse_program("g(X, Y) -> exists Z . g(Y, Z)")
        blocked = parse_program("g(X, Y), q(Y) -> exists Z . g(Y, Z)")
        assert not decide_guarded(
            diverging, ChaseVariant.SEMI_OBLIVIOUS
        ).terminating
        assert decide_guarded(
            blocked, ChaseVariant.SEMI_OBLIVIOUS
        ).terminating

    def test_side_atom_resupplied_restores_divergence(self):
        rules = parse_program(
            "g(X, Y), q(Y) -> exists Z . g(Y, Z), q(Z)"
        )
        assert not decide_guarded(
            rules, ChaseVariant.SEMI_OBLIVIOUS
        ).terminating

    def test_resupply_from_second_rule(self):
        rules = parse_program(
            """
            g(X, Y), q(Y) -> exists Z . g(Y, Z), mark(Z)
            mark(X) -> q(X)
            """
        )
        assert not decide_guarded(
            rules, ChaseVariant.SEMI_OBLIVIOUS
        ).terminating
        oracle = critical_chase_terminates(
            rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps=400
        )
        assert oracle is None


class TestStandardDatabaseSensitivity:
    def test_zero_one_guarded_program(self):
        """A rule keyed on the zero predicate: under plain critical
        analysis the zero relation is still populated (any database may
        contain it), so the verdict matches the standard one; this
        pins the convention that 'standard' only *adds* the 0/1
        constants."""
        rules = parse_program("zero(X) -> exists Y . chain(X, Y)\n"
                              "chain(X, Y) -> zero(Y)")
        plain = decide_guarded(rules, ChaseVariant.SEMI_OBLIVIOUS)
        standard = decide_guarded(
            rules, ChaseVariant.SEMI_OBLIVIOUS, standard=True
        )
        assert plain.terminating is False
        assert standard.terminating is False


class TestDispatch:
    def test_auto_routes_guarded(self):
        rules = parse_program("g(X, Y), q(Y) -> exists Z . g(Y, Z)")
        verdict = decide_termination(rules, variant="semi_oblivious")
        assert verdict.method == "guarded_type_graph"
