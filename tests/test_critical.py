"""Unit tests for critical instances (Marnette's reduction)."""

from repro.chase import (
    CRITICAL_CONSTANT,
    critical_domain,
    critical_instance,
    standard_critical_instance,
)
from repro.model import Constant, Predicate, Schema
from repro.parser import parse_atom, parse_program


class TestCriticalInstance:
    def test_every_predicate_filled(self):
        rules = parse_program("p(X, Y) -> exists Z . q(Y, Z)")
        crit = critical_instance(rules)
        assert parse_atom("p('*', '*')") in crit
        assert parse_atom("q('*', '*')") in crit

    def test_size_is_domain_power_arity(self):
        rules = parse_program("p(X, Y, W) -> q(X)")
        crit = critical_instance(rules)
        # domain {*}: 1^3 + 1^1 facts
        assert len(crit) == 2

    def test_program_constants_included(self):
        rules = parse_program("p(X, a) -> q(X)")
        crit = critical_instance(rules)
        domain = critical_domain(rules)
        assert Constant("a") in domain
        assert CRITICAL_CONSTANT in domain
        # 2 constants: p gets 4 rows, q gets 2.
        assert len(crit) == 6

    def test_explicit_schema_extends(self):
        rules = parse_program("p(X) -> q(X)")
        schema = Schema([Predicate("p", 1), Predicate("q", 1),
                         Predicate("extra", 2)])
        crit = critical_instance(rules, schema)
        assert parse_atom("extra('*', '*')") in crit

    def test_is_null_free(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        assert critical_instance(rules).is_database()


class TestStandardCriticalInstance:
    def test_zero_one_facts_present(self):
        rules = parse_program("p(X) -> q(X)")
        crit = standard_critical_instance(rules)
        assert parse_atom("zero(0)") in crit
        assert parse_atom("one(1)") in crit

    def test_three_constant_domain(self):
        rules = parse_program("p(X, Y) -> q(X)")
        crit = standard_critical_instance(rules)
        p = Predicate("p", 2)
        assert len(crit.facts_with_predicate(p)) == 9

    def test_zero_one_predicates_fully_filled(self):
        # The critical instance quantifies over all databases, including
        # those with unusual zero/one contents.
        rules = parse_program("p(X) -> q(X)")
        crit = standard_critical_instance(rules)
        assert parse_atom("zero('*')") in crit
