"""Tests for the data-exchange layer."""

import pytest

from repro.cq import ConjunctiveQuery, is_model
from repro.errors import ReproError
from repro.exchange import ExchangeSetting
from repro.model import Variable
from repro.parser import parse_atom, parse_database, parse_program


ST = parse_program("emp(N, D) -> exists E . employee(E, N), inDept(E, D)")
TARGET = parse_program(
    """
    inDept(E, D) -> dept(D)
    dept(D) -> exists M . manages(M, D)
    """
)


class TestValidation:
    def test_schemas_inferred(self):
        setting = ExchangeSetting(ST, TARGET)
        assert setting.source_schema.predicate_names() == {"emp"}
        assert setting.target_schema.predicate_names() == {
            "employee", "inDept", "dept", "manages"
        }

    def test_overlapping_schemas_rejected(self):
        bad_st = parse_program("emp(N, D) -> emp2(N, D)")
        bad_target = parse_program("emp2(N, D) -> emp(N, N)")
        with pytest.raises(ReproError, match="overlap"):
            ExchangeSetting(bad_st, bad_target)

    def test_source_fact_in_target_rejected_at_solve(self):
        setting = ExchangeSetting(ST, TARGET)
        with pytest.raises(ReproError, match="source schema"):
            setting.solve(parse_database("employee(e1, ada)"))

    def test_st_rule_with_target_body_rejected(self):
        from repro.model import Schema, Predicate

        with pytest.raises(ReproError):
            ExchangeSetting(
                parse_program("employee(E, N) -> exists D . inDept(E, D)"),
                [],
                source_schema=Schema([Predicate("emp", 2)]),
                target_schema=Schema(
                    [Predicate("employee", 2), Predicate("inDept", 2)]
                ),
            )


class TestTerminationGuarantee:
    def test_terminating_setting(self):
        setting = ExchangeSetting(ST, TARGET)
        assert setting.guarantees_termination("semi_oblivious")

    def test_diverging_setting_detected(self):
        diverging_target = parse_program(
            "inDept(E, D) -> exists E2 . inDept(E2, D)"
        )
        setting = ExchangeSetting(ST, diverging_target)
        assert not setting.guarantees_termination("oblivious")

    def test_no_target_rules_always_safe(self):
        setting = ExchangeSetting(ST, [])
        assert setting.guarantees_termination("oblivious")
        assert setting.guarantees_termination("semi_oblivious")


class TestSolve:
    def test_solution_is_target_model(self):
        setting = ExchangeSetting(ST, TARGET)
        source = parse_database("emp(ada, maths)")
        solution = setting.solve(source)
        assert is_model(solution, TARGET)
        # Source facts are not part of the solution.
        assert all(f.predicate.name != "emp" for f in solution)

    def test_solution_contains_expected_shape(self):
        setting = ExchangeSetting(ST, TARGET)
        solution = setting.solve(parse_database("emp(ada, maths)"))
        names = sorted({f.predicate.name for f in solution})
        assert names == ["dept", "employee", "inDept", "manages"]

    def test_budget_error_on_divergence(self):
        diverging_target = parse_program(
            "inDept(E, D) -> exists E2, D2 . inDept(E2, D2)"
        )
        setting = ExchangeSetting(ST, diverging_target)
        with pytest.raises(ReproError, match="budget"):
            setting.solve(parse_database("emp(ada, maths)"),
                          variant="oblivious", max_steps=50)

    def test_certain_answers(self):
        setting = ExchangeSetting(ST, TARGET)
        source = parse_database("emp(ada, maths)\nemp(alan, computing)")
        d = Variable("D")
        query = ConjunctiveQuery([d], [parse_atom("dept(D)")])
        answers = setting.certain_answers(source, query)
        assert [a[0].name for a in answers] == ["computing", "maths"]

    def test_empty_source(self):
        setting = ExchangeSetting(ST, TARGET)
        assert len(setting.solve(parse_database(""))) == 0
