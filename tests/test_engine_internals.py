"""White-box tests for the chase engine's semi-naive trigger discovery."""

import pytest

from repro.chase import ChaseVariant, run_chase
from repro.chase.engine import _incremental_triggers
from repro.model import Instance
from repro.parser import parse_database, parse_program
from tests.conftest import atom


class TestIncrementalTriggers:
    def test_pivot_on_each_body_atom(self):
        rules = parse_program("p(X), q(X) -> r(X)")
        instance = Instance([atom("p", "a"), atom("q", "a")])
        # Only q(a) is new: the trigger must still be found via the
        # q-pivot with p matched against the full instance.
        triggers = list(
            _incremental_triggers(rules, instance, [atom("q", "a")])
        )
        assert len(triggers) >= 1

    def test_no_new_facts_no_triggers(self):
        rules = parse_program("p(X) -> r(X)")
        instance = Instance([atom("p", "a")])
        assert list(_incremental_triggers(rules, instance, [])) == []

    def test_duplicates_possible_but_harmless(self):
        # Both body atoms hit new facts: the same assignment may be
        # discovered twice (once per pivot); the engine dedups by key.
        rules = parse_program("p(X), q(X) -> r(X)")
        instance = Instance([atom("p", "a"), atom("q", "a")])
        triggers = list(
            _incremental_triggers(
                rules, instance, [atom("p", "a"), atom("q", "a")]
            )
        )
        keys = {t.key(ChaseVariant.OBLIVIOUS) for t in triggers}
        assert len(keys) == 1
        assert len(triggers) == 2

    def test_irrelevant_new_facts_skipped(self):
        rules = parse_program("p(X) -> r(X)")
        instance = Instance([atom("z", "a")])
        assert list(
            _incremental_triggers(rules, instance, [atom("z", "a")])
        ) == []


class TestEngineEquivalence:
    """The semi-naive engine must compute the same result as a naive
    one; we compare against a tiny reference implementation."""

    def _naive_chase(self, database, rules, variant, max_steps=500):
        from repro.chase.triggers import (
            apply_trigger,
            head_satisfied,
            triggers_for_rule,
        )
        from repro.model import NullFactory

        instance = Instance(database)
        factory = NullFactory()
        fired = set()
        steps = 0
        while True:
            progressed = False
            pending = [
                trigger
                for idx, rule in enumerate(rules)
                for trigger in triggers_for_rule(rule, idx, instance)
                if trigger.key(variant) not in fired
            ]
            for trigger in pending:
                key = trigger.key(variant)
                if key in fired:
                    continue
                if variant == ChaseVariant.RESTRICTED and head_satisfied(
                    trigger, instance
                ):
                    fired.add(key)
                    continue
                fired.add(key)
                apply_trigger(trigger, instance, factory)
                steps += 1
                progressed = True
                if steps >= max_steps:
                    return instance, False
            if not progressed:
                return instance, True

    PROGRAMS = [
        ("p(X) -> exists Z . q(X, Z)\nq(X, Y) -> r(X)", "p(a)\np(b)"),
        ("e(X, Y), e(Y, Z) -> e(X, Z)", "e(a, b)\ne(b, c)\ne(c, d)"),
        ("p(X, Y) -> exists Z . q(X, Z)\nq(X, Y) -> p(X, X)",
         "p(a, b)"),
    ]

    @pytest.mark.parametrize("rules_text,db_text", PROGRAMS)
    @pytest.mark.parametrize(
        "variant",
        [ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS],
    )
    def test_same_result_as_naive(self, rules_text, db_text, variant):
        rules = parse_program(rules_text)
        db = parse_database(db_text)
        fast = run_chase(db, rules, variant, max_steps=500)
        naive_instance, naive_terminated = self._naive_chase(
            db, rules, variant
        )
        assert fast.terminated == naive_terminated
        assert len(fast.instance) == len(naive_instance)
        # Null names may differ; compare null-free facts exactly.
        fast_ground = {f for f in fast.instance if not f.nulls()}
        naive_ground = {f for f in naive_instance if not f.nulls()}
        assert fast_ground == naive_ground
