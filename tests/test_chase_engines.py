"""Integration tests for the chase engines (§2 semantics)."""

import pytest

from repro.chase import (
    ChaseVariant,
    oblivious_chase,
    restricted_chase,
    run_chase,
    semi_oblivious_chase,
)
from repro.cq import is_model_of, is_universal_for
from repro.model import Instance
from repro.parser import parse_database, parse_program
from tests.conftest import atom


EX1 = parse_program("person(X) -> exists Y . hasFather(X, Y), person(Y)")
EX2 = parse_program("p(X, Y) -> exists Z . p(Y, Z)")


class TestBasics:
    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            run_chase(Instance(), EX1, variant="bogus")

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            run_chase(Instance(), EX1, max_steps=0)

    def test_database_not_mutated(self):
        db = parse_database("person(bob)")
        semi_oblivious_chase(db, EX1, max_steps=5)
        assert len(db) == 1

    def test_empty_database_trivially_terminates(self):
        result = semi_oblivious_chase(Instance(), EX1)
        assert result.terminated
        assert result.step_count == 0

    def test_empty_rules_terminate(self):
        result = semi_oblivious_chase(parse_database("p(a)"), [])
        assert result.terminated
        assert len(result.instance) == 1


class TestExample1:
    """The paper's Example 1: an infinite chase, budget-bounded here."""

    def test_budget_exhaustion_reported(self):
        db = parse_database("person(bob)")
        result = semi_oblivious_chase(db, EX1, max_steps=10)
        assert not result.terminated
        assert result.exhausted
        assert result.step_count == 10

    def test_prefix_shape(self):
        db = parse_database("person(bob)")
        result = semi_oblivious_chase(db, EX1, max_steps=3)
        persons = result.instance.facts_with_predicate(
            EX1[0].body[0].predicate
        )
        fathers = [
            f for f in result.instance
            if f.predicate.name == "hasFather"
        ]
        # person(bob), person(z1..z3); hasFather chains them.
        assert len(persons) == 4
        assert len(fathers) == 3

    def test_nulls_form_chain(self):
        db = parse_database("person(bob)")
        result = semi_oblivious_chase(db, EX1, max_steps=4)
        chain = [
            f for f in result.instance if f.predicate.name == "hasFather"
        ]
        for earlier, later in zip(chain, chain[1:]):
            assert earlier.terms[1] == later.terms[0]


class TestExample2:
    def test_all_variants_diverge(self):
        db = parse_database("p(a, b)")
        for variant in ChaseVariant.ALL:
            result = run_chase(db, EX2, variant, max_steps=20)
            assert not result.terminated, variant

    def test_instance_matches_paper_shape(self):
        db = parse_database("p(a, b)")
        result = semi_oblivious_chase(db, EX2, max_steps=3)
        facts = sorted(str(f) for f in result.instance)
        assert "p(a, b)" in facts
        assert any("p(b, " in f for f in facts)


class TestTerminatingPrograms:
    RULES = parse_program(
        """
        emp(X) -> exists D . works(X, D)
        works(X, D) -> dept(D)
        """
    )

    def test_fixpoint_reached(self):
        db = parse_database("emp(ada)\nemp(alan)")
        for variant in ChaseVariant.ALL:
            result = run_chase(db, self.RULES, variant)
            assert result.terminated, variant

    def test_result_is_model(self):
        db = parse_database("emp(ada)")
        for variant in ChaseVariant.ALL:
            result = run_chase(db, self.RULES, variant)
            assert is_model_of(result.instance, db, self.RULES), variant
            assert result.satisfies(self.RULES)

    def test_result_is_universal(self):
        db = parse_database("emp(ada)")
        # An independently built model: ada works in dept d0.
        model = Instance(
            [atom("emp", "ada"), atom("works", "ada", "d0"),
             atom("dept", "d0")]
        )
        for variant in ChaseVariant.ALL:
            result = run_chase(db, self.RULES, variant)
            assert is_universal_for(result.instance, model), variant
            assert result.maps_into(model)

    def test_full_rules_terminate_on_any_database(self):
        rules = parse_program("e(X, Y) -> e(Y, X)\ne(X, Y), e(Y, Z) -> e(X, Z)")
        db = parse_database("e(a, b)\ne(b, c)")
        result = semi_oblivious_chase(db, rules)
        assert result.terminated
        # transitive-symmetric closure over {a,b,c}
        assert len(result.instance) == 9


class TestVariantRelations:
    def test_semi_oblivious_never_larger_than_oblivious(self):
        programs = [
            ("p(X, Y) -> exists Z . q(X, Z)", "p(a, b)\np(a, c)\np(d, d)"),
            ("p(X) -> exists Z . q(X, Z)\nq(X, Y) -> r(X)", "p(a)\np(b)"),
        ]
        for rules_text, db_text in programs:
            rules = parse_program(rules_text)
            db = parse_database(db_text)
            o = oblivious_chase(db, rules)
            so = semi_oblivious_chase(db, rules)
            assert so.terminated and o.terminated
            assert len(so.instance) <= len(o.instance)
            assert so.step_count <= o.step_count

    def test_restricted_never_larger_than_semi_oblivious(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        db = parse_database("p(a)\nq(a, b)")
        so = semi_oblivious_chase(db, rules)
        restricted = restricted_chase(db, rules)
        assert restricted.terminated
        # q(a, b) already satisfies the head: restricted adds nothing.
        assert len(restricted.instance) == 2
        assert len(so.instance) == 3

    def test_oblivious_fires_per_homomorphism(self):
        rules = parse_program("p(X, Y) -> exists Z . q(X, Z)")
        db = parse_database("p(a, b)\np(a, c)")
        o = oblivious_chase(db, rules)
        so = semi_oblivious_chase(db, rules)
        q_pred = rules[0].head[0].predicate
        assert len(o.instance.facts_with_predicate(q_pred)) == 2
        assert len(so.instance.facts_with_predicate(q_pred)) == 1

    def test_restricted_terminates_where_so_diverges(self):
        # p(X, Y) -> exists Z . p(X, Z): restricted sees the head
        # satisfied by the triggering atom itself.
        rules = parse_program("p(X, Y) -> exists Z . p(X, Z)")
        db = parse_database("p(a, b)")
        restricted = restricted_chase(db, rules)
        assert restricted.terminated
        assert len(restricted.instance) == 1


class TestFairnessAndDeterminism:
    def test_deterministic_across_runs(self):
        db = parse_database("person(bob)")
        first = semi_oblivious_chase(db, EX1, max_steps=7)
        second = semi_oblivious_chase(db, EX1, max_steps=7)
        assert first.instance == second.instance

    def test_every_applicable_trigger_eventually_fires(self):
        rules = parse_program(
            """
            a(X) -> b(X)
            a(X) -> c(X)
            b(X), c(X) -> d(X)
            """
        )
        db = parse_database("a(k)")
        result = semi_oblivious_chase(db, rules)
        assert result.terminated
        assert atom("d", "k") in result.instance

    def test_multi_head_all_atoms_added(self):
        rules = parse_program("s(X) -> exists Y . t(X, Y), u(Y), v(X)")
        result = semi_oblivious_chase(parse_database("s(a)"), rules)
        names = {f.predicate.name for f in result.instance}
        assert names == {"s", "t", "u", "v"}

    def test_null_indices_increase_with_creation_order(self):
        db = parse_database("person(bob)")
        result = semi_oblivious_chase(db, EX1, max_steps=5)
        nulls = sorted(result.instance.nulls())
        assert [n.index for n in nulls] == list(
            range(1, len(nulls) + 1)
        )
