"""Unit tests for repro.model.schema."""

import pytest

from repro.model import Predicate, Schema
from repro.parser import parse_program


class TestSchema:
    def test_from_rules(self):
        rules = parse_program("p(X) -> q(X, X)\nq(X, Y) -> r(Y)")
        schema = Schema.from_rules(rules)
        assert schema.predicate_names() == {"p", "q", "r"}

    def test_conflicting_arities_rejected(self):
        with pytest.raises(ValueError):
            Schema([Predicate("p", 1), Predicate("p", 2)])

    def test_duplicate_declarations_collapse(self):
        schema = Schema([Predicate("p", 1), Predicate("p", 1)])
        assert len(schema) == 1

    def test_contains_predicate_and_name(self):
        schema = Schema([Predicate("p", 2)])
        assert Predicate("p", 2) in schema
        assert Predicate("p", 3) not in schema
        assert "p" in schema
        assert "q" not in schema

    def test_get(self):
        schema = Schema([Predicate("p", 2)])
        assert schema.get("p") == Predicate("p", 2)
        assert schema.get("missing") is None

    def test_iteration_sorted_by_name(self):
        schema = Schema([Predicate("z", 1), Predicate("a", 1)])
        assert [p.name for p in schema] == ["a", "z"]

    def test_positions(self):
        schema = Schema([Predicate("p", 2), Predicate("q", 1)])
        assert len(schema.positions()) == 3

    def test_max_arity(self):
        assert Schema([Predicate("p", 3), Predicate("q", 1)]).max_arity() == 3
        assert Schema().max_arity() == 0

    def test_merge(self):
        merged = Schema([Predicate("p", 1)]).merge(Schema([Predicate("q", 2)]))
        assert merged.predicate_names() == {"p", "q"}

    def test_merge_conflict_raises(self):
        with pytest.raises(ValueError):
            Schema([Predicate("p", 1)]).merge(Schema([Predicate("p", 2)]))

    def test_equality_and_hash(self):
        a = Schema([Predicate("p", 1), Predicate("q", 2)])
        b = Schema([Predicate("q", 2), Predicate("p", 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_from_atoms(self):
        from tests.conftest import atom

        schema = Schema.from_atoms([atom("p", "a"), atom("q", "a", "b")])
        assert schema.predicate_names() == {"p", "q"}
