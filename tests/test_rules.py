"""Unit tests for repro.model.rules (TGD structure)."""

import pytest

from repro.model import (
    Atom,
    Constant,
    Predicate,
    TGD,
    Variable,
    program_constants,
    program_predicates,
    validate_program,
)
from repro.parser import parse_rule


class TestConstruction:
    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            TGD([], [Atom(Predicate("p", 0), [])])

    def test_empty_head_rejected(self):
        with pytest.raises(ValueError):
            TGD([Atom(Predicate("p", 0), [])], [])

    def test_equality_ignores_label(self):
        a = parse_rule("p(X) -> q(X)", label="one")
        b = parse_rule("p(X) -> q(X)", label="two")
        assert a == b
        assert hash(a) == hash(b)


class TestVariableStructure:
    def test_frontier_is_shared_variables(self):
        rule = parse_rule("p(X, Y) -> exists Z . q(Y, Z)")
        assert rule.frontier == {Variable("Y")}

    def test_existential_variables(self):
        rule = parse_rule("p(X, Y) -> exists Z . q(Y, Z)")
        assert rule.existential_variables == {Variable("Z")}

    def test_body_variables(self):
        rule = parse_rule("p(X, Y), r(Y, W) -> q(Y)")
        assert rule.body_variables == {
            Variable("X"), Variable("Y"), Variable("W")
        }

    def test_full_rule_has_no_existentials(self):
        rule = parse_rule("p(X, Y) -> q(Y, X)")
        assert rule.is_full()
        assert rule.existential_variables == frozenset()

    def test_head_only_variables_are_existential(self):
        rule = parse_rule("p(X) -> q(Y)")
        assert rule.existential_variables == {Variable("Y")}
        assert rule.frontier == frozenset()


class TestSyntacticClasses:
    def test_linear(self):
        assert parse_rule("p(X, Y) -> q(X)").is_linear()
        assert not parse_rule("p(X), r(X) -> q(X)").is_linear()

    def test_simple_linear_forbids_repeats(self):
        assert parse_rule("p(X, Y) -> q(X)").is_simple_linear()
        assert not parse_rule("p(X, X) -> q(X)").is_simple_linear()

    def test_linear_rules_are_guarded(self):
        assert parse_rule("p(X, Y) -> exists Z . q(Y, Z)").is_guarded()

    def test_guard_detection_multi_atom(self):
        rule = parse_rule("g(X, Y, W), p(X), q(Y) -> r(W)")
        assert rule.is_guarded()
        assert rule.guard().predicate.name == "g"

    def test_unguarded_rule(self):
        rule = parse_rule("p(X, Y), q(Y, Z) -> r(X, Z)")
        assert not rule.is_guarded()
        assert rule.guard() is None
        assert rule.guards() == ()

    def test_multiple_guards_all_reported(self):
        rule = parse_rule("g(X, Y), h(Y, X) -> r(X)")
        assert len(rule.guards()) == 2

    def test_single_head(self):
        assert parse_rule("p(X) -> q(X)").is_single_head()
        assert not parse_rule("p(X) -> q(X), r(X)").is_single_head()


class TestPositions:
    def test_body_positions_of(self):
        rule = parse_rule("p(X, X), q(X) -> r(X)")
        positions = rule.body_positions_of(Variable("X"))
        assert {str(p) for p in positions} == {"p[0]", "p[1]", "q[0]"}

    def test_head_positions_of(self):
        rule = parse_rule("p(X) -> exists Z . r(X, Z), s(Z)")
        z_positions = rule.head_positions_of(Variable("Z"))
        assert {str(p) for p in z_positions} == {"r[1]", "s[0]"}


class TestRenameApart:
    def test_variables_renamed(self):
        rule = parse_rule("p(X) -> exists Z . q(X, Z)")
        renamed = rule.rename_apart("_1")
        assert renamed.body_variables == {Variable("X_1")}
        assert renamed.existential_variables == {Variable("Z_1")}

    def test_structure_preserved(self):
        rule = parse_rule("p(X, X) -> q(X)")
        renamed = rule.rename_apart("_a")
        assert renamed.body[0].terms[0] == renamed.body[0].terms[1]

    def test_constants_untouched(self):
        rule = parse_rule("p(X, c) -> q(c)")
        renamed = rule.rename_apart("_b")
        assert Constant("c") in renamed.constants()


class TestProgramHelpers:
    def test_program_predicates(self):
        rules = [parse_rule("p(X) -> q(X)"), parse_rule("q(X) -> r(X)")]
        names = {p.name for p in program_predicates(rules)}
        assert names == {"p", "q", "r"}

    def test_program_constants(self):
        rules = [parse_rule("p(X) -> q(X, a)")]
        assert program_constants(rules) == {Constant("a")}

    def test_validate_program_catches_arity_conflicts(self):
        rules = [parse_rule("p(X) -> q(X)"), parse_rule("q(X, Y) -> p(X)")]
        with pytest.raises(ValueError, match="arities"):
            validate_program(rules)

    def test_validate_program_accepts_consistent(self):
        validate_program([parse_rule("p(X) -> q(X)"),
                          parse_rule("q(X) -> p(X)")])

    def test_str_rendering_mentions_exists(self):
        rule = parse_rule("p(X) -> exists Z . q(X, Z)")
        assert "exists" in str(rule)
        assert "exists" not in str(parse_rule("p(X) -> q(X)"))
