"""The query server: snapshots, the service core, and the HTTP layer.

The load-bearing test is :func:`test_snapshot_isolation_under_writer`:
N reader threads query a resident while one writer ingests deltas, and
every answer set a reader observed must equal the answer set computed
*after quiescence* over a snapshot pinned to the same watermark — i.e.
readers never see a partially applied extension leg, on any executor.
"""

import json
import threading

import pytest

from repro.chase import ChaseVariant, run_chase
from repro.chase.incremental import ChaseSession
from repro.model import Instance
from repro.model.instances import SnapshotInstance
from repro.parser import parse_database, parse_fact, parse_program, parse_query
from repro.serve import (
    BackgroundServer,
    ChaseService,
    ServiceError,
    serve_background,
)

RULES = parse_program(
    """
    e(X, Y) -> p(X, Y)
    p(X, Y), e(Y, Z) -> p(X, Z)
    p(X, Y) -> exists W . tag(Y, W)
    """
)

BASE = parse_database("e(n0, n1)\ne(n1, n2)")


def fresh_session(**sched):
    return ChaseSession.start(
        BASE, RULES, variant=ChaseVariant.SEMI_OBLIVIOUS, **sched
    )


# -- snapshots ---------------------------------------------------------------


def test_snapshot_is_a_bounded_consistent_view():
    session = fresh_session()
    try:
        snap = session.snapshot()
        assert isinstance(snap, SnapshotInstance)
        full = list(session.instance.facts())
        assert list(snap.facts()) == full
        assert len(snap) == session.watermark
        # A snapshot pinned below the tip sees exactly the log prefix.
        half = session.instance.snapshot(watermark=3)
        assert list(half.facts()) == full[:3]
        assert len(half) == 3
        assert full[0] in half
        assert full[-1] not in half
    finally:
        session.close()


def test_snapshot_stays_pinned_while_base_grows():
    session = fresh_session()
    try:
        snap = session.snapshot()
        before = list(snap.facts())
        query = parse_query("q(X, Y) :- p(X, Y)")
        answers_before = sorted(query.answers(snap))
        session.extend([parse_fact("e(n2, n3)")])
        assert list(snap.facts()) == before
        assert sorted(query.answers(snap)) == answers_before
        assert session.snapshot().watermark > snap.watermark
    finally:
        session.close()


def test_snapshot_is_read_only_and_never_interns():
    session = fresh_session()
    try:
        snap = session.snapshot()
        with pytest.raises(TypeError):
            snap.add(parse_fact("e(x, y)"))
        with pytest.raises(TypeError):
            snap.save("nowhere")
        symbols_before = len(session.instance.store.symbols)
        query = parse_query("q(X) :- e(X, unseen_constant_zz)")
        assert list(query.answers(snap)) == []
        assert parse_fact("zz_pred(zz_arg)") not in snap
        assert len(session.instance.store.symbols) == symbols_before
    finally:
        session.close()


def test_snapshot_copy_materializes_an_independent_instance():
    session = fresh_session()
    try:
        half = session.instance.snapshot(watermark=3)
        copy = half.copy()
        assert isinstance(copy, Instance)
        assert not isinstance(copy, SnapshotInstance)
        assert list(copy.facts()) == list(half.facts())
        copy.add(parse_fact("e(zz, ww)"))
        assert len(copy) == 4
        assert len(half) == 3
    finally:
        session.close()


# -- the service core --------------------------------------------------------


def test_service_query_entail_ingest_status():
    session = fresh_session()
    service = ChaseService()
    service.add_session("default", session)
    try:
        out = service.query("q(X, Y) :- p(X, Y)")
        assert out["resident"] == "default"
        assert out["count"] == len(out["answers"]) == 3
        assert out["watermark"] == session.watermark

        out = service.query("p(n0, n2)")
        assert out["boolean"] is True

        out = service.entail("p(n0, n2)")
        assert out["entailed"] is True
        out = service.entail("p(n2, n0)")
        assert out["entailed"] is False

        before = session.watermark
        out = service.ingest("e(n2, n3)\ne(n3, n4)")
        assert out["terminated"] is True
        assert out["new_facts"] > 2  # the delta plus its consequences
        assert out["watermark"] == session.watermark > before

        out = service.query("q(X) :- p(X, n4)", certain=True)
        assert out["certain"] is True
        assert out["count"] == 4

        status = service.status()
        resident = status["residents"]["default"]
        assert resident["queries"] == 5
        assert resident["ingests"] == 1
        assert resident["terminated"] is True
    finally:
        service.close()


def test_service_error_statuses():
    service = ChaseService()
    with pytest.raises(ServiceError) as err:
        service.query("q(X) :- p(X, Y)")
    assert err.value.status == 503  # nothing loaded

    session = fresh_session()
    service.add_session("default", session)
    try:
        with pytest.raises(ServiceError) as err:
            service.query("q(X) :- p(X, Y)", resident="nope")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            service.query("q(X :- broken")
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            service.entail("p(X, n1)")  # not ground
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            service.ingest("")
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            service.query("q(X) :- p(X, Y)", timeout_s=-1)
        assert err.value.status == 400
    finally:
        service.close()


def test_service_readonly_resident_rejects_ingest():
    instance = Instance(parse_database("p(a, b)"))
    service = ChaseService()
    service.add_readonly("frozen", instance)
    out = service.query("q(X) :- p(X, Y)", resident="frozen")
    assert out["count"] == 1
    with pytest.raises(ServiceError) as err:
        service.ingest("p(c, d)", resident="frozen")
    assert err.value.status == 409
    service.close()


def test_service_named_residents_and_budget_cap():
    service = ChaseService(request_timeout_s=30.0)
    service.add_readonly("a", Instance(parse_database("p(a, b)")))
    service.add_readonly("b", Instance(parse_database("p(b, c)")))
    with pytest.raises(ServiceError) as err:
        service.query("q(X) :- p(X, Y)")  # ambiguous
    assert err.value.status == 400
    assert service.query("q(X) :- p(X, Y)", resident="b")["count"] == 1
    # The per-request deadline is capped by the service-wide limit.
    budget = service.request_budget(timeout_s=10_000.0)
    assert budget.timeout_s == 30.0
    assert 0.0 < budget.remaining_s() <= 30.0
    service.close()


def test_service_shutdown_cancels_request_budgets():
    service = ChaseService()
    service.add_readonly("a", Instance(parse_database("p(a, b)")))
    budget = service.request_budget()
    service.shutdown()
    assert budget.check() == "cancelled"
    service.close()


# -- snapshot isolation under a concurrent writer ----------------------------


@pytest.mark.parametrize(
    "sched",
    (
        {},
        {"scheduler": "threaded", "workers": 2},
        {"scheduler": "process", "workers": 2},
    ),
    ids=("serial", "threaded", "process"),
)
def test_snapshot_isolation_under_writer(sched):
    """Readers pinned to published snapshots never observe a partial
    extension leg: every (watermark, answers) pair a reader recorded
    must be reproducible after quiescence from a snapshot pinned to
    that same watermark, and each reader's watermarks are monotone."""
    session = fresh_session(**sched)
    service = ChaseService()
    service.add_session("default", session)
    query_text = "q(X, Y) :- p(X, Y)"
    deltas = [f"e(n{i}, n{i + 1})" for i in range(2, 12)]
    observations = [[] for _ in range(3)]
    failures = []
    done = threading.Event()

    def reader(slot):
        try:
            while not done.is_set():
                out = service.query(query_text)
                observations[slot].append(
                    (out["watermark"], tuple(sorted(out["answers"])))
                )
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    threads = [
        threading.Thread(target=reader, args=(slot,)) for slot in range(3)
    ]
    for thread in threads:
        thread.start()
    try:
        for delta in deltas:
            service.ingest(delta)
    finally:
        done.set()
        for thread in threads:
            thread.join(timeout=30)
    assert not failures, failures

    # Quiesced ground truth, per watermark actually observed.
    query = parse_query(query_text)
    from repro.model import Atom, Predicate
    from repro.parser import atom_to_text

    def answers_at(watermark):
        snap = session.instance.snapshot(watermark=watermark)
        return tuple(
            sorted(
                atom_to_text(Atom(Predicate("q", len(row)), row))
                for row in query.answers(snap)
            )
        )

    expected = {}
    for trace in observations:
        watermarks = [w for w, _ in trace]
        assert watermarks == sorted(watermarks), "non-monotone watermarks"
        for watermark, answers in trace:
            if watermark not in expected:
                expected[watermark] = answers_at(watermark)
            assert answers == expected[watermark], (
                f"reader saw a partial round at watermark {watermark}"
            )
    # The final published snapshot is the full final instance.
    assert service.query(query_text)["watermark"] == len(session.instance)
    service.close()


def test_incremental_ingest_equals_from_scratch_service():
    """The CI smoke's assertion, in-process: after a sequence of
    ingests, the served answers equal a from-scratch chase of the
    union database."""
    session = fresh_session()
    service = ChaseService()
    service.add_session("default", session)
    deltas = ["e(n2, n3)", "e(n3, n4)", "e(n0, n5)"]
    for delta in deltas:
        service.ingest(delta)
    served = service.query("q(X, Y) :- p(X, Y)", certain=True)

    union = parse_database(
        "e(n0, n1)\ne(n1, n2)\n" + "\n".join(deltas)
    )
    scratch = run_chase(union, RULES, ChaseVariant.SEMI_OBLIVIOUS)
    assert scratch.terminated
    query = parse_query("q(X, Y) :- p(X, Y)")
    from repro.model import Atom, Predicate
    from repro.parser import atom_to_text

    expected = sorted(
        atom_to_text(Atom(Predicate("q", len(row)), row))
        for row in query.certain_answers(scratch.instance)
    )
    assert sorted(served["answers"]) == expected
    service.close()


# -- HTTP --------------------------------------------------------------------


def _request(host, port, method, path, payload=None):
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=30)
    body = json.dumps(payload) if payload is not None else None
    conn.request(method, path, body=body)
    response = conn.getresponse()
    out = json.loads(response.read())
    conn.close()
    return response.status, out


def test_http_end_to_end():
    session = fresh_session()
    service = ChaseService()
    service.add_session("default", session)
    with serve_background(service) as background:
        host, port = background.address
        assert port != 0  # ephemeral port resolved

        status, out = _request(host, port, "GET", "/health")
        assert status == 200 and out["ok"] is True

        status, out = _request(host, port, "GET", "/stats")
        assert status == 200
        assert "default" in out["residents"]

        status, out = _request(
            host, port, "POST", "/query",
            {"query": "q(X, Y) :- p(X, Y)"},
        )
        assert status == 200 and out["count"] == 3

        status, out = _request(
            host, port, "POST", "/entail", {"atom": "p(n0, n2)"}
        )
        assert status == 200 and out["entailed"] is True

        status, out = _request(
            host, port, "POST", "/facts", {"facts": "e(n2, n3)"}
        )
        assert status == 200 and out["terminated"] is True

        status, out = _request(
            host, port, "POST", "/query",
            {"query": "q(X) :- p(X, n3)", "certain": True},
        )
        assert status == 200 and out["count"] == 3

        # Error mapping.
        status, _ = _request(host, port, "GET", "/nope")
        assert status == 404
        status, _ = _request(host, port, "GET", "/query")
        assert status == 405
        status, _ = _request(host, port, "POST", "/query", {"nope": 1})
        assert status == 400
        status, _ = _request(
            host, port, "POST", "/query", {"query": "q(X :- bad"}
        )
        assert status == 400
        status, _ = _request(host, port, "POST", "/facts", {"facts": 7})
        assert status == 400
    # Clean shutdown: the thread joined and the socket is closed.
    import socket

    with pytest.raises(OSError):
        probe = socket.create_connection((host, port), timeout=2)
        probe.close()
    service.close()


def test_http_readonly_store_conflict():
    service = ChaseService()
    service.add_readonly(
        "default", Instance(parse_database("p(a, b)"))
    )
    with BackgroundServer(service) as background:
        host, port = background.address
        status, out = _request(
            host, port, "POST", "/facts", {"facts": "p(c, d)"}
        )
        assert status == 409
        assert "read-only" in out["error"]
    service.close()
