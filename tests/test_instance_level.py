"""Tests for per-database termination (guarded rules)."""

import pytest

from repro.chase import ChaseVariant, run_chase
from repro.errors import UnsupportedClassError
from repro.parser import parse_database, parse_program
from repro.termination import decide_termination_on

EX1 = parse_program("person(X) -> exists Y . hasFather(X, Y), person(Y)")


class TestInstanceLevel:
    def test_example1_diverges_with_a_person(self):
        verdict = decide_termination_on(EX1, parse_database("person(bob)"))
        assert not verdict.terminating
        assert verdict.method == "instance_type_graph"

    def test_example1_terminates_without_persons(self):
        verdict = decide_termination_on(
            EX1, parse_database("hasFather(a, b)")
        )
        assert verdict.terminating

    def test_empty_database_terminates(self):
        verdict = decide_termination_on(EX1, parse_database(""))
        assert verdict.terminating

    def test_constant_sensitive_program(self):
        rules = parse_program("start(go, X) -> exists Z . start(go, Z)")
        # Oblivious chase: diverges only when the 'go' constant occurs.
        yes = decide_termination_on(
            rules, parse_database("start(go, a)"),
            variant=ChaseVariant.OBLIVIOUS,
        )
        no = decide_termination_on(
            rules, parse_database("start(stop, a)"),
            variant=ChaseVariant.OBLIVIOUS,
        )
        assert not yes.terminating
        assert no.terminating

    def test_agrees_with_concrete_chase(self):
        cases = [
            (EX1, "person(bob)", False),
            (EX1, "hasFather(a, b)", True),
            (parse_program("g(X, Y), q(Y) -> exists Z . g(Y, Z), q(Z)"),
             "g(a, b)\nq(b)", False),
            (parse_program("g(X, Y), q(Y) -> exists Z . g(Y, Z)"),
             "g(a, b)\nq(b)", True),
        ]
        for rules, db_text, expected in cases:
            db = parse_database(db_text)
            verdict = decide_termination_on(rules, db)
            assert verdict.terminating == expected, db_text
            result = run_chase(
                db, rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps=400
            )
            assert result.terminated == expected, db_text

    def test_rejects_unguarded(self):
        rules = parse_program("p(X, Y), q(Y, Z) -> exists W . r(X, W)")
        with pytest.raises(UnsupportedClassError):
            decide_termination_on(rules, parse_database("p(a, b)"))

    def test_rejects_restricted_variant(self):
        with pytest.raises(UnsupportedClassError):
            decide_termination_on(
                EX1, parse_database(""), variant=ChaseVariant.RESTRICTED
            )

    def test_finer_than_all_instance_question(self):
        from repro.termination import decide_termination

        # All-instance: diverging; on a person-free database: fine.
        assert not decide_termination(
            EX1, variant=ChaseVariant.SEMI_OBLIVIOUS
        ).terminating
        assert decide_termination_on(
            EX1, parse_database("hasFather(x, y)")
        ).terminating
