"""Tests for the front-door dispatcher and the oracle module."""

import pytest

from repro.errors import UnsupportedClassError
from repro.parser import parse_program
from repro.termination import (
    critical_chase_terminates,
    decide_termination,
    oracle_verdict,
)


class TestDispatch:
    def test_empty_program_terminates(self):
        verdict = decide_termination([], variant="semi_oblivious")
        assert verdict.terminating
        assert verdict.method == "full_program"

    def test_full_program_short_circuits(self):
        rules = parse_program("p(X, Y), q(Y, Z) -> r(X, Z)")  # unguarded!
        verdict = decide_termination(rules, variant="oblivious")
        assert verdict.terminating
        assert verdict.method == "full_program"

    def test_sl_routed_to_theorem_1(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        verdict = decide_termination(rules, variant="oblivious")
        assert verdict.method == "rich_acyclicity"

    def test_constant_bearing_sl_routed_to_critical_decider(self):
        # Theorem 1's characterization is constant-free; the exact
        # critical decider must take over (regression for the
        # 'rule_constants_block_the_cycle' adversarial case).
        rules = parse_program(
            "p(a, X) -> exists Z . q(X, Z)\nq(X, Z) -> p(X, Z)"
        )
        verdict = decide_termination(rules, variant="semi_oblivious")
        assert verdict.method == "critical_weak_acyclicity"
        assert verdict.terminating

    def test_linear_routed_to_theorem_2(self):
        rules = parse_program("p(X, X) -> exists Z . p(X, Z)")
        verdict = decide_termination(rules, variant="oblivious")
        assert verdict.method == "critical_rich_acyclicity"

    def test_guarded_routed_to_theorem_4(self):
        rules = parse_program("g(X, Y), q(Y) -> exists Z . g(Y, Z)")
        verdict = decide_termination(rules, variant="oblivious")
        assert verdict.method == "guarded_type_graph"

    def test_unguarded_raises_without_oracle(self):
        rules = parse_program("p(X, Y), q(Y, Z) -> exists W . r(X, W)")
        with pytest.raises(UnsupportedClassError, match="undecidable"):
            decide_termination(rules, variant="semi_oblivious")

    def test_unguarded_with_oracle_when_terminating(self):
        rules = parse_program("p(X, Y), q(Y, Z) -> exists W . r(X, W)")
        verdict = decide_termination(
            rules, variant="semi_oblivious", allow_oracle=True
        )
        assert verdict.terminating
        assert verdict.method == "critical_chase_oracle"

    def test_unguarded_oracle_inconclusive_raises(self):
        rules = parse_program(
            "p(X, Y), q(Y, Z) -> exists W . p(Z, W), q(W, W)"
        )
        with pytest.raises(UnsupportedClassError, match="inconclusive"):
            decide_termination(
                rules, variant="semi_oblivious", allow_oracle=True,
                oracle_steps=50,
            )

    def test_method_override(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        verdict = decide_termination(
            rules, variant="semi_oblivious", method="guarded"
        )
        assert verdict.method == "guarded_type_graph"
        assert verdict.terminating

    def test_unknown_method_rejected(self):
        rules = parse_program("p(X) -> q(X)")
        with pytest.raises(ValueError):
            decide_termination(rules, method="mystery")

    def test_restricted_variant_rejected(self):
        rules = parse_program("p(X) -> q(X)")
        with pytest.raises(UnsupportedClassError):
            decide_termination(rules, variant="restricted")

    def test_method_override_validates_class(self):
        rules = parse_program("g(X, Y), q(Y) -> exists Z . g(Y, Z)")
        with pytest.raises(UnsupportedClassError):
            decide_termination(rules, variant="oblivious", method="linear")


class TestOracle:
    def test_true_on_terminating(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        assert critical_chase_terminates(rules, "semi_oblivious") is True

    def test_none_on_diverging(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        assert critical_chase_terminates(
            rules, "semi_oblivious", max_steps=100
        ) is None

    def test_standard_flag(self):
        rules = parse_program("zero(X) -> exists Y . r(X, Y)")
        assert critical_chase_terminates(
            rules, "semi_oblivious", standard=True
        ) is True

    def test_oracle_verdict_object(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        verdict = oracle_verdict(rules, "semi_oblivious")
        assert verdict is not None
        assert verdict.terminating
        assert verdict.method == "critical_chase_oracle"

    def test_oracle_verdict_none_when_inconclusive(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        assert oracle_verdict(rules, "semi_oblivious", max_steps=50) is None


class TestVerdictAPI:
    def test_bool_protocol(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        assert decide_termination(rules, variant="semi_oblivious")
        rules2 = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        assert not decide_termination(rules2, variant="semi_oblivious")

    def test_explain_mentions_variant_and_method(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        verdict = decide_termination(rules, variant="oblivious")
        text = verdict.explain()
        assert "oblivious" in text
        assert "rich_acyclicity" in text
        assert "infinite" in text

    def test_repr(self):
        rules = parse_program("p(X) -> q(X)")
        verdict = decide_termination(rules, variant="oblivious")
        assert "terminating" in repr(verdict)
