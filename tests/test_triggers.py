"""Unit tests for trigger computation and identification policies."""

from repro.chase import (
    ChaseVariant,
    all_triggers,
    apply_trigger,
    head_satisfied,
    triggers_for_rule,
)
from repro.model import Instance, NullFactory
from repro.parser import parse_rule
from tests.conftest import atom


class TestTriggerEnumeration:
    def test_one_trigger_per_body_match(self):
        rule = parse_rule("p(X) -> q(X)")
        inst = Instance([atom("p", "a"), atom("p", "b")])
        triggers = list(triggers_for_rule(rule, 0, inst))
        assert len(triggers) == 2

    def test_join_body(self):
        rule = parse_rule("e(X, Y), e(Y, Z) -> t(X, Z)")
        inst = Instance([atom("e", "a", "b"), atom("e", "b", "c")])
        triggers = list(triggers_for_rule(rule, 0, inst))
        assert len(triggers) == 1

    def test_all_triggers_across_rules(self):
        rules = [parse_rule("p(X) -> q(X)"), parse_rule("p(X) -> r(X)")]
        inst = Instance([atom("p", "a")])
        assert len(list(all_triggers(rules, inst))) == 2


class TestTriggerKeys:
    def test_oblivious_distinguishes_non_frontier(self):
        rule = parse_rule("p(X, Y) -> exists Z . q(X, Z)")
        inst = Instance([atom("p", "a", "b"), atom("p", "a", "c")])
        triggers = list(triggers_for_rule(rule, 0, inst))
        o_keys = {t.key(ChaseVariant.OBLIVIOUS) for t in triggers}
        so_keys = {t.key(ChaseVariant.SEMI_OBLIVIOUS) for t in triggers}
        assert len(o_keys) == 2
        assert len(so_keys) == 1  # both agree on the frontier X -> a

    def test_restricted_key_matches_oblivious(self):
        rule = parse_rule("p(X, Y) -> exists Z . q(X, Z)")
        inst = Instance([atom("p", "a", "b")])
        (trigger,) = triggers_for_rule(rule, 0, inst)
        assert trigger.key(ChaseVariant.RESTRICTED) == trigger.key(
            ChaseVariant.OBLIVIOUS
        )

    def test_keys_distinguish_rules(self):
        rule_a = parse_rule("p(X) -> q(X)")
        rule_b = parse_rule("p(X) -> r(X)")
        inst = Instance([atom("p", "a")])
        (ta,) = triggers_for_rule(rule_a, 0, inst)
        (tb,) = triggers_for_rule(rule_b, 1, inst)
        assert ta.key(ChaseVariant.OBLIVIOUS) != tb.key(ChaseVariant.OBLIVIOUS)

    def test_frontier_image(self):
        rule = parse_rule("p(X, Y) -> q(Y)")
        inst = Instance([atom("p", "a", "b")])
        (trigger,) = triggers_for_rule(rule, 0, inst)
        ((name, value),) = trigger.frontier_image()
        assert name == "Y" and str(value) == "b"


class TestHeadSatisfied:
    def test_satisfied_by_existing_atom(self):
        rule = parse_rule("p(X) -> exists Z . q(X, Z)")
        inst = Instance([atom("p", "a"), atom("q", "a", "b")])
        (trigger,) = triggers_for_rule(rule, 0, inst)
        assert head_satisfied(trigger, inst)

    def test_not_satisfied(self):
        rule = parse_rule("p(X) -> exists Z . q(X, Z)")
        inst = Instance([atom("p", "a"), atom("q", "b", "b")])
        (trigger,) = triggers_for_rule(rule, 0, inst)
        assert not head_satisfied(trigger, inst)

    def test_full_rule_satisfied_iff_head_present(self):
        rule = parse_rule("p(X) -> q(X)")
        inst = Instance([atom("p", "a")])
        (trigger,) = triggers_for_rule(rule, 0, inst)
        assert not head_satisfied(trigger, inst)
        inst.add(atom("q", "a"))
        assert head_satisfied(trigger, inst)


class TestApplyTrigger:
    def test_existentials_get_fresh_nulls(self):
        rule = parse_rule("p(X) -> exists Z . q(X, Z)")
        inst = Instance([atom("p", "a")])
        (trigger,) = triggers_for_rule(rule, 0, inst)
        new = apply_trigger(trigger, inst, NullFactory())
        assert len(new) == 1
        assert len(new[0].nulls()) == 1

    def test_distinct_existentials_distinct_nulls(self):
        rule = parse_rule("p(X) -> exists Y, Z . q(X, Y), q(X, Z)")
        inst = Instance([atom("p", "a")])
        (trigger,) = triggers_for_rule(rule, 0, inst)
        new = apply_trigger(trigger, inst, NullFactory())
        nulls = set()
        for fact in new:
            nulls |= fact.nulls()
        assert len(nulls) == 2

    def test_shared_existential_shares_null(self):
        rule = parse_rule("p(X) -> exists Z . q(X, Z), r(Z)")
        inst = Instance([atom("p", "a")])
        (trigger,) = triggers_for_rule(rule, 0, inst)
        new = apply_trigger(trigger, inst, NullFactory())
        q_fact = next(f for f in new if f.predicate.name == "q")
        r_fact = next(f for f in new if f.predicate.name == "r")
        assert q_fact.terms[1] == r_fact.terms[0]

    def test_full_rule_duplicate_head_adds_nothing(self):
        rule = parse_rule("p(X) -> q(X)")
        inst = Instance([atom("p", "a"), atom("q", "a")])
        (trigger,) = triggers_for_rule(rule, 0, inst)
        assert apply_trigger(trigger, inst, NullFactory()) == []

    def test_facts_added_to_instance(self):
        rule = parse_rule("p(X) -> q(X)")
        inst = Instance([atom("p", "a")])
        (trigger,) = triggers_for_rule(rule, 0, inst)
        apply_trigger(trigger, inst, NullFactory())
        assert atom("q", "a") in inst
