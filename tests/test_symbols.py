"""The interned symbol table and the columnar fact core's id space.

Covers the interned-core PR's foundations:

* dense, deterministic id assignment and decode round-trips;
* priming (the process executor's symbol-diff application) and sealed
  tables (worker mirrors must never mint a parent-colliding id);
* pickling across a ``spawn``-context process pool — the wire format
  the delta-shipping protocol's init payload relies on;
* the instance-level consequences: identical executions assign
  identical ids, and mirrors rebuilt from flat int rows agree with the
  parent fact-for-fact.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

import pytest

from repro.model import Constant, Instance, Null, Predicate, SymbolTable
from repro.model.terms import intern_constant
from tests.conftest import atom


class TestSymbolTable:
    def test_dense_first_intern_order(self):
        table = SymbolTable()
        a, b = Constant("a"), Constant("b")
        assert table.intern(a) == 0
        assert table.intern(b) == 1
        assert table.intern(a) == 0  # idempotent
        assert len(table) == 2

    def test_decode_round_trip(self):
        table = SymbolTable()
        terms = [Constant("a"), Null(1), Constant(("nested", 2))]
        ids = [table.intern(t) for t in terms]
        assert [table.obj(i) for i in ids] == terms
        assert table.decode_many(ids) == terms

    def test_get_does_not_allocate(self):
        table = SymbolTable()
        assert table.get(Constant("a")) is None
        assert len(table) == 0

    def test_prime_installs_and_conflicts_raise(self):
        table = SymbolTable()
        table.prime(Constant("a"), 7)
        assert table.intern(Constant("a")) == 7
        assert table.obj(7) == Constant("a")
        table.prime(Constant("a"), 7)  # idempotent
        with pytest.raises(ValueError):
            table.prime(Constant("a"), 8)
        with pytest.raises(ValueError):
            table.prime(Constant("b"), 7)

    def test_fresh_ids_after_priming_do_not_collide(self):
        table = SymbolTable([(Constant("a"), 5)])
        assert table.intern(Constant("b")) == 6

    def test_sealed_table_allocates_negative_ids(self):
        table = SymbolTable([(Constant("a"), 3)], sealed=True)
        fresh = table.intern(Constant("unknown"))
        assert fresh < 0
        assert table.intern(Constant("a")) == 3

    def test_identical_executions_assign_identical_ids(self):
        def build():
            inst = Instance()
            for i in range(10):
                inst.add(atom("e", f"c{i}", f"c{(i * 3) % 7}"))
            return inst

        left, right = build(), build()
        for fact in left:
            for term in fact.terms:
                assert left.term_id_get(term) == right.term_id_get(term)


def _round_trip_remote(payload):
    """Worker-side: unpickle happens on task receipt; re-encode the
    table's items and intern one more symbol to prove liveness."""
    table, probe = payload
    items = table.items()
    fresh = table.intern(probe)
    return items, fresh, table.obj(fresh)


class TestSpawnPoolRoundTrip:
    @pytest.fixture(scope="class")
    def pool(self):
        with ProcessPoolExecutor(
            max_workers=1, mp_context=get_context("spawn")
        ) as pool:
            yield pool

    def test_symbol_table_survives_spawn_round_trip(self, pool):
        table = SymbolTable()
        terms = [Constant("a"), Null(3), Constant(("skolemish", 1))]
        for term in terms:
            table.intern(term)
        probe = Constant("added-remotely")
        items, fresh_id, fresh_obj = pool.submit(
            _round_trip_remote, (table, probe)
        ).result()
        # Same assignments on the receiving interpreter (hashes are
        # recomputed there — see repro.model.terms on why that matters).
        assert items == table.items()
        assert fresh_id == len(terms)
        assert fresh_obj == probe

    def test_sealed_table_round_trip_stays_sealed(self, pool):
        table = SymbolTable([(Constant("a"), 11)], sealed=True)
        items, fresh_id, fresh_obj = pool.submit(
            _round_trip_remote, (table, Constant("w"))
        ).result()
        assert (Constant("a"), 11) in items
        assert fresh_id < 0 and fresh_obj == Constant("w")

    def test_interned_constants_stay_canonical_through_table(self, pool):
        # The table composes with the term-level intern tables: a
        # pickled Constant routes through intern_constant on arrival.
        table = SymbolTable()
        table.intern(intern_constant("canon"))
        items, _, _ = pool.submit(
            _round_trip_remote, (table, Constant("x"))
        ).result()
        assert items[0][0] == Constant("canon")

    def test_local_pickle_round_trip(self):
        table = SymbolTable()
        for name in "abc":
            table.intern(Constant(name))
        clone = pickle.loads(pickle.dumps(table))
        assert clone.items() == table.items()
        assert clone.intern(Constant("d")) == 3


class TestInstanceIdSpace:
    def test_mirror_rebuilt_from_rows_agrees_with_parent(self):
        # The delta-shipping invariant in miniature: rebuild an
        # instance from (pred_id, row) pairs into a sealed-table mirror
        # primed with the parent's symbols; ordinals and rows agree.
        parent = Instance()
        p = Predicate("p", 2)
        facts = [atom("p", "a", "b"), atom("p", "b", "c"),
                 atom("p", "c", "a")]
        for fact in facts:
            parent.add(fact)
        pairs = parent.symbols.items()
        mirror = Instance(symbols=SymbolTable(pairs, sealed=True))
        mirror.prime_predicate(p, parent.pred_id(p))
        for ordinal in range(len(parent)):
            pid, row = parent.row_at(ordinal)
            assert mirror.add_row(pid, row) == ordinal
        assert mirror.facts() == parent.facts()
        assert len(mirror) == len(parent)

    def test_copy_preserves_id_assignments(self):
        inst = Instance([atom("p", "a"), atom("q", "a", "b")])
        clone = Instance(inst)
        for term in (Constant("a"), Constant("b")):
            assert clone.term_id_get(term) == inst.term_id_get(term)
        assert clone.facts() == inst.facts()
