"""Order-independence of the (semi-)oblivious chase (§2).

The paper recalls CT_∀ = CT_∃ for the oblivious and semi-oblivious
chase: all fair sequences agree on termination — and in fact fire the
same trigger set, so results coincide up to null renaming.  These
tests shuffle the engine's per-round trigger order and check both
claims empirically; the restricted chase's order-sensitivity is
exhibited as the contrast.
"""

import pytest

from repro.chase import ChaseVariant, run_chase
from repro.model import instance_homomorphism
from repro.parser import parse_database, parse_program
from repro.workloads import random_database, random_simple_linear

SEEDS = [None, 1, 2, 7, 42]


class TestOrderIndependence:
    @pytest.mark.parametrize(
        "variant", [ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS]
    )
    def test_termination_status_stable_under_shuffles(self, variant):
        rules = parse_program(
            """
            emp(X) -> exists D . works(X, D)
            works(X, D) -> dept(D)
            dept(D) -> exists M . head(D, M)
            """
        )
        db = parse_database("emp(ada)\nemp(alan)")
        outcomes = {
            run_chase(db, rules, variant, order_seed=seed).terminated
            for seed in SEEDS
        }
        assert outcomes == {True}

    @pytest.mark.parametrize(
        "variant", [ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS]
    )
    def test_results_homomorphically_equivalent_across_orders(self, variant):
        rules = random_simple_linear(4, seed=11)
        db = random_database(rules, seed=11)
        results = [
            run_chase(db, rules, variant, max_steps=300, order_seed=seed)
            for seed in SEEDS
        ]
        terminated = {r.terminated for r in results}
        assert len(terminated) == 1
        if terminated == {True}:
            reference = results[0].instance
            for other in results[1:]:
                assert len(other.instance) == len(reference)
                assert instance_homomorphism(
                    other.instance, reference
                ) is not None
                assert instance_homomorphism(
                    reference, other.instance
                ) is not None

    @pytest.mark.parametrize(
        "variant", [ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS]
    )
    def test_step_counts_identical_across_orders(self, variant):
        # o/so chases apply the same trigger set in any fair order.
        rules = parse_program(
            "p(X, Y) -> exists Z . q(X, Z)\nq(X, Y) -> r(X)"
        )
        db = parse_database("p(a, b)\np(a, c)\np(d, d)")
        counts = {
            run_chase(db, rules, variant, order_seed=seed).step_count
            for seed in SEEDS
        }
        assert len(counts) == 1

    def test_restricted_chase_is_order_sensitive(self):
        """The contrast case: the restricted chase may fire different
        trigger sets in different orders (a satisfied head depends on
        what was derived first).  Sizes may differ across orders —
        here we only require all orders to terminate and produce a
        model."""
        from repro.cq import is_model

        rules = parse_program(
            """
            a(X) -> exists Y . r(X, Y)
            a(X) -> r(X, X)
            """
        )
        db = parse_database("a(c)")
        sizes = set()
        for seed in SEEDS:
            result = run_chase(
                db, rules, ChaseVariant.RESTRICTED, order_seed=seed
            )
            assert result.terminated
            assert is_model(result.instance, rules)
            sizes.add(len(result.instance))
        # All runs are correct models; at least one order skips the
        # existential rule after deriving r(c, c) first.
        assert min(sizes) == 2
