"""The shared semi-naive delta engine and the delta-driven deciders.

Covers the PR-2 invariants:

* a round's triggers are materialized before any fact is added — in
  particular the MFA Skolem chase no longer mutates the instance while
  body homomorphisms are being enumerated (the self-feeding-rule
  regression);
* the ``(rule, frontier-image)`` fired-key set persists across rounds,
  so historical triggers are never re-keyed and their Skolem terms
  never rebuilt;
* the delta-driven ``skolem_chase`` agrees with a naive
  materialize-then-apply reference (same fixpoint instance, same MFA
  verdict, same canonical cyclic witness) over random programs;
* ``SkolemTerm`` introspection is recursion-free on deep terms;
* the class-indexed pattern joins compute exactly the assignment sets
  of the retained naive scan, and both pattern engines give the
  guarded decider the same verdicts.
"""

import random
import sys

import pytest

from repro.chase import ChaseVariant, DeltaEngine, critical_instance
from repro.chase import delta as delta_module
from repro.model import (
    Atom,
    Constant,
    Instance,
    Predicate,
    Variable,
    naive_homomorphisms,
)
from repro.parser import parse_program
from repro.termination import decide_guarded
from repro.termination import mfa as mfa_module
from repro.termination.abstraction import (
    PatternCloud,
    naive_pattern_homomorphisms,
    pattern_homomorphisms,
)
from repro.termination.mfa import SkolemTerm, _witness_key, skolem_chase
from repro.workloads import (
    guarded_loop_family,
    guarded_tower_family,
    random_guarded,
    random_linear,
    random_simple_linear,
)
from tests.conftest import atom


# -- the reference implementation ------------------------------------------


def reference_skolem_chase(database, rules, max_steps=20_000):
    """Materialize-then-apply Skolem chase by full naive re-enumeration.

    Independent of the delta machinery: every round enumerates all body
    homomorphisms with the retained naive matcher against the
    round-start instance, keeps the not-yet-fired ``(rule,
    frontier-image)`` keys (the fired set persists across rounds), and
    only then applies them.  Cyclic witnesses are canonicalized exactly
    like the production engine: least term of the earliest cyclic
    round.
    """
    rules = list(rules)
    instance = Instance(database)
    fired = set()
    steps = 0
    while True:
        round_triggers = []
        for index, rule in enumerate(rules):
            for assignment in naive_homomorphisms(rule.body, instance):
                key = (
                    index,
                    tuple(
                        (v.name, assignment[v])
                        for v in rule.frontier_sorted
                    ),
                )
                if key in fired:
                    continue
                fired.add(key)
                round_triggers.append((index, rule, assignment))
        if not round_triggers:
            return instance, None, True
        cyclic = []
        for index, rule, assignment in round_triggers:
            args = tuple(assignment[v] for v in rule.frontier_sorted)
            terms = []
            for var in rule.existentials_sorted:
                term = SkolemTerm((index, var.name), args)
                if term.is_cyclic():
                    cyclic.append(term)
                terms.append(term)
            if cyclic:
                continue
            mapping = {v: assignment[v] for v in rule.frontier}
            mapping.update(zip(rule.existentials_sorted, terms))
            for head_atom in rule.head:
                fact = head_atom.substitute(mapping)
                if instance.add(fact):
                    steps += 1
                    if steps >= max_steps:
                        return instance, None, False
        if cyclic:
            return instance, min(cyclic, key=_witness_key), False


def assert_skolem_equivalent(rules, max_steps=20_000):
    database = critical_instance(rules)
    instance, cyclic, fixpoint = skolem_chase(database, rules, max_steps)
    ref_instance, ref_cyclic, ref_fixpoint = reference_skolem_chase(
        database, rules, max_steps
    )
    assert fixpoint == ref_fixpoint
    assert cyclic == ref_cyclic
    if fixpoint:
        assert instance.frozen() == ref_instance.frozen()


# -- DeltaEngine -----------------------------------------------------------


class TestDeltaEngine:
    def test_round_is_materialized_and_deduped(self):
        rules = parse_program("p(X), q(X) -> r(X)")
        instance = Instance([atom("p", "a"), atom("q", "a")])
        engine = DeltaEngine(
            rules, instance, key=lambda t: t.key(ChaseVariant.OBLIVIOUS)
        )
        triggers = engine.next_round()
        # Discovered once per pivot but handed out once.
        assert len(triggers) == 1
        assert len(engine.fired) == 1

    def test_fired_keys_persist_across_rounds(self):
        rules = parse_program("p(X), q(X) -> r(X)")
        instance = Instance([atom("p", "a"), atom("q", "a")])
        engine = DeltaEngine(
            rules, instance, key=lambda t: t.key(ChaseVariant.OBLIVIOUS)
        )
        (trigger,) = engine.next_round()
        instance.add(atom("q", "a"))  # already present, but notify anyway
        engine.notify([atom("q", "a")])
        # The q-pivot re-discovers the same trigger; its key is already
        # fired, so the next round is empty.
        assert engine.next_round() == []

    def test_empty_frontier_means_fixpoint(self):
        rules = parse_program("p(X) -> r(X)")
        instance = Instance([atom("p", "a")])
        engine = DeltaEngine(
            rules, instance, key=lambda t: t.key(ChaseVariant.OBLIVIOUS)
        )
        assert len(engine.next_round()) == 1
        # Nothing notified: the engine has no frontier left.
        assert engine.pending_facts() == 0
        assert engine.next_round() == []


# -- the mid-enumeration mutation regression -------------------------------


class TestNoMutationDuringEnumeration:
    SELF_FEEDING = "e(X, Y), e(Y, Z) -> exists W . e(Z, W)"

    def test_self_feeding_rule_matches_reference(self):
        # The head feeds the rule's own body: under the pre-PR lazy
        # discovery, facts added by one firing leaked into later join
        # levels of the same enumeration and cascaded within a round.
        rules = parse_program(self.SELF_FEEDING)
        assert_skolem_equivalent(rules, max_steps=4000)

    def test_discovery_never_observes_a_mutation(self, monkeypatch):
        # Wrap the discovery generator so every yield checks that the
        # instance has not grown since discovery started.
        original = delta_module.delta_triggers

        def guarded(rules, instance, new_facts):
            size_at_start = len(instance)
            for trigger in original(rules, instance, new_facts):
                assert len(instance) == size_at_start, (
                    "instance mutated while triggers were being "
                    "enumerated"
                )
                yield trigger

        monkeypatch.setattr(delta_module, "delta_triggers", guarded)
        rules = parse_program(self.SELF_FEEDING)
        instance, cyclic, fixpoint = skolem_chase(
            critical_instance(rules), rules, max_steps=4000
        )
        # The rule nests its own Skolem symbol: MFA must be refuted.
        assert cyclic is not None and cyclic.is_cyclic()
        assert not fixpoint

    def test_self_feeding_full_rule_round_structure(self):
        # A full-TGD variant: transitive closure feeding itself.  No
        # Skolem terms at all, but round materialization still decides
        # what a "round" means; the fixpoint must match the reference.
        rules = parse_program("e(X, Y), e(Y, Z) -> e(X, Z)")
        assert_skolem_equivalent(rules)


# -- fired keys persist across rounds (no Skolem-term rebuilds) ------------


class TestSeenAssignmentsHoisted:
    def test_each_skolem_term_is_built_at_most_once(self, monkeypatch):
        constructions = []

        class CountingSkolemTerm(SkolemTerm):
            def __init__(self, symbol, args):
                super().__init__(symbol, args)
                constructions.append((symbol, args))

        monkeypatch.setattr(mfa_module, "SkolemTerm", CountingSkolemTerm)
        # r1's output re-enables r0's body with the *same* frontier
        # image two rounds later: with a per-round seen-set (the old
        # behaviour) r0's Skolem term would be rebuilt; the persistent
        # fired-key set skips the trigger before term construction.
        rules = parse_program(
            """
            a(X), b(X, Y) -> exists Z . h(X, Z)
            h(X, Z) -> b(X, Z)
            """
        )
        instance, cyclic, fixpoint = skolem_chase(
            critical_instance(rules), rules
        )
        assert fixpoint and cyclic is None
        assert len(constructions) == len(set(constructions)), (
            "a (rule, frontier-image) pair was re-keyed and its Skolem "
            "term rebuilt"
        )

    def test_rediscovered_key_fires_no_second_time(self):
        rules = parse_program(
            """
            a(X), b(X, Y) -> exists Z . h(X, Z)
            h(X, Z) -> b(X, Z)
            """
        )
        assert_skolem_equivalent(rules)


# -- SkolemTerm introspection ----------------------------------------------


class TestSkolemTermIterative:
    def test_deep_term_does_not_hit_the_recursion_limit(self):
        depth = sys.getrecursionlimit() + 500
        term = SkolemTerm((0, "Z"), (Constant("*"),))
        for _ in range(depth - 1):
            term = SkolemTerm((0, "Z"), (term,))
        assert term.depth() == depth
        assert term.is_cyclic()
        assert term.contains_symbol((0, "Z"))
        assert not term.contains_symbol((1, "W"))

    def test_depth_is_cached_and_consistent(self):
        base = SkolemTerm((0, "Z"), (Constant("*"),))
        wide = SkolemTerm(
            (1, "W"), (base, Constant("*"), SkolemTerm((2, "V"), (base,)))
        )
        assert base.depth() == 1
        assert wide.depth() == 3
        assert wide.contains_symbol((2, "V"))
        assert not wide.is_cyclic()

    def test_witness_key_orders_deep_terms_without_recursion(self):
        deep = SkolemTerm((0, "Z"), (Constant("*"),))
        for _ in range(sys.getrecursionlimit() + 100):
            deep = SkolemTerm((0, "Z"), (deep,))
        shallow = SkolemTerm((0, "Z"), (Constant("*"),))
        assert _witness_key(shallow) < _witness_key(deep)


# -- random-program equivalence --------------------------------------------


class TestSkolemChaseEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_simple_linear_programs(self, seed):
        rules = random_simple_linear(3, seed=seed)
        assert_skolem_equivalent(rules, max_steps=4000)

    @pytest.mark.parametrize("seed", range(8))
    def test_simple_linear_with_constants(self, seed):
        rules = random_simple_linear(
            3, seed=seed, constant_prob=0.3
        )
        assert_skolem_equivalent(rules, max_steps=4000)

    @pytest.mark.parametrize("seed", range(8))
    def test_linear_programs_with_repeats(self, seed):
        rules = random_linear(3, repeat_prob=0.5, seed=seed)
        assert_skolem_equivalent(rules, max_steps=4000)

    @pytest.mark.parametrize("seed", range(6))
    def test_guarded_programs(self, seed):
        rules = random_guarded(3, seed=seed)
        assert_skolem_equivalent(rules, max_steps=4000)

    def test_known_cyclic_program_yields_identical_witness(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        database = critical_instance(rules)
        _, cyclic, _ = skolem_chase(database, rules)
        _, ref_cyclic, _ = reference_skolem_chase(database, rules)
        assert cyclic is not None
        assert cyclic == ref_cyclic


# -- pattern-join equivalence ----------------------------------------------


def _random_cloud_and_bodies(seed):
    rng = random.Random(seed)
    predicates = [
        Predicate(f"q{i}", rng.randint(1, 3)) for i in range(3)
    ]
    num_classes = rng.randint(2, 5)
    cloud = frozenset(
        (
            pred,
            tuple(
                rng.randrange(num_classes) for _ in range(pred.arity)
            ),
        )
        for pred in predicates
        for _ in range(rng.randint(1, 5))
    )
    variables = [Variable(f"X{i}") for i in range(1, 5)]
    constant = Constant("a")
    bodies = []
    for _ in range(4):
        body = []
        for _ in range(rng.randint(1, 3)):
            pred = rng.choice(predicates)
            terms = [
                constant if rng.random() < 0.15 else rng.choice(variables)
                for _ in range(pred.arity)
            ]
            body.append(Atom(pred, terms))
        bodies.append(tuple(body))
    return cloud, bodies, {constant: 0}


class TestPatternJoinEquivalence:
    @pytest.mark.parametrize("seed", range(15))
    def test_indexed_matches_naive_on_random_clouds(self, seed):
        cloud, bodies, constant_class = _random_cloud_and_bodies(seed)
        for body in bodies:
            indexed = {
                frozenset(h.items())
                for h in pattern_homomorphisms(body, cloud, constant_class)
            }
            naive = {
                frozenset(h.items())
                for h in naive_pattern_homomorphisms(
                    body, cloud, constant_class
                )
            }
            assert indexed == naive

    def test_pattern_cloud_input_is_accepted_by_both(self):
        cloud, bodies, constant_class = _random_cloud_and_bodies(0)
        index = PatternCloud(cloud)
        for body in bodies:
            assert {
                frozenset(h.items())
                for h in pattern_homomorphisms(body, index, constant_class)
            } == {
                frozenset(h.items())
                for h in naive_pattern_homomorphisms(
                    body, index, constant_class
                )
            }

    def test_unknown_constant_matches_nothing(self):
        p = Predicate("p", 2)
        body = (Atom(p, [Variable("X"), Constant("missing")]),)
        cloud = frozenset([(p, (0, 1))])
        assert list(pattern_homomorphisms(body, cloud, {})) == []
        assert list(naive_pattern_homomorphisms(body, cloud, {})) == []


class TestGuardedDeciderEngines:
    @pytest.mark.parametrize(
        "rules,terminating",
        [
            (guarded_tower_family(3), True),
            (guarded_loop_family(2), False),
        ],
        ids=["tower", "loop"],
    )
    def test_both_engines_agree_on_families(self, rules, terminating):
        for variant in (ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS):
            indexed = decide_guarded(rules, variant)
            naive = decide_guarded(rules, variant, pattern_engine="naive")
            assert indexed.terminating == naive.terminating == terminating
            assert (indexed.witness is None) == (naive.witness is None)

    @pytest.mark.parametrize("seed", range(5))
    def test_both_engines_agree_on_random_guarded(self, seed):
        rules = random_guarded(3, seed=seed)
        indexed = decide_guarded(rules, ChaseVariant.SEMI_OBLIVIOUS)
        naive = decide_guarded(
            rules, ChaseVariant.SEMI_OBLIVIOUS, pattern_engine="naive"
        )
        assert indexed.terminating == naive.terminating

    def test_stats_report_pattern_joins(self):
        verdict = decide_guarded(
            guarded_tower_family(2), ChaseVariant.SEMI_OBLIVIOUS
        )
        assert verdict.stats["pattern_joins"] > 0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            decide_guarded(
                guarded_tower_family(2),
                ChaseVariant.SEMI_OBLIVIOUS,
                pattern_engine="quantum",
            )
