"""Unit tests for the syntactic class recognizers."""

import pytest

from repro.classes import (
    classify,
    is_full,
    is_guarded,
    is_linear,
    is_simple_linear,
    is_single_head,
    is_single_head_per_predicate,
    narrowest_class,
    offending_rules,
)
from repro.parser import parse_program


SL = parse_program("p(X, Y) -> exists Z . q(Y, Z)")
L = parse_program("p(X, X) -> exists Z . q(X, Z)")
G = parse_program("g(X, Y), p(X) -> exists Z . q(Y, Z)")
UNGUARDED = parse_program("p(X, Y), q(Y, Z) -> r(X, Z)")
FULL = parse_program("p(X, Y) -> q(Y, X)")


class TestHierarchy:
    def test_sl_subset_of_l(self):
        assert is_simple_linear(SL)
        assert is_linear(SL)
        assert is_guarded(SL)

    def test_l_not_sl(self):
        assert is_linear(L)
        assert not is_simple_linear(L)
        assert is_guarded(L)

    def test_g_not_l(self):
        assert is_guarded(G)
        assert not is_linear(G)

    def test_unguarded(self):
        assert not is_guarded(UNGUARDED)
        assert not is_linear(UNGUARDED)

    def test_empty_program_in_all_classes(self):
        assert is_simple_linear([])
        assert is_guarded([])
        assert is_full([])


class TestNarrowestClass:
    def test_each_level(self):
        assert narrowest_class(SL) == "simple_linear"
        assert narrowest_class(L) == "linear"
        assert narrowest_class(G) == "guarded"
        assert narrowest_class(UNGUARDED) == "general"

    def test_mixture_takes_widest(self):
        assert narrowest_class(SL + G) == "guarded"
        assert narrowest_class(SL + UNGUARDED) == "general"


class TestFullAndSingleHead:
    def test_is_full(self):
        assert is_full(FULL)
        assert not is_full(SL)

    def test_single_head(self):
        assert is_single_head(SL)
        assert not is_single_head(
            parse_program("p(X) -> q(X), r(X)")
        )

    def test_single_head_per_predicate(self):
        ok = parse_program("p(X) -> q(X)\nq(X) -> r(X)")
        assert is_single_head_per_predicate(ok)
        dup = parse_program("p(X) -> q(X)\nr(X) -> q(X)")
        assert not is_single_head_per_predicate(dup)

    def test_single_head_per_predicate_requires_single_heads(self):
        multi = parse_program("p(X) -> q(X), r(X)")
        assert not is_single_head_per_predicate(multi)


class TestClassifyAndDiagnostics:
    def test_classify_report(self):
        report = classify(SL)
        assert report["simple_linear"] and report["linear"]
        assert report["guarded"] and not report["full"]

    def test_offending_rules(self):
        mixed = SL + UNGUARDED
        offending = offending_rules(mixed, "guarded")
        assert offending == list(UNGUARDED)

    def test_offending_rules_unknown_class(self):
        with pytest.raises(ValueError):
            offending_rules(SL, "mystery")
