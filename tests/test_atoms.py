"""Unit tests for repro.model.atoms."""

import pytest

from repro.model import Atom, Constant, Null, Position, Predicate, Variable


class TestPredicate:
    def test_identity(self):
        assert Predicate("p", 2) == Predicate("p", 2)
        assert Predicate("p", 2) != Predicate("p", 3)
        assert Predicate("p", 2) != Predicate("q", 2)

    def test_negative_arity_rejected(self):
        with pytest.raises(ValueError):
            Predicate("p", -1)

    def test_zero_arity_allowed(self):
        assert Predicate("goal", 0).arity == 0

    def test_positions_enumeration(self):
        positions = Predicate("p", 3).positions()
        assert len(positions) == 3
        assert [pos.index for pos in positions] == [0, 1, 2]

    def test_str(self):
        assert str(Predicate("p", 2)) == "p/2"

    def test_ordering(self):
        assert Predicate("a", 1) < Predicate("b", 1)
        assert Predicate("a", 1) < Predicate("a", 2)


class TestPosition:
    def test_identity(self):
        p = Predicate("p", 2)
        assert Position(p, 0) == Position(p, 0)
        assert Position(p, 0) != Position(p, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Position(Predicate("p", 2), 2)
        with pytest.raises(ValueError):
            Position(Predicate("p", 2), -1)

    def test_str_bracket_notation(self):
        assert str(Position(Predicate("p", 2), 1)) == "p[1]"


class TestAtom:
    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Atom(Predicate("p", 2), [Variable("X")])

    def test_equality(self):
        p = Predicate("p", 2)
        x = Variable("X")
        assert Atom(p, [x, x]) == Atom(p, [x, x])
        assert Atom(p, [x, Variable("Y")]) != Atom(p, [x, x])

    def test_variables_constants_nulls(self):
        p = Predicate("p", 3)
        a = Atom(p, [Variable("X"), Constant("c"), Null(1)])
        assert a.variables() == {Variable("X")}
        assert a.constants() == {Constant("c")}
        assert a.nulls() == {Null(1)}

    def test_is_ground(self):
        p = Predicate("p", 2)
        assert Atom(p, [Constant("a"), Null(1)]).is_ground()
        assert not Atom(p, [Constant("a"), Variable("X")]).is_ground()

    def test_zero_ary_atom_is_ground(self):
        assert Atom(Predicate("goal", 0), []).is_ground()

    def test_positions_of(self):
        p = Predicate("p", 3)
        x = Variable("X")
        a = Atom(p, [x, Variable("Y"), x])
        assert [pos.index for pos in a.positions_of(x)] == [0, 2]
        assert a.positions_of(Variable("W")) == ()

    def test_has_repeated_variables(self):
        p = Predicate("p", 2)
        x = Variable("X")
        assert Atom(p, [x, x]).has_repeated_variables()
        assert not Atom(p, [x, Variable("Y")]).has_repeated_variables()

    def test_repeated_constants_are_not_repeated_variables(self):
        p = Predicate("p", 2)
        c = Constant("c")
        assert not Atom(p, [c, c]).has_repeated_variables()

    def test_substitute(self):
        p = Predicate("p", 2)
        x, y = Variable("X"), Variable("Y")
        sub = Atom(p, [x, y]).substitute({x: Constant("a")})
        assert sub == Atom(p, [Constant("a"), y])

    def test_substitute_leaves_original_untouched(self):
        p = Predicate("p", 1)
        x = Variable("X")
        original = Atom(p, [x])
        original.substitute({x: Constant("a")})
        assert original.terms == (x,)

    def test_str(self):
        p = Predicate("p", 2)
        assert str(Atom(p, [Variable("X"), Constant("a")])) == "p(X, a)"
