"""Tests for workload generators and parametric families."""

import pytest

from repro.classes import (
    is_guarded,
    is_linear,
    is_simple_linear,
)
from repro.model import validate_program
from repro.termination import decide_termination
from repro.workloads import (
    chain_family,
    cycle_family,
    diagonal_family,
    dl_lite_cyclic_family,
    dl_lite_family,
    guarded_loop_family,
    guarded_tower_family,
    random_database,
    random_guarded,
    random_linear,
    random_simple_linear,
    shifting_family,
)


class TestGenerators:
    def test_sl_generator_produces_sl(self):
        for seed in range(5):
            rules = random_simple_linear(5, seed=seed)
            assert is_simple_linear(rules)
            validate_program(rules)

    def test_linear_generator_produces_linear(self):
        for seed in range(5):
            rules = random_linear(5, seed=seed)
            assert is_linear(rules)

    def test_guarded_generator_produces_guarded(self):
        for seed in range(5):
            rules = random_guarded(4, seed=seed)
            assert is_guarded(rules)

    def test_determinism(self):
        assert random_simple_linear(5, seed=3) == random_simple_linear(
            5, seed=3
        )
        assert random_linear(5, seed=3) == random_linear(5, seed=3)
        assert random_guarded(5, seed=3) == random_guarded(5, seed=3)

    def test_seeds_vary_output(self):
        outputs = {
            tuple(random_simple_linear(5, seed=s)) for s in range(8)
        }
        assert len(outputs) > 1

    def test_rule_count_respected(self):
        assert len(random_simple_linear(7, seed=0)) == 7
        assert len(random_guarded(3, seed=0)) == 3

    def test_random_database_over_schema(self):
        rules = random_simple_linear(4, seed=1)
        db = random_database(rules, num_constants=3, seed=1)
        assert db.is_database()
        schema_names = {p.name for p in db.predicates()}
        from repro.model import program_predicates

        assert schema_names <= {p.name for p in program_predicates(rules)}


class TestFamilies:
    @pytest.mark.parametrize("n", [1, 3, 6])
    def test_chain_terminates(self, n):
        rules = chain_family(n)
        assert is_simple_linear(rules)
        verdict = decide_termination(rules, variant="oblivious")
        assert verdict.terminating

    @pytest.mark.parametrize("n", [1, 3, 6])
    def test_cycle_diverges(self, n):
        rules = cycle_family(n)
        for variant in ("oblivious", "semi_oblivious"):
            assert not decide_termination(rules, variant=variant).terminating

    @pytest.mark.parametrize("k", [2, 3])
    def test_shifting_diverges(self, k):
        rules = shifting_family(k)
        assert not decide_termination(
            rules, variant="semi_oblivious"
        ).terminating

    def test_shifting_arity_one_separates_variants(self):
        # p(X) -> exists Z . p(Z): the frontier is empty, so the
        # semi-oblivious chase fires once; the oblivious chase keys on
        # X and diverges.
        rules = shifting_family(1)
        assert not decide_termination(rules, variant="oblivious").terminating
        assert decide_termination(
            rules, variant="semi_oblivious"
        ).terminating

    @pytest.mark.parametrize("k", [2, 3])
    def test_diagonal_terminates_but_not_wa(self, k):
        from repro.graphs import is_weakly_acyclic

        rules = diagonal_family(k)
        assert not is_weakly_acyclic(rules)
        assert decide_termination(rules, variant="oblivious").terminating

    @pytest.mark.parametrize("levels", [1, 2, 4])
    def test_guarded_tower_terminates(self, levels):
        rules = guarded_tower_family(levels)
        assert is_guarded(rules) and not is_linear(rules)
        assert decide_termination(rules, variant="oblivious").terminating

    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_guarded_loop_diverges(self, levels):
        rules = guarded_loop_family(levels)
        assert not decide_termination(
            rules, variant="semi_oblivious"
        ).terminating

    @pytest.mark.parametrize("n", [2, 4])
    def test_dl_lite_family(self, n):
        rules = dl_lite_family(n)
        assert is_simple_linear(rules)
        assert decide_termination(rules, variant="oblivious").terminating

    @pytest.mark.parametrize("n", [2, 4])
    def test_dl_lite_cyclic_diverges(self, n):
        rules = dl_lite_cyclic_family(n)
        assert not decide_termination(
            rules, variant="semi_oblivious"
        ).terminating

    def test_family_bounds_validated(self):
        with pytest.raises(ValueError):
            chain_family(0)
        with pytest.raises(ValueError):
            shifting_family(0)
        with pytest.raises(ValueError):
            diagonal_family(1)
        with pytest.raises(ValueError):
            guarded_tower_family(0)
        with pytest.raises(ValueError):
            dl_lite_family(1)
