"""Unit tests for the term-level indexes and compiled join plans."""

from repro.model import (
    Constant,
    Instance,
    Predicate,
    Variable,
    compile_plan,
    order_atoms,
    plan_for,
)
from repro.model.joinplan import AtomStep
from tests.conftest import atom, tgd


class TestFactsMatching:
    def setup_method(self):
        self.inst = Instance([
            atom("e", "a", "b"), atom("e", "a", "c"), atom("e", "b", "c"),
            atom("p", "a"),
        ])
        self.e = Predicate("e", 2)

    def test_empty_bindings_is_whole_relation(self):
        assert self.inst.facts_matching(self.e, {}) == [
            atom("e", "a", "b"), atom("e", "a", "c"), atom("e", "b", "c"),
        ]

    def test_single_position_probe(self):
        assert self.inst.facts_matching(self.e, {0: Constant("a")}) == [
            atom("e", "a", "b"), atom("e", "a", "c"),
        ]
        assert self.inst.facts_matching(self.e, {1: Constant("c")}) == [
            atom("e", "a", "c"), atom("e", "b", "c"),
        ]

    def test_multi_position_probe_filters(self):
        assert self.inst.facts_matching(
            self.e, {0: Constant("a"), 1: Constant("c")}
        ) == [atom("e", "a", "c")]

    def test_miss_returns_empty(self):
        assert self.inst.facts_matching(self.e, {0: Constant("zz")}) == []
        assert self.inst.facts_matching(Predicate("zz", 1),
                                        {0: Constant("a")}) == []

    def test_fully_bound_is_membership_probe(self):
        assert self.inst.facts_matching(
            self.e, {0: Constant("a"), 1: Constant("b")}
        ) == [atom("e", "a", "b")]
        assert self.inst.facts_matching(
            self.e, {0: Constant("b"), 1: Constant("b")}
        ) == []

    def test_out_of_range_position_matches_nothing(self):
        # Also guards the fully-bound fast path: two bindings on a
        # binary predicate, but one position out of range.
        assert self.inst.facts_matching(
            self.e, {1: Constant("b"), 2: Constant("a")}
        ) == []
        assert self.inst.facts_matching(self.e, {5: Constant("a")}) == []

    def test_insertion_order_preserved(self):
        inst = Instance()
        facts = [atom("e", "x", str(i)) for i in (3, 1, 2)]
        for f in facts:
            inst.add(f)
        assert inst.facts_matching(self.e, {0: Constant("x")}) == facts

    def test_index_tracks_additions(self):
        self.inst.add(atom("e", "a", "d"))
        assert self.inst.facts_matching(self.e, {0: Constant("a")}) == [
            atom("e", "a", "b"), atom("e", "a", "c"), atom("e", "a", "d"),
        ]


class TestFactsWithPredicateCaching:
    def test_snapshot_is_cached_until_growth(self):
        inst = Instance([atom("p", "a"), atom("p", "b")])
        p = Predicate("p", 1)
        first = inst.facts_with_predicate(p)
        assert inst.facts_with_predicate(p) is first
        inst.add(atom("p", "c"))
        rebuilt = inst.facts_with_predicate(p)
        assert rebuilt is not first
        assert rebuilt == (atom("p", "a"), atom("p", "b"), atom("p", "c"))
        # The old snapshot is immutable and unchanged.
        assert first == (atom("p", "a"), atom("p", "b"))

    def test_count_with_predicate(self):
        inst = Instance([atom("p", "a"), atom("p", "b")])
        assert inst.count_with_predicate(Predicate("p", 1)) == 2
        assert inst.count_with_predicate(Predicate("q", 1)) == 0


class TestAtomStep:
    def test_try_match_binds_in_place(self):
        step = AtomStep(atom("e", "X", "Y"))
        assignment = {}
        newly = step.try_match(atom("e", "a", "b"), assignment)
        assert newly == (Variable("X"), Variable("Y"))
        assert assignment == {Variable("X"): Constant("a"),
                              Variable("Y"): Constant("b")}

    def test_failed_match_leaves_assignment_untouched(self):
        step = AtomStep(atom("q", "X", "X", "Y"))
        assignment = {Variable("Y"): Constant("z")}
        assert step.try_match(atom("q", "a", "b", "c"), assignment) is None
        assert assignment == {Variable("Y"): Constant("z")}

    def test_repeated_variable_checked(self):
        step = AtomStep(atom("e", "X", "X"))
        assert step.try_match(atom("e", "a", "b"), {}) is None
        assert step.try_match(atom("e", "a", "a"), {}) == (Variable("X"),)

    def test_bound_variable_respected(self):
        step = AtomStep(atom("e", "X", "Y"))
        assignment = {Variable("X"): Constant("b")}
        assert step.try_match(atom("e", "a", "c"), assignment) is None
        assert step.try_match(atom("e", "b", "c"), assignment) == (
            Variable("Y"),
        )

    def test_constant_positions_checked(self):
        step = AtomStep(atom("e", "a", "X"))
        assert step.try_match(atom("e", "b", "c"), {}) is None
        assert step.try_match(atom("e", "a", "c"), {}) == (Variable("X"),)

    def test_candidates_probe_bound_positions(self):
        inst = Instance([atom("e", "a", "b"), atom("e", "b", "c"),
                         atom("e", "b", "d")])
        step = AtomStep(atom("e", "X", "Y"))
        unbound = list(step.candidates(inst, {}))
        assert len(unbound) == 3
        probed = list(step.candidates(inst, {Variable("X"): Constant("b")}))
        assert probed == [atom("e", "b", "c"), atom("e", "b", "d")]


class TestOrderAtoms:
    def test_most_constrained_first(self):
        inst = Instance(
            [atom("big", str(i), str(i + 1)) for i in range(10)]
            + [atom("small", "1")]
        )
        ordered = order_atoms(
            [atom("big", "X", "Y"), atom("small", "X")], inst
        )
        assert ordered[0] == atom("small", "X")

    def test_connected_atoms_preferred_over_smaller_disconnected(self):
        inst = Instance(
            [atom("big", str(i), str(i + 1)) for i in range(10)]
            + [atom("small", "1")]
        )
        # With X pre-bound, big shares a variable while small does not:
        # the join must not start a cross-product with small.
        ordered = order_atoms(
            [atom("small", "Z"), atom("big", "X", "Y")],
            inst,
            bound=frozenset({Variable("X")}),
        )
        assert ordered[0] == atom("big", "X", "Y")

    def test_new_vars_breaks_fan_out_ties(self):
        # Same relation (same fan-out): the atom introducing fewer new
        # variables is the more constrained join step.
        inst = Instance([atom("e", "a", "b"), atom("e", "b", "c")])
        ordered = order_atoms(
            [atom("e", "X", "Y"), atom("e", "Z", "Z")], inst
        )
        assert ordered[0] == atom("e", "Z", "Z")


class TestPlanCaching:
    def test_plan_cached_by_ordered_atoms(self):
        body = (atom("e", "X", "Y"), atom("e", "Y", "Z"))
        assert compile_plan(body) is compile_plan(body)

    def test_plan_for_executes(self):
        inst = Instance([atom("e", "a", "b"), atom("e", "b", "c")])
        plan = plan_for([atom("e", "X", "Y"), atom("e", "Y", "Z")], inst)
        results = list(plan.run(inst, {}))
        assert results == [{
            Variable("X"): Constant("a"),
            Variable("Y"): Constant("b"),
            Variable("Z"): Constant("c"),
        }]

    def test_run_restores_scratch_assignment(self):
        inst = Instance([atom("e", "a", "b"), atom("e", "b", "c")])
        plan = plan_for([atom("e", "X", "Y")], inst)
        scratch = {}
        list(plan.run(inst, scratch))
        assert scratch == {}

    def test_first_finds_existence(self):
        inst = Instance([atom("e", "a", "b")])
        plan = plan_for([atom("e", "X", "Y")], inst)
        assert plan.first(inst, {}) is not None
        assert plan.first(inst, {Variable("X"): Constant("zz")}) is None


class TestRuleSortedOrders:
    def test_sorted_orders_precomputed(self):
        rule = tgd(
            [atom("e", "Yb", "Xa")],
            [atom("p", "Xa", "Yb", "Zc", "Za")],
        )
        assert rule.frontier_sorted == (Variable("Xa"), Variable("Yb"))
        assert rule.existentials_sorted == (Variable("Za"), Variable("Zc"))
        assert rule.body_variables_sorted == (Variable("Xa"), Variable("Yb"))

    def test_sorted_orders_survive_rename(self):
        rule = tgd([atom("e", "X", "Y")], [atom("p", "Y", "Z")])
        renamed = rule.rename_apart("_1")
        assert renamed.frontier_sorted == (Variable("Y_1"),)
        assert renamed.existentials_sorted == (Variable("Z_1"),)
