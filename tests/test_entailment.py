"""Tests for guarded atom entailment."""

import pytest

from repro.errors import UnsupportedClassError
from repro.model import Variable
from repro.parser import parse_atom, parse_database, parse_program
from repro.entailment import entails_atom, saturated_facts


class TestEntailsAtom:
    def test_database_facts_entailed(self):
        rules = parse_program("p(X) -> q(X)")
        db = parse_database("p(a)")
        assert entails_atom(rules, db, parse_atom("p(a)"))

    def test_full_rule_consequences(self):
        rules = parse_program("p(X) -> q(X)\nq(X) -> r(X)")
        db = parse_database("p(a)")
        assert entails_atom(rules, db, parse_atom("r(a)"))
        assert not entails_atom(rules, db, parse_atom("r(b)"))

    def test_join_rule_consequences(self):
        rules = parse_program("e(X, Y), e(Y, X) -> sym(X)")
        db = parse_database("e(a, b)\ne(b, a)")
        assert entails_atom(rules, db, parse_atom("sym(a)"))
        assert entails_atom(rules, db, parse_atom("sym(b)"))

    def test_through_existentials_and_back(self):
        # The consequence travels through a null and returns to the
        # constants: requires genuine up-propagation.
        rules = parse_program(
            """
            a(X) -> exists Y . e(X, Y)
            e(X, Y) -> marked(X)
            """
        )
        db = parse_database("a(c)")
        assert entails_atom(rules, db, parse_atom("marked(c)"))

    def test_entailment_under_infinite_chase(self):
        # The chase diverges, yet entailment over the constants is
        # decided (the whole point of using saturation, not the chase).
        rules = parse_program(
            """
            person(X) -> exists Y . father(X, Y), person(Y)
            father(X, Y) -> childOf(Y, X)
            person(X) -> human(X)
            """
        )
        db = parse_database("person(bob)")
        assert entails_atom(rules, db, parse_atom("human(bob)"))
        assert not entails_atom(rules, db, parse_atom("childOf(bob, bob)"))

    def test_unknown_constant_not_entailed(self):
        rules = parse_program("p(X) -> q(X)")
        db = parse_database("p(a)")
        assert not entails_atom(rules, db, parse_atom("q(stranger)"))

    def test_unknown_predicate_not_entailed(self):
        rules = parse_program("p(X) -> q(X)")
        db = parse_database("p(a)")
        assert not entails_atom(rules, db, parse_atom("mystery(a)"))

    def test_zero_ary_goal(self):
        rules = parse_program("p(X), q(X) -> boom()")
        db = parse_database("p(a)\nq(a)")
        assert entails_atom(rules, db, parse_atom("boom()"))

    def test_non_ground_query_rejected(self):
        from repro.model import Atom, Predicate

        rules = parse_program("p(X) -> q(X)")
        db = parse_database("p(a)")
        query = Atom(Predicate("q", 1), [Variable("X")])
        with pytest.raises(ValueError):
            entails_atom(rules, db, query)

    def test_unguarded_rules_rejected(self):
        rules = parse_program("p(X, Y), q(Y, Z) -> r(X, Z)")
        db = parse_database("p(a, b)")
        with pytest.raises(UnsupportedClassError):
            entails_atom(rules, db, parse_atom("r(a, a)"))


class TestSaturatedFacts:
    def test_matches_terminating_chase_restriction(self):
        from repro.chase import semi_oblivious_chase

        rules = parse_program("p(X) -> q(X)\nq(X) -> exists Z . r(X, Z)")
        db = parse_database("p(a)\np(b)")
        saturated = saturated_facts(rules, db)
        chase = semi_oblivious_chase(db, rules)
        assert chase.terminated
        constant_facts = {
            f for f in chase.instance if not f.nulls()
        }
        assert set(saturated.facts()) == constant_facts

    def test_no_null_facts_reported(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        db = parse_database("p(a)")
        saturated = saturated_facts(rules, db)
        assert all(not f.nulls() for f in saturated)

    def test_infinite_chase_still_finite_report(self):
        rules = parse_program(
            "person(X) -> exists Y . father(X, Y), person(Y)"
        )
        db = parse_database("person(bob)")
        saturated = saturated_facts(rules, db)
        assert set(str(f) for f in saturated) == {"person(bob)"}
