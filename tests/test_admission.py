"""Admission control, overload shedding, quarantine, and the health
surface.

The load-bearing tests saturate a real :class:`BackgroundServer` (with
the ``slow_accept`` fault pinning capacity) and require the service to
shed the excess with 429/503 + ``Retry-After`` while every *accepted*
request still answers correctly — and ``/health`` keeps answering
throughout.
"""

import http.client
import json
import threading

import pytest

from repro.chase import ChaseVariant
from repro.chase.incremental import ChaseSession
from repro.errors import BudgetExceededError
from repro.parser import parse_database, parse_program
from repro.serve import (
    AdmissionController,
    BackgroundServer,
    ChaseService,
    OverloadError,
    ServiceError,
)
from repro.serve.service import Resident

RULES = parse_program(
    """
    e(X, Y) -> p(X, Y)
    p(X, Y), e(Y, Z) -> p(X, Z)
    """
)


def fresh_session():
    return ChaseSession.start(
        parse_database("e(n0, n1)\ne(n1, n2)"), RULES,
        variant=ChaseVariant.SEMI_OBLIVIOUS,
    )


def fresh_service(**admission_kwargs):
    service = ChaseService(
        admission=AdmissionController(**admission_kwargs)
        if admission_kwargs else None,
    )
    service.add_session("default", fresh_session())
    return service


def http_request(address, method, path, body=None, timeout=30):
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        data = json.loads(response.read().decode("utf-8"))
        return response.status, dict(response.getheaders()), data
    finally:
        conn.close()


# -- controller units --------------------------------------------------------


def test_gate_sheds_at_capacity_with_retry_after():
    clock = [0.0]
    ctl = AdmissionController(max_inflight=2, clock=lambda: clock[0])
    t1 = ctl.acquire()
    ctl.acquire()
    with pytest.raises(OverloadError) as err:
        ctl.acquire()
    assert err.value.status == 503
    assert err.value.retry_after_s >= 1.0
    clock[0] = 3.0
    ctl.release(t1)  # feeds the EWMA with a 3s request
    assert ctl.acquire() is not None  # capacity is back
    with pytest.raises(OverloadError) as err:
        ctl.acquire()
    # Retry-After scales with the observed latency EWMA.
    assert err.value.retry_after_s >= 3.0
    assert ctl.describe()["shed"] == 2


def test_retry_after_header_is_integer_seconds():
    ctl = AdmissionController(max_inflight=1)
    assert ctl.retry_after_header(1.2) == "2"
    assert ctl.retry_after_header(0.01) == "1"


def test_ingest_queue_bound_sheds_429():
    ctl = AdmissionController(max_inflight=None, max_ingest_queue=1)
    resident = Resident("r", instance=parse_database("e(a, b)"))
    ctl.enter_ingest_queue(resident)
    with pytest.raises(OverloadError) as err:
        ctl.enter_ingest_queue(resident)
    assert err.value.status == 429
    ctl.leave_ingest_queue(resident)
    ctl.enter_ingest_queue(resident)  # freed slot admits again
    assert ctl.describe()["ingest_shed"] == 1


def test_unbounded_gate_never_sheds():
    ctl = AdmissionController(max_inflight=None)
    for _ in range(100):
        ctl.acquire()
    assert ctl.describe()["shed"] == 0


def test_degraded_window_after_shed():
    clock = [0.0]
    ctl = AdmissionController(max_inflight=1, clock=lambda: clock[0])
    assert not ctl.overloaded_recently()
    ctl.acquire()
    with pytest.raises(OverloadError):
        ctl.acquire()
    assert ctl.overloaded_recently()
    clock[0] = 100.0
    assert not ctl.overloaded_recently()


def test_controller_rejects_bad_bounds():
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=0)
    with pytest.raises(ValueError):
        AdmissionController(max_ingest_queue=0)


# -- overload over HTTP ------------------------------------------------------


def test_http_overload_sheds_with_retry_after(monkeypatch):
    """Saturate a tiny gate with slow requests: the excess must shed
    429/503 with a Retry-After header, the accepted requests must
    still answer correctly, and /health must keep answering (it
    bypasses admission) while reporting degradation."""
    monkeypatch.setenv("REPRO_FAULTS", "slow_accept:0.3")
    service = fresh_service(max_inflight=2)
    results = []
    lock = threading.Lock()

    with BackgroundServer(service) as server:
        def query():
            status, headers, data = http_request(
                server.address, "POST", "/query",
                {"query": "q(X, Y) :- p(X, Y)", "certain": True},
            )
            with lock:
                results.append((status, headers, data))

        threads = [threading.Thread(target=query) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        statuses = sorted(s for s, _, _ in results)
        assert 200 in statuses, statuses
        assert 503 in statuses, statuses
        for status, headers, data in results:
            if status == 200:
                # Accepted requests answer correctly despite overload.
                assert sorted(data["answers"]) == [
                    "q(n0, n1)", "q(n0, n2)", "q(n1, n2)"
                ]
            else:
                assert status == 503
                assert "Retry-After" in headers
                assert int(headers["Retry-After"]) >= 1
                assert data["retry_after_s"] >= 1.0

        # /health bypasses the gate and reports the shed as degraded.
        monkeypatch.delenv("REPRO_FAULTS")
        status, _headers, health = http_request(
            server.address, "GET", "/health")
        assert status == 200
        assert health["ok"] is False
        assert health["status"] == "degraded"
        assert health["retry_after_s"] >= 1.0
    service.close()


def test_http_429_maps_ingest_queue_shed():
    """Park the resident's writer lock so the ingest line fills: the
    excess must shed 429 + Retry-After while the one queued ingest
    (and reads) still complete once the writer frees."""
    import time

    service = fresh_service(max_inflight=16, max_ingest_queue=1)
    resident = service.residents["default"]
    statuses = []
    lock = threading.Lock()

    with BackgroundServer(service) as server:
        def ingest(i):
            status, headers, data = http_request(
                server.address, "POST", "/facts",
                {"facts": [f"e(x{i}, y{i})"]},
            )
            with lock:
                statuses.append((status, headers))

        resident.lock.acquire()  # pin the writer: the line backs up
        try:
            threads = [
                threading.Thread(target=ingest, args=(i,))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            # Wait until the shed responses (everything beyond the one
            # queue slot) have come back.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                with lock:
                    if len(statuses) >= 3:
                        break
                time.sleep(0.01)
        finally:
            resident.lock.release()
        for t in threads:
            t.join()

    codes = sorted(s for s, _ in statuses)
    assert codes.count(429) == 3, codes
    assert codes.count(200) == 1, codes
    for status, headers in statuses:
        if status == 429:
            assert "Retry-After" in headers
            assert int(headers["Retry-After"]) >= 1
    service.close()


# -- quarantine --------------------------------------------------------------


def test_failed_leg_quarantines_resident_but_reads_survive(monkeypatch):
    service = fresh_service()
    resident = service.residents["default"]
    before = service.query("q(X, Y) :- p(X, Y)")

    def explode(self, *args, **kwargs):
        raise RuntimeError("simulated mid-leg corruption")

    # ChaseSession is slotted: patch the class, scoped to this test.
    monkeypatch.setattr(ChaseSession, "extend", explode)
    with pytest.raises(ServiceError) as err:
        service.ingest(["e(n2, n3)"])
    assert err.value.status == 503
    assert "quarantined" in str(err.value)
    assert resident.health == "quarantined"
    assert service.health()["status"] == "quarantined"
    assert service.health()["ok"] is False

    # Reads continue at the last published snapshot.
    after = service.query("q(X, Y) :- p(X, Y)")
    assert after["answers"] == before["answers"]
    assert after["watermark"] == before["watermark"]

    # Further ingests refuse without touching the session.
    monkeypatch.undo()
    with pytest.raises(ServiceError) as err:
        service.ingest(["e(n5, n6)"])
    assert err.value.status == 503
    assert "quarantined" in str(err.value)
    service.close()


def test_budget_stopped_leg_republishes_prefix(monkeypatch):
    """A budget-tripped extend must publish the session's durable
    round-consistent prefix (and its stop reason), never leave the
    resident at the stale pre-ingest snapshot."""
    service = fresh_service()
    resident = service.residents["default"]
    real_extend = ChaseSession.extend

    def tripping_extend(self, facts, **kwargs):
        real_extend(self, facts)  # the prefix really lands
        raise BudgetExceededError("deadline", stop_reason="deadline")

    monkeypatch.setattr(ChaseSession, "extend", tripping_extend)
    before = resident.snapshot.watermark
    with pytest.raises(BudgetExceededError):
        service.ingest(["e(n2, n3)"])
    assert resident.snapshot.watermark > before  # republished
    assert resident.stop_reason == "deadline"
    assert resident.terminated is False
    assert resident.health == "degraded"
    assert service.health()["status"] == "degraded"
    # Not quarantined: a budget stop is a clean, resumable state.
    monkeypatch.undo()
    out = service.ingest(["e(n3, n4)"])
    assert out["terminated"] is True
    assert resident.health == "ok"
    service.close()


# -- validation & counters ---------------------------------------------------


def test_nan_timeout_is_rejected():
    service = fresh_service()
    for verb in (
        lambda: service.query("q(X) :- p(X, X)", timeout_s=float("nan")),
        lambda: service.entail("p(n0, n1)", timeout_s=float("nan")),
        lambda: service.ingest(["e(a, b)"], timeout_s=float("nan")),
    ):
        with pytest.raises(ServiceError, match="timeout_s"):
            verb()
    with pytest.raises(ServiceError, match="timeout_s"):
        service.query("q(X) :- p(X, X)", timeout_s=-1.0)
    service.close()


def test_counters_are_exact_under_concurrency():
    service = fresh_service(max_inflight=None)
    resident = service.residents["default"]
    workers, per_worker = 8, 25

    def hammer():
        for _ in range(per_worker):
            service.entail("p(n0, n1)")

    threads = [threading.Thread(target=hammer) for _ in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert resident.queries == workers * per_worker
    service.close()


def test_health_shape_for_ok_service():
    service = fresh_service()
    health = service.health()
    assert health["ok"] is True
    assert health["status"] == "ok"
    assert health["draining"] is False
    assert health["residents"] == {"default": "ok"}
    assert "retry_after_s" not in health
    service.shutdown()
    assert service.health()["ok"] is False
    assert service.health()["draining"] is True
    service.close()
