"""Tests for the DL-Lite frontend."""

import pytest

from repro.classes import is_simple_linear
from repro.frontends import DLLiteError, parse_tbox
from repro.model import Predicate, Variable
from repro.termination import decide_termination


class TestAxiomTranslation:
    def test_concept_inclusion(self):
        (rule,) = parse_tbox("student sub person")
        assert str(rule) == "student(X) -> person(X)"

    def test_existential_head(self):
        (rule,) = parse_tbox("person sub some hasParent")
        assert rule.existential_variables == {Variable("Y")}
        assert rule.head[0].predicate == Predicate("hasParent", 2)

    def test_qualified_existential(self):
        (rule,) = parse_tbox("prof sub some teaches course")
        assert len(rule.head) == 2
        names = {a.predicate.name for a in rule.head}
        assert names == {"teaches", "course"}

    def test_domain_axiom(self):
        (rule,) = parse_tbox("some teaches sub prof")
        assert rule.body[0].predicate == Predicate("teaches", 2)
        assert rule.head[0].terms[0] == rule.body[0].terms[0]

    def test_range_axiom(self):
        (rule,) = parse_tbox("some inv teaches sub course")
        # X is the second position of the role in the body.
        assert rule.body[0].terms[1] == rule.head[0].terms[0]

    def test_role_inclusion(self):
        (rule,) = parse_tbox("teaches subrole involvedWith")
        assert rule.body[0].terms == rule.head[0].terms

    def test_inverse_role_inclusion(self):
        (rule,) = parse_tbox("teaches subrole inv taughtBy")
        assert rule.body[0].terms == tuple(reversed(rule.head[0].terms))

    def test_exists_to_exists_uses_fresh_filler(self):
        (rule,) = parse_tbox("some r sub some s")
        # The head filler is existential, not the body's object.
        assert rule.existential_variables

    def test_comments_and_blanks(self):
        rules = parse_tbox("% header\n\nstudent sub person % trailing\n")
        assert len(rules) == 1

    def test_output_is_simple_linear(self):
        rules = parse_tbox(
            """
            student sub person
            person sub some hasParent person
            some teaches sub prof
            teaches subrole inv taughtBy
            """
        )
        assert is_simple_linear(rules)

    def test_malformed_axiom_rejected(self):
        with pytest.raises(DLLiteError, match="line 1"):
            parse_tbox("student person")
        with pytest.raises(DLLiteError):
            parse_tbox("some sub a")
        with pytest.raises(DLLiteError):
            parse_tbox("a subrole b c d")


class TestTerminationOfOntologies:
    def test_cyclic_ontology_diverges(self):
        rules = parse_tbox(
            """
            person sub some hasParent person
            """
        )
        verdict = decide_termination(rules, variant="semi_oblivious")
        assert not verdict.terminating

    def test_acyclic_ontology_terminates(self):
        rules = parse_tbox(
            """
            student sub person
            person sub some memberOf
            some inv memberOf sub organization
            """
        )
        verdict = decide_termination(rules, variant="oblivious")
        assert verdict.terminating

    def test_role_hierarchy_cycle_is_harmless(self):
        rules = parse_tbox(
            "teaches subrole supervises\nsupervises subrole teaches"
        )
        verdict = decide_termination(rules, variant="oblivious")
        assert verdict.terminating
