"""Tests for DOT export."""

from repro.graphs import (
    dependency_graph,
    dependency_graph_to_dot,
    existential_dependency_graph,
    extended_dependency_graph,
    joint_graph_to_dot,
    transition_graph_to_dot,
)
from repro.parser import parse_program
from repro.termination import TransitionGraph, TypeAnalysis

RULES = parse_program("p(X, Y) -> exists Z . p(Y, Z)")


class TestDependencyDot:
    def test_structure(self):
        dot = dependency_graph_to_dot(dependency_graph(RULES))
        assert dot.startswith('digraph "dependency" {')
        assert dot.rstrip().endswith("}")
        assert '"p[0]"' in dot

    def test_special_edges_marked(self):
        dot = dependency_graph_to_dot(dependency_graph(RULES))
        assert "style=dashed" in dot

    def test_extended_graph_title(self):
        dot = dependency_graph_to_dot(
            extended_dependency_graph(RULES), title="extended"
        )
        assert '"extended"' in dot

    def test_all_identifiers_quoted(self):
        dot = dependency_graph_to_dot(dependency_graph(RULES))
        for line in dot.splitlines()[2:-1]:
            assert '"' in line


class TestJointDot:
    def test_nodes_named_by_rule_and_variable(self):
        dot = joint_graph_to_dot(existential_dependency_graph(RULES))
        assert '"r0:Z"' in dot
        assert "->" in dot


class TestTransitionDot:
    def test_renders_bag_clouds(self):
        graph = TransitionGraph(TypeAnalysis(RULES))
        dot = transition_graph_to_dot(graph)
        assert dot.startswith('digraph "types" {')
        assert "p(*, *)" in dot
        assert "peripheries=2" in dot  # the root is highlighted

    def test_edge_labels_are_rule_labels(self):
        graph = TransitionGraph(TypeAnalysis(RULES))
        dot = transition_graph_to_dot(graph)
        assert '"r1"' in dot
