"""Theorem 2 tests: critical acyclicity for (non-simple) linear TGDs."""

import pytest

from repro.chase import ChaseVariant
from repro.errors import UnsupportedClassError
from repro.graphs import is_richly_acyclic, is_weakly_acyclic
from repro.parser import parse_program
from repro.termination import (
    critical_chase_terminates,
    decide_linear,
    is_critically_richly_acyclic,
    is_critically_weakly_acyclic,
)
from repro.workloads import diagonal_family

# Curated linear suite: (program, o-terminates, so-terminates)
CURATED = [
    # the canonical Theorem 2 counterexample: dangerous cycle, but the
    # repeated body variable makes it unrealizable.
    ("p(X, X) -> exists Z . p(X, Z)", True, True),
    # the head re-produces the diagonal, so the *oblivious* chase
    # pumps it forever; the semi-oblivious key is the empty frontier
    # (the head is purely existential), which fires exactly once.
    ("p(X, X) -> exists Z . p(Z, Z)", False, True),
    # repeated variable with the diagonal preserved via copying
    ("p(X, X) -> exists Z . q(X, Z)\nq(X, Y) -> p(Y, Y)", False, False),
    # repeated head use of a frontier var, terminating
    ("p(X, Y) -> q(X, X)\nq(X, X) -> exists Z . r(X, Z)", True, True),
    # non-simple body, o/so separation
    ("p(X, X, Y) -> exists Z . p(X, X, Z)", False, True),
    # triangle pattern that can never rebuild its body
    ("t(X, X, X) -> exists Z . t(X, X, Z)", True, True),
    # the diagonal survives one hop and returns
    ("t(X, X) -> exists Z . u(X, Z)\nu(X, Y) -> t(X, X)", True, True),
]


class TestTheorem2Deciders:
    @pytest.mark.parametrize("text,o_expected,so_expected", CURATED)
    def test_oblivious(self, text, o_expected, so_expected):
        rules = parse_program(text)
        verdict = decide_linear(rules, ChaseVariant.OBLIVIOUS)
        assert verdict.terminating == o_expected
        assert verdict.method == "critical_rich_acyclicity"

    @pytest.mark.parametrize("text,o_expected,so_expected", CURATED)
    def test_semi_oblivious(self, text, o_expected, so_expected):
        rules = parse_program(text)
        verdict = decide_linear(rules, ChaseVariant.SEMI_OBLIVIOUS)
        assert verdict.terminating == so_expected
        assert verdict.method == "critical_weak_acyclicity"

    @pytest.mark.parametrize("text,o_expected,so_expected", CURATED)
    def test_oracle_agreement(self, text, o_expected, so_expected):
        rules = parse_program(text)
        for variant, expected in (
            (ChaseVariant.OBLIVIOUS, o_expected),
            (ChaseVariant.SEMI_OBLIVIOUS, so_expected),
        ):
            oracle = critical_chase_terminates(rules, variant, max_steps=400)
            assert (oracle is True) == expected

    def test_class_predicates(self):
        rules = parse_program("p(X, X) -> exists Z . p(X, Z)")
        assert is_critically_richly_acyclic(rules)
        assert is_critically_weakly_acyclic(rules)


class TestSeparationFromPlainAcyclicity:
    """The paper's motivation for Theorem 2: a dangerous cycle does not
    necessarily correspond to an infinite derivation for L."""

    def test_counterexample_separates(self):
        rules = parse_program("p(X, X) -> exists Z . p(X, Z)")
        # syntactically dangerous...
        assert not is_weakly_acyclic(rules)
        assert not is_richly_acyclic(rules)
        # ...semantically terminating.
        assert is_critically_weakly_acyclic(rules)
        assert is_critically_richly_acyclic(rules)
        # ...and the chase really does terminate.
        assert critical_chase_terminates(
            rules, ChaseVariant.OBLIVIOUS
        ) is True

    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_diagonal_family_separates_at_every_arity(self, arity):
        rules = diagonal_family(arity)
        assert not is_weakly_acyclic(rules)
        assert is_critically_weakly_acyclic(rules)
        assert is_critically_richly_acyclic(rules)

    def test_acyclicity_still_sound_on_linear(self):
        # WA/RA remain *sufficient* on linear rules: whenever they
        # accept, the critical deciders must accept too.
        programs = [
            "p(X, X) -> q(X)\nq(X) -> exists Z . r(X, Z)",
            "p(X, Y) -> q(Y, Y)",
            "p(X, X, Y) -> exists Z . q(X, Z)\nq(X, Y) -> r(X)",
        ]
        for text in programs:
            rules = parse_program(text)
            if is_weakly_acyclic(rules):
                assert is_critically_weakly_acyclic(rules), text
            if is_richly_acyclic(rules):
                assert is_critically_richly_acyclic(rules), text


class TestEqualityPatternSensitivity:
    """Critical acyclicity must track *which* positions hold equal
    values — the refinement plain dependency graphs cannot express."""

    def test_equality_broken_by_one_hop(self):
        # The cycle passes through q, losing the diagonal: terminating.
        rules = parse_program(
            "p(X, X) -> exists Z . q(X, Z)\nq(X, Y) -> p(X, Y)"
        )
        verdict = decide_linear(rules, ChaseVariant.SEMI_OBLIVIOUS)
        assert verdict.terminating

    def test_equality_restored_by_copy(self):
        # The full rule rebuilds the diagonal: diverging.
        rules = parse_program(
            "p(X, X) -> exists Z . q(X, Z)\nq(X, Y) -> p(Y, Y)"
        )
        verdict = decide_linear(rules, ChaseVariant.SEMI_OBLIVIOUS)
        assert not verdict.terminating

    def test_constant_guard_blocks_cycle(self):
        # The body demands the program constant; the head never
        # reproduces it around the cycle.
        rules = parse_program("p(a, X) -> exists Z . p(X, Z)")
        verdict = decide_linear(rules, ChaseVariant.SEMI_OBLIVIOUS)
        assert verdict.terminating

    def test_constant_preserved_keeps_cycle_alive_obliviously(self):
        # Every fresh null re-enters the body's X, so the oblivious
        # chase diverges; the frontier is empty (the head's variables
        # are the constant and the existential), so the semi-oblivious
        # chase fires the rule once and stops.
        rules = parse_program("p(a, X) -> exists Z . p(a, Z)")
        o = decide_linear(rules, ChaseVariant.OBLIVIOUS)
        so = decide_linear(rules, ChaseVariant.SEMI_OBLIVIOUS)
        assert not o.terminating
        assert so.terminating


class TestInputValidation:
    def test_rejects_non_linear(self):
        rules = parse_program("p(X), q(X) -> r(X)")
        with pytest.raises(UnsupportedClassError):
            decide_linear(rules, ChaseVariant.OBLIVIOUS)
