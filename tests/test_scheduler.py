"""Round-batched execution: the ``serial``/``threaded``/``process``
executors must be indistinguishable from the outside.

The contract under test (see :mod:`repro.chase.scheduler`): only the
read-only discovery half of a round is batched, and the merge re-
establishes canonical batch order before the serial fired-key dedup
and firing pass — so every executor produces the *same* trigger
stream, and hence byte-equivalent :class:`ChaseResult` objects (facts
in the same insertion order, same trigger keys, same null numbering,
same provenance) and identical decider verdicts.
"""

import pytest

from repro.chase import (
    ChaseVariant,
    RoundScheduler,
    critical_instance,
    discovery_batches,
    resolve_scheduler,
    run_chase,
)
from repro.model import Atom, Constant, Database, Predicate, TGD, Variable
from repro.parser import parse_database, parse_program
from repro.termination import decide_guarded, decide_termination, skolem_chase
from repro.workloads import guarded_tower_family, random_guarded

EXECUTORS = ("serial", "threaded", "process")

# One process pool for the whole module: spawn start-up dwarfs every
# fixture here, and reusing a scheduler across runs is exactly the
# supported amortization pattern.
_PROCESS = RoundScheduler("process", workers=2)
_THREADED = RoundScheduler("threaded", workers=4)


def scheduler_for(kind):
    if kind == "process":
        return _PROCESS
    if kind == "threaded":
        return _THREADED
    return "serial"


@pytest.fixture(scope="module", autouse=True)
def _close_pools():
    yield
    _PROCESS.close()
    _THREADED.close()


def chase_fingerprint(result):
    """Everything a byte-equivalence claim is made of."""
    return (
        result.instance.facts(),
        result.terminated,
        [step.trigger.key(result.variant) for step in result.steps],
        [step.new_facts for step in result.steps],
        result.facts_by_rule(),
    )


CHASE_FIXTURES = [
    (
        "self_feeding_existential",
        "e(X, Y), e(Y, Z) -> exists W . e(Z, W)\ne(X, Y) -> p(Y, X)",
        "e(a, b)\ne(b, c)\ne(c, a)",
        ChaseVariant.SEMI_OBLIVIOUS,
        300,
    ),
    (
        "transitive_closure",
        "e(X, Y), e(Y, Z) -> e(X, Z)",
        "\n".join(f"e(c{i}, c{i + 1})" for i in range(12)),
        ChaseVariant.OBLIVIOUS,
        10_000,
    ),
    (
        "restricted_with_joins",
        "r(X, Y), s(Y, Z) -> exists W . t(X, W)\nt(X, W) -> s(W, X)",
        "r(a, b)\nr(c, b)\ns(b, d)\ns(b, e)",
        ChaseVariant.RESTRICTED,
        10_000,
    ),
]


class TestChaseEquivalence:
    @pytest.mark.parametrize(
        "name,program,db,variant,max_steps",
        CHASE_FIXTURES,
        ids=[f[0] for f in CHASE_FIXTURES],
    )
    @pytest.mark.parametrize("kind", EXECUTORS[1:])
    def test_fixture_programs(self, name, program, db, variant, max_steps,
                              kind):
        rules = parse_program(program)
        database = parse_database(db)
        serial = run_chase(database, rules, variant, max_steps)
        batched = run_chase(
            database, rules, variant, max_steps,
            scheduler=scheduler_for(kind),
        )
        assert chase_fingerprint(serial) == chase_fingerprint(batched)

    @pytest.mark.parametrize("kind", EXECUTORS[1:])
    def test_guarded_ontology_workload(self, kind):
        # The ISSUE's guarded-ontology workload: multi-atom guarded
        # bodies, fresh nulls per level, restricted variant (so the
        # head-satisfaction pass runs against the batched stream too).
        rules = guarded_tower_family(3)
        r1, m1 = Predicate("r1", 2), Predicate("m1", 1)
        database = Database()
        for i in range(12):
            database.add(Atom(r1, [Constant(f"c{i}"), Constant(f"d{i}")]))
            database.add(Atom(m1, [Constant(f"d{i}")]))
        serial = run_chase(database, rules, ChaseVariant.RESTRICTED, 10_000)
        batched = run_chase(
            database, rules, ChaseVariant.RESTRICTED, 10_000,
            scheduler=scheduler_for(kind),
        )
        assert chase_fingerprint(serial) == chase_fingerprint(batched)
        # Null numbering is part of the fact tuples, but assert the
        # provenance map agrees too: same creating step per fact.
        for fact in serial.instance:
            s = serial.provenance(fact)
            b = batched.provenance(fact)
            assert (s is None) == (b is None)
            if s is not None:
                assert s.trigger.key(ChaseVariant.RESTRICTED) == \
                    b.trigger.key(ChaseVariant.RESTRICTED)

    def test_sharded_batches_preserve_order(self):
        rules = parse_program("e(X, Y), e(Y, Z) -> e(X, Z)")
        database = parse_database(
            "\n".join(f"e(c{i}, c{i + 1})" for i in range(20))
        )
        serial = run_chase(database, rules, ChaseVariant.OBLIVIOUS, 10_000)
        with RoundScheduler("threaded", workers=3, shard_size=2) as sched:
            sharded = run_chase(
                database, rules, ChaseVariant.OBLIVIOUS, 10_000,
                scheduler=sched,
            )
        assert chase_fingerprint(serial) == chase_fingerprint(sharded)

    @pytest.mark.parametrize("kind", EXECUTORS[1:])
    def test_restricted_head_probe_batching(self, kind):
        # The batched *apply* half of restricted rounds: this workload
        # is skip-heavy (the t-head of the first rule is satisfied for
        # every frontier value once one witness exists, and the second
        # rule keeps re-enabling the first), so the scheduled
        # round-start head probes drive most of the skip decisions.
        # The firing sequence must stay byte-identical to serial.
        rules = parse_program(
            """
            r(X, Y), s(Y, Z) -> exists W . t(X, W)
            t(X, W) -> s(W, X)
            s(Y, Z) -> exists W . t(Z, W)
            """
        )
        database = parse_database(
            "\n".join(f"r(a{i}, b{i % 3})" for i in range(9))
            + "\n" + "\n".join(f"s(b{j}, d{j})" for j in range(3))
        )
        serial = run_chase(database, rules, ChaseVariant.RESTRICTED, 10_000)
        batched = run_chase(
            database, rules, ChaseVariant.RESTRICTED, 10_000,
            scheduler=scheduler_for(kind),
        )
        assert chase_fingerprint(serial) == chase_fingerprint(batched)
        # The restricted semantics actually bit: fewer firings than the
        # semi-oblivious run of the same program (triggers were
        # skipped, so the probes had something to decide) …
        semi = run_chase(database, rules, ChaseVariant.SEMI_OBLIVIOUS,
                         10_000)
        assert serial.step_count < semi.step_count
        # … and provenance agrees step-for-step.
        for fact in serial.instance:
            s = serial.provenance(fact)
            b = batched.provenance(fact)
            assert (s is None) == (b is None)
            if s is not None:
                assert s.trigger.key(ChaseVariant.RESTRICTED) == \
                    b.trigger.key(ChaseVariant.RESTRICTED)

    def test_restricted_sharded_head_probes_preserve_order(self):
        rules = parse_program(
            "e(X, Y), e(Y, Z) -> exists W . t(X, W)\nt(X, W) -> e(W, X)"
        )
        database = parse_database(
            "\n".join(f"e(c{i}, c{i + 1})" for i in range(8))
        )
        serial = run_chase(database, rules, ChaseVariant.RESTRICTED, 5_000)
        with RoundScheduler("threaded", workers=3, shard_size=2) as sched:
            sharded = run_chase(
                database, rules, ChaseVariant.RESTRICTED, 5_000,
                scheduler=sched,
            )
        assert chase_fingerprint(serial) == chase_fingerprint(sharded)

    def test_serial_scheduler_instance_matches_default(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        database = parse_database("p(a)\np(b)")
        default = run_chase(database, rules)
        explicit = run_chase(database, rules, scheduler="serial", workers=8)
        assert chase_fingerprint(default) == chase_fingerprint(explicit)


class TestSkolemChaseEquivalence:
    @pytest.mark.parametrize("kind", EXECUTORS[1:])
    def test_fixpoint_program(self, kind):
        rules = parse_program(
            """
            a(X), b(X, Y) -> exists Z . h(X, Z)
            h(X, Z) -> b(X, Z)
            """
        )
        database = critical_instance(rules)
        i1, c1, f1 = skolem_chase(database, rules)
        i2, c2, f2 = skolem_chase(
            database, rules, scheduler=scheduler_for(kind)
        )
        assert (c1, f1) == (c2, f2)
        assert i1.facts() == i2.facts()

    @pytest.mark.parametrize("kind", EXECUTORS[1:])
    def test_cyclic_witness_is_identical(self, kind):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        database = critical_instance(rules)
        _, c1, f1 = skolem_chase(database, rules)
        _, c2, f2 = skolem_chase(
            database, rules, scheduler=scheduler_for(kind)
        )
        assert c1 is not None and c1 == c2
        assert f1 == f2 is False

    @pytest.mark.parametrize("seed", range(3))
    def test_random_guarded_threaded(self, seed):
        rules = random_guarded(3, seed=seed)
        database = critical_instance(rules)
        i1, c1, f1 = skolem_chase(database, rules, 4000)
        i2, c2, f2 = skolem_chase(
            database, rules, 4000, scheduler=_THREADED
        )
        assert (c1, f1) == (c2, f2)
        assert i1.facts() == i2.facts()


class TestDeciderEquivalence:
    @pytest.mark.parametrize("kind", EXECUTORS[1:])
    def test_guarded_verdict_and_stats(self, kind):
        rules = guarded_tower_family(3)
        for variant in (ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS):
            serial = decide_guarded(rules, variant)
            batched = decide_guarded(
                rules, variant, scheduler=scheduler_for(kind)
            )
            assert serial.terminating == batched.terminating
            assert serial.stats == batched.stats
            assert (serial.witness is None) == (batched.witness is None)

    def test_decide_termination_accepts_workers(self):
        rules = guarded_tower_family(2)
        serial = decide_termination(rules)
        batched = decide_termination(rules, scheduler="threaded", workers=2)
        assert serial.terminating == batched.terminating
        assert serial.method == batched.method


class TestOutOfInstanceFrontier:
    @pytest.mark.parametrize("kind", EXECUTORS[1:])
    def test_scheduled_engine_never_rekeys_fired_triggers(self, kind):
        # An out-of-instance Atom frontier (public notify()) must route
        # through the same interned key encoding as every other round —
        # an object-form fallback would miss the fired set and fire the
        # same trigger twice.
        from repro.chase import DeltaEngine
        from repro.model import Atom, Constant, Instance

        p = Predicate("p", 2)
        rules = [
            TGD([Atom(p, [Variable("X"), Variable("Y")])],
                [Atom(Predicate("r", 2), [Variable("X"), Variable("Z")])]),
        ]
        scheduler = scheduler_for(kind)
        instance = Instance([Atom(p, [Constant("a"), Constant("b")])])
        engine = DeltaEngine(
            rules, instance,
            key=lambda t: t.key(ChaseVariant.SEMI_OBLIVIOUS),
            scheduler=scheduler if kind != "serial" else None,
            variant=ChaseVariant.SEMI_OBLIVIOUS,
        )
        assert len(engine.next_round()) == 1
        # Same frontier image, different (not-in-instance) fact.
        engine.notify([Atom(p, [Constant("a"), Constant("c")])])
        assert engine.next_round() == []


class TestSchedulerPlumbing:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            RoundScheduler("quantum")

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError):
            RoundScheduler("threaded", workers=0)

    def test_nonpositive_shard_size_rejected(self):
        with pytest.raises(ValueError):
            RoundScheduler("serial", shard_size=0)

    def test_resolve_scheduler_ownership(self):
        owned, owns = resolve_scheduler("threaded", 2)
        assert owns and owned.kind == "threaded" and owned.workers == 2
        owned.close()
        shared = RoundScheduler("serial")
        same, owns = resolve_scheduler(shared)
        assert same is shared and not owns

    def test_workers_alone_selects_threaded(self):
        # Asking for workers and silently running serial would be a
        # trap; workers without a kind means the threaded executor,
        # both here and for the CLI's --workers.
        sched, owns = resolve_scheduler(None, 3)
        assert owns and sched.kind == "threaded" and sched.workers == 3
        sched.close()
        serial, owns = resolve_scheduler(None)
        assert owns and serial.kind == "serial"

    def test_discovery_batches_canonical_order_and_sharding(self):
        e, p = Predicate("e", 2), Predicate("p", 1)
        X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
        rules = [
            TGD([Atom(e, [X, Y]), Atom(e, [Y, Z])], [Atom(e, [X, Z])]),
            TGD([Atom(p, [X])], [Atom(e, [X, X])]),
        ]
        facts = [
            Atom(e, [Constant("a"), Constant("b")]),
            Atom(p, [Constant("c")]),
            Atom(e, [Constant("b"), Constant("c")]),
        ]
        batches = discovery_batches(rules, facts)
        # Rule-major, then pivot position; candidates in arrival order.
        assert [(b[0], b[1]) for b in batches] == [(0, 0), (0, 1), (1, 0)]
        assert batches[0][2] == (facts[0], facts[2])
        sharded = discovery_batches(rules, facts, shard_size=1)
        assert [(b[0], b[1]) for b in sharded] == [
            (0, 0), (0, 0), (0, 1), (0, 1), (1, 0),
        ]
        assert [f for b in sharded if b[:2] == (0, 0) for f in b[2]] == [
            facts[0], facts[2],
        ]

    def test_scheduler_reuse_across_runs(self):
        # One pool, many runs — results stay independent and correct.
        rules = parse_program(
            "p(X) -> exists Z . q(X, Z)\nq(X, Z) -> p(Z)"
        )
        database = parse_database("p(a)")
        with RoundScheduler("threaded", workers=2) as sched:
            first = run_chase(database, rules, max_steps=5, scheduler=sched)
            second = run_chase(database, rules, max_steps=5, scheduler=sched)
        assert chase_fingerprint(first) == chase_fingerprint(second)
        assert not first.terminated
