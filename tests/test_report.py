"""Tests for termination reports and chase provenance."""

from repro.chase import semi_oblivious_chase
from repro.cli import main
from repro.parser import parse_database, parse_program
from repro.termination import termination_report


class TestTerminationReport:
    def test_terminating_sl_program(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        report = termination_report(rules)
        assert report.narrowest == "simple_linear"
        assert report.conditions["weak_acyclicity"] is True
        assert report.conditions["mfa"] is True
        assert report.oblivious.terminating
        assert report.semi_oblivious.terminating

    def test_diverging_program(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        report = termination_report(rules)
        assert not report.oblivious.terminating
        assert not report.semi_oblivious.terminating
        assert report.conditions["joint_acyclicity"] is False

    def test_separation_program(self):
        rules = parse_program("p(X, X) -> exists Z . p(X, Z)")
        report = termination_report(rules)
        assert report.conditions["weak_acyclicity"] is False
        assert report.conditions["joint_acyclicity"] is True
        assert report.oblivious.terminating

    def test_unguarded_program_has_no_exact_verdicts(self):
        rules = parse_program("p(X, Y), q(Y, Z) -> exists W . r(X, W)")
        report = termination_report(rules)
        assert report.oblivious is None
        assert report.semi_oblivious is None
        # zoo conditions still computed
        assert report.conditions["weak_acyclicity"] is True

    def test_render_mentions_everything(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        text = termination_report(rules).render()
        assert "narrowest class: simple_linear" in text
        assert "weak_acyclicity: yes" in text
        assert "oblivious: terminates" in text

    def test_render_undecided(self):
        rules = parse_program("p(X, Y), q(Y, Z) -> exists W . r(X, W)")
        text = termination_report(rules).render()
        assert "undecided" in text

    def test_cli_full_flag(self, tmp_path, capsys):
        path = tmp_path / "rules.tgd"
        path.write_text("p(X) -> exists Z . q(X, Z)\n")
        assert main(["check", str(path), "--full"]) == 0
        out = capsys.readouterr().out
        assert "sufficient conditions" in out
        assert "mfa: yes" in out

    def test_cli_full_flag_undecided_exit_code(self, tmp_path, capsys):
        path = tmp_path / "rules.tgd"
        path.write_text("p(X, Y), q(Y, Z) -> exists W . r(X, W)\n")
        assert main(["check", str(path), "--full"]) == 2


class TestProvenance:
    RULES = parse_program(
        "p(X) -> exists Z . q(X, Z)\nq(X, Y) -> r(X)"
    )

    def test_database_facts_have_no_provenance(self):
        db = parse_database("p(a)")
        result = semi_oblivious_chase(db, self.RULES)
        assert result.provenance(next(iter(db))) is None

    def test_derived_facts_point_to_their_step(self):
        db = parse_database("p(a)")
        result = semi_oblivious_chase(db, self.RULES)
        r_fact = next(
            f for f in result.instance if f.predicate.name == "r"
        )
        step = result.provenance(r_fact)
        assert step is not None
        assert step.trigger.rule.label == "r2"

    def test_facts_by_rule(self):
        db = parse_database("p(a)\np(b)")
        result = semi_oblivious_chase(db, self.RULES)
        contributions = result.facts_by_rule()
        assert contributions == {"r1": 2, "r2": 2}

    def test_map_agrees_with_linear_scan_for_every_fact(self):
        # The lazily built fact→step map must answer exactly like the
        # old O(steps) scan, for derived and database facts alike.
        db = parse_database("p(a)\np(b)")
        result = semi_oblivious_chase(db, self.RULES)

        def scan(fact):
            for step in result.steps:
                if fact in step.new_facts:
                    return step
            return None

        for fact in result.instance:
            assert result.provenance(fact) is scan(fact)

    def test_repeated_lookups_share_the_built_map(self):
        db = parse_database("p(a)")
        result = semi_oblivious_chase(db, self.RULES)
        fact = next(
            f for f in result.instance if f.predicate.name == "r"
        )
        first = result.provenance(fact)
        assert result.provenance(fact) is first
        # The map is built once: further lookups do not rebuild it.
        assert result._provenance_built == len(result.steps)
