"""Adversarial cross-validation: hand-crafted programs designed to
stress specific corners of the decision procedures, each checked
against the concrete chase oracle.
"""

import pytest

from repro.chase import ChaseVariant
from repro.parser import parse_program
from repro.termination import (
    critical_chase_terminates,
    decide_termination,
)

# (name, program, o-terminates, so-terminates)
CASES = [
    (
        "constant_blocks_renewal",
        # The head pins the first position to a constant; the body
        # demands a null there after one hop: dead.
        "p(X, Y) -> exists Z . q(c, Z)\nq(X, Y) -> exists W . p(Y, W)",
        False,  # oblivious: q(c, z) re-fires rule 1 via new Y binding
        True,   # semi-oblivious: rule 1's frontier is empty
    ),
    (
        "two_cycles_one_dead",
        # Cycle A (p) renews; cycle B (r) recycles a constant.
        "p(X, Y) -> exists Z . p(Y, Z)\nr(X, X) -> exists W . r(X, W)",
        False,
        False,
    ),
    (
        "renewal_through_swap",
        # The fresh null must survive a position swap to re-trigger.
        "p(X, Y) -> q(Y, X)\nq(X, Y) -> exists Z . p(X, Z)",
        False,
        False,
    ),
    (
        "renewal_killed_by_projection",
        # The relay drops the fresh position before it returns.
        "p(X, Y) -> q(X)\nq(X) -> exists Z . p(X, Z)",
        True,
        True,
    ),
    (
        "multi_head_cross_feed",
        "a(X) -> exists Y . b(X, Y), c(Y)\nb(X, Y), c(Y) -> a(Y)",
        False,
        False,
    ),
    (
        "multi_head_cross_feed_blocked",
        # c is never re-derived for fresh nulls: the loop starves.
        "a(X) -> exists Y . b(X, Y)\nb(X, Y), c(Y) -> a(Y)",
        True,
        True,
    ),
    (
        "guard_needs_two_nulls",
        # The guard wants both arguments fresh-equal: never happens.
        "g(X, X) -> exists Z . g(X, Z)\ng(X, X) -> h(X)",
        True,
        True,
    ),
    (
        "up_propagation_three_deep",
        "a(X) -> exists Y . e1(X, Y)\n"
        "e1(X, Y) -> exists Z . e2(Y, Z)\n"
        "e2(Y, Z) -> exists W . e3(Z, W)\n"
        "e3(Z, W) -> back(Z)\n"
        "e2(Y, Z), back(Z) -> a(Z)",
        False,
        False,
    ),
    (
        "up_propagation_returns_old_value",
        "a(X) -> exists Y . e1(X, Y)\n"
        "e1(X, Y) -> exists Z . e2(Y, Z)\n"
        "e2(Y, Z) -> back(Y)\n"
        "e1(X, Y), back(Y) -> a(X)",
        True,
        True,
    ),
    (
        "frontier_widens_then_narrows",
        "p(X, Y, Z) -> exists W . q(X, W)\n"
        "q(X, W) -> exists U, V . p(W, U, V)",
        False,
        False,
    ),
    (
        "existential_pair_split",
        # Two existentials in one head; only one closes a loop.
        "s(X) -> exists Y, Z . t(X, Y), u(X, Z)\n"
        "t(X, Y) -> s(Y)\n"
        "u(X, Z) -> done(X)",
        False,
        False,
    ),
    (
        "existential_pair_both_dead",
        "s(X) -> exists Y, Z . t(X, Y), u(X, Z)\n"
        "t(X, Y) -> s(X)\n"
        "u(X, Z) -> done(X)",
        True,
        True,
    ),
    (
        "rule_constants_block_the_cycle",
        # The dependency graph has a dangerous cycle, but the body's
        # constant can never be rebuilt by the head: terminating.  The
        # dispatcher must route this constant-bearing SL program to
        # the critical decider, where Theorem 1's constant-free
        # characterization would be wrong.
        "p(a, X) -> exists Z . q(X, Z)\nq(X, Z) -> p(X, Z)",
        True,
        True,
    ),
    (
        "rule_constants_preserved_around_cycle",
        # The head rebuilds the constant: genuinely diverging.
        "p(a, X) -> exists Z . q(X, Z)\nq(X, Z) -> p(a, Z)",
        False,
        False,
    ),
]


class TestAdversarial:
    @pytest.mark.parametrize(
        "name,text,o_expected,so_expected",
        CASES,
        ids=[case[0] for case in CASES],
    )
    def test_oblivious(self, name, text, o_expected, so_expected):
        rules = parse_program(text)
        verdict = decide_termination(rules, variant=ChaseVariant.OBLIVIOUS)
        assert verdict.terminating == o_expected

    @pytest.mark.parametrize(
        "name,text,o_expected,so_expected",
        CASES,
        ids=[case[0] for case in CASES],
    )
    def test_semi_oblivious(self, name, text, o_expected, so_expected):
        rules = parse_program(text)
        verdict = decide_termination(
            rules, variant=ChaseVariant.SEMI_OBLIVIOUS
        )
        assert verdict.terminating == so_expected

    @pytest.mark.parametrize(
        "name,text,o_expected,so_expected",
        CASES,
        ids=[case[0] for case in CASES],
    )
    def test_oracle_agreement(self, name, text, o_expected, so_expected):
        rules = parse_program(text)
        for variant, expected in (
            (ChaseVariant.OBLIVIOUS, o_expected),
            (ChaseVariant.SEMI_OBLIVIOUS, so_expected),
        ):
            oracle = critical_chase_terminates(rules, variant,
                                               max_steps=800)
            assert (oracle is True) == expected, (name, variant)
