"""Runtime governance under injected faults.

The contracts under test (see :mod:`repro.runtime` and
:mod:`repro.chase.scheduler`):

* a crashed worker pool is respawned (once) and the run finishes with
  a result byte-identical to a serial run;
* a pool that keeps dying degrades the scheduler to in-parent serial
  evaluation — the run still finishes, still byte-identical, and the
  degradation is recorded in ``fault_stats`` / ``ChaseResult.resource``;
* budget stops (deadline, memory ceiling, cancellation, round/fact
  caps) are round-consistent: the partial instance equals the database
  plus exactly the facts of the recorded steps, and ``stop_reason``
  names the limit that tripped;
* cancellation is honored by all three executors;
* the budget-raising surfaces (MFA, saturation, compiled queries)
  raise :class:`BudgetExceededError` carrying the structured reason.

Fault plans travel via the ``REPRO_FAULTS`` environment variable so
spawned workers see them (:mod:`repro.runtime.faults`).
"""

import pytest

from repro.chase import ChaseVariant, RoundScheduler, run_chase
from repro.errors import BudgetExceededError
from repro.parser import parse_database, parse_program
from repro.runtime import Budget, CancelToken
from repro.runtime.faults import ENV_VAR
from repro.termination import decide_guarded, is_mfa, skolem_chase

DIVERGING = "person(X) -> exists Y . father(X, Y), person(Y)"
DIVERGING_DB = "person(bob)"

# Terminating fixture with enough rounds/triggers that the process
# executor ships several batches (so injected crashes actually land in
# workers).
CLOSURE = "e(X, Y), e(Y, Z) -> e(X, Z)"
CLOSURE_DB = "\n".join(f"e(c{i}, c{i + 1})" for i in range(12))


def chase_fingerprint(result):
    """Everything a byte-equivalence claim is made of."""
    return (
        result.instance.facts(),
        result.terminated,
        [step.trigger.key(result.variant) for step in result.steps],
        [step.new_facts for step in result.steps],
        result.facts_by_rule(),
    )


def assert_round_consistent(result, database):
    """A budget-stopped result is the database plus exactly the facts
    of the recorded steps — never a mid-trigger torso."""
    added = sum(len(step.new_facts) for step in result.steps)
    assert len(result.instance) == len(database) + added
    for step in result.steps:
        for fact in step.new_facts:
            assert fact in result.instance


def fake_clock(step=1.0):
    """A deterministic monotonic clock advancing ``step`` per call."""
    state = {"now": 0.0}

    def clock():
        state["now"] += step
        return state["now"]

    return clock


@pytest.fixture
def closure():
    return parse_program(CLOSURE), parse_database(CLOSURE_DB)


@pytest.fixture
def diverging():
    return parse_program(DIVERGING), parse_database(DIVERGING_DB)


class TestWorkerCrashRecovery:
    def test_single_crash_respawns_and_matches_serial(
        self, closure, tmp_path, monkeypatch
    ):
        rules, database = closure
        serial = run_chase(database, rules, ChaseVariant.OBLIVIOUS, 10_000)
        # One global crash token: the first worker batch dies, the
        # respawned pool finds the token claimed and completes.
        monkeypatch.setenv(ENV_VAR, f"crash:1:{tmp_path}")
        scheduler = RoundScheduler("process", workers=2)
        try:
            crashed = run_chase(
                database, rules, ChaseVariant.OBLIVIOUS, 10_000,
                scheduler=scheduler,
            )
        finally:
            scheduler.close()
        assert chase_fingerprint(crashed) == chase_fingerprint(serial)
        assert crashed.terminated
        assert crashed.stop_reason == "fixpoint"
        assert scheduler.fault_stats["pool_failures"] >= 1
        assert scheduler.fault_stats["pool_respawns"] == 1
        assert not scheduler.degraded
        # One token file was actually claimed.
        assert (tmp_path / "crash-0").exists()

    def test_persistent_crashes_degrade_to_serial(
        self, closure, tmp_path, monkeypatch
    ):
        rules, database = closure
        serial = run_chase(database, rules, ChaseVariant.OBLIVIOUS, 10_000)
        # More tokens than the respawn budget: the pool dies, the
        # respawn dies too, and the scheduler degrades — the run must
        # still finish, in-parent, with the identical result.
        monkeypatch.setenv(ENV_VAR, f"crash:500:{tmp_path}")
        scheduler = RoundScheduler("process", workers=2)
        try:
            degraded = run_chase(
                database, rules, ChaseVariant.OBLIVIOUS, 10_000,
                scheduler=scheduler,
            )
        finally:
            scheduler.close()
        assert chase_fingerprint(degraded) == chase_fingerprint(serial)
        assert degraded.terminated
        assert scheduler.degraded
        assert scheduler.fault_stats["degraded"] == 1
        assert scheduler.fault_stats["pool_failures"] >= 2
        assert scheduler.ship_stats["degraded"] == 1
        # The degradation is visible on the result's resource report.
        executor = degraded.resource.get("executor")
        assert executor is not None
        assert executor["degraded"] == 1

    def test_degraded_scheduler_stays_serial(self, closure, monkeypatch):
        rules, database = closure
        # No token dir and a huge per-process crash budget: a pool
        # would never survive.  A pre-degraded scheduler must not spawn
        # one at all (map() goes straight to in-parent evaluation).
        monkeypatch.setenv(ENV_VAR, "crash:1000000")
        scheduler = RoundScheduler("process", workers=2)
        scheduler.degraded = True
        try:
            result = run_chase(
                database, rules, ChaseVariant.OBLIVIOUS, 10_000,
                scheduler=scheduler,
            )
        finally:
            scheduler.close()
        serial = run_chase(database, rules, ChaseVariant.OBLIVIOUS, 10_000)
        assert chase_fingerprint(result) == chase_fingerprint(serial)


class TestBudgetStops:
    def test_deadline_stop_is_round_consistent(self, diverging):
        rules, database = diverging
        # Deterministic mid-run deadline: the injected clock advances
        # 1s per budget probe, so the 10s deadline trips after a few
        # rounds — no sleeping, no wall-clock flakiness.
        budget = Budget(timeout_s=10.0, clock=fake_clock(1.0))
        result = run_chase(
            database, rules, ChaseVariant.SEMI_OBLIVIOUS, 1_000_000,
            budget=budget,
        )
        assert not result.terminated
        assert result.stop_reason == "deadline"
        assert result.resource["rounds"] >= 1
        assert_round_consistent(result, database)

    def test_memory_ceiling_stop(self, diverging, monkeypatch):
        rules, database = diverging
        # A fault-injected allocation spike makes the working-set probe
        # report ~1 TiB, tripping any sane ceiling deterministically.
        monkeypatch.setenv(ENV_VAR, f"spike:{1 << 40}")
        budget = Budget(max_memory_mb=256.0, memory_check_every=1)
        result = run_chase(
            database, rules, ChaseVariant.SEMI_OBLIVIOUS, 1_000_000,
            budget=budget,
        )
        assert not result.terminated
        assert result.stop_reason == "memory"
        assert result.resource["memory_mb"] > 256.0
        assert_round_consistent(result, database)

    def test_max_rounds_and_max_facts(self, diverging):
        rules, database = diverging
        by_rounds = run_chase(
            database, rules, ChaseVariant.SEMI_OBLIVIOUS, 1_000_000,
            budget=Budget(max_rounds=3),
        )
        assert by_rounds.stop_reason == "step_budget"
        assert by_rounds.resource["rounds"] == 3
        assert_round_consistent(by_rounds, database)

        by_facts = run_chase(
            database, rules, ChaseVariant.SEMI_OBLIVIOUS, 1_000_000,
            budget=Budget(max_facts=9),
        )
        assert by_facts.stop_reason == "step_budget"
        assert len(by_facts.instance) >= 9
        assert_round_consistent(by_facts, database)

    def test_budget_stop_matches_unbudgeted_prefix(self, diverging):
        rules, database = diverging
        governed = run_chase(
            database, rules, ChaseVariant.SEMI_OBLIVIOUS, 1_000_000,
            budget=Budget(max_rounds=4),
        )
        free = run_chase(database, rules, ChaseVariant.SEMI_OBLIVIOUS, 1_000)
        # The governed run is a prefix of the ungoverned one — budgets
        # stop the engine, they never change what it computes.
        n = len(governed.steps)
        assert [s.new_facts for s in governed.steps] == \
            [s.new_facts for s in free.steps[:n]]


class TestCancellation:
    @pytest.mark.parametrize("kind", ["serial", "threaded", "process"])
    def test_pre_cancelled_budget_stops_every_executor(
        self, diverging, kind
    ):
        rules, database = diverging
        token = CancelToken()
        token.cancel()
        scheduler = (
            RoundScheduler(kind, workers=2) if kind != "serial" else "serial"
        )
        try:
            result = run_chase(
                database, rules, ChaseVariant.SEMI_OBLIVIOUS, 1_000_000,
                scheduler=scheduler, budget=Budget(cancel=token),
            )
        finally:
            if kind != "serial":
                scheduler.close()
        assert result.stop_reason == "cancelled"
        assert not result.terminated
        assert result.step_count == 0
        assert result.instance.facts() == database.facts()

    def test_mid_run_cancellation_is_round_consistent(self, diverging):
        rules, database = diverging
        token = CancelToken()
        calls = {"n": 0}

        def cancelling_clock():
            # Cancel from "outside" after a handful of budget probes —
            # the engine must notice at the next boundary.
            calls["n"] += 1
            if calls["n"] == 6:
                token.cancel()
            return float(calls["n"])

        budget = Budget(
            timeout_s=1e9, cancel=token, clock=cancelling_clock
        )
        result = run_chase(
            database, rules, ChaseVariant.SEMI_OBLIVIOUS, 1_000_000,
            budget=budget,
        )
        assert result.stop_reason == "cancelled"
        assert result.step_count >= 1
        assert_round_consistent(result, database)


class TestRaisingSurfaces:
    def test_skolem_chase_stops_on_budget(self, closure):
        # A terminating full program that needs several rounds: a
        # 1-round budget stops it before fixpoint, without a cycle.
        rules, database = closure
        budget = Budget(max_rounds=1)
        instance, cyclic, fixpoint = skolem_chase(
            database, rules, max_steps=1_000_000, budget=budget,
        )
        assert cyclic is None and not fixpoint
        assert budget.stop_reason == "step_budget"
        # Stopped early: the full closure of a 12-chain is larger.
        assert len(database) < len(instance) < 12 * 13 // 2

    def test_is_mfa_raises_with_stop_reason(self, diverging):
        rules, _ = diverging
        with pytest.raises(BudgetExceededError) as info:
            is_mfa(rules, max_steps=1_000_000, budget=Budget(max_rounds=1))
        assert info.value.stop_reason == "step_budget"
        assert info.value.stats["rounds"] >= 1

    def test_decide_guarded_raises_on_deadline(self):
        rules = parse_program(
            "r(X, Y), p(Y) -> exists Z . r(Y, Z)\nr(X, Y) -> p(Y)"
        )
        budget = Budget(timeout_s=3.0, clock=fake_clock(1.0))
        with pytest.raises(BudgetExceededError) as info:
            decide_guarded(
                rules, ChaseVariant.SEMI_OBLIVIOUS, budget=budget
            )
        assert info.value.stop_reason == "deadline"
        assert "deadline" in str(info.value)

    def test_compiled_query_honors_budget(self):
        from repro.parser import parse_query

        database = parse_database(
            "\n".join(f"p(c{i})" for i in range(1300))
        )
        query = parse_query("q(X) :- p(X)")
        token = CancelToken()
        token.cancel()
        with pytest.raises(BudgetExceededError) as info:
            list(query.answers(database, budget=Budget(cancel=token)))
        assert info.value.stop_reason == "cancelled"

    def test_unstarted_limits_validate(self):
        with pytest.raises(ValueError):
            Budget(timeout_s=0)
        with pytest.raises(ValueError):
            Budget(max_rounds=-1)


class TestSlowFault:
    def test_slow_batches_still_identical(self, closure, monkeypatch):
        rules, database = closure
        serial = run_chase(database, rules, ChaseVariant.OBLIVIOUS, 10_000)
        monkeypatch.setenv(ENV_VAR, "slow:0.01")
        scheduler = RoundScheduler("process", workers=2)
        try:
            slowed = run_chase(
                database, rules, ChaseVariant.OBLIVIOUS, 10_000,
                scheduler=scheduler,
            )
        finally:
            scheduler.close()
        assert chase_fingerprint(slowed) == chase_fingerprint(serial)
        assert not scheduler.degraded
