"""Unit tests for repro.model.homomorphism."""

from repro.model import (
    Atom,
    Constant,
    Instance,
    Null,
    Predicate,
    Variable,
    apply_assignment,
    has_homomorphism,
    homomorphisms,
    instance_homomorphism,
    is_homomorphically_equivalent,
    match_atom,
)
from tests.conftest import atom


class TestMatchAtom:
    def test_simple_binding(self):
        result = match_atom(atom("p", "X", "Y"), atom("p", "a", "b"), {})
        assert result == {Variable("X"): Constant("a"),
                          Variable("Y"): Constant("b")}

    def test_predicate_mismatch(self):
        assert match_atom(atom("p", "X"), atom("q", "a"), {}) is None

    def test_repeated_variable_consistency(self):
        assert match_atom(atom("p", "X", "X"), atom("p", "a", "b"), {}) is None
        assert match_atom(atom("p", "X", "X"), atom("p", "a", "a"), {}) is not None

    def test_respects_prior_bindings(self):
        prior = {Variable("X"): Constant("b")}
        assert match_atom(atom("p", "X"), atom("p", "a"), prior) is None
        assert match_atom(atom("p", "X"), atom("p", "b"), prior) is not None

    def test_constant_in_pattern_must_match(self):
        assert match_atom(atom("p", "a", "X"), atom("p", "a", "b"), {}) is not None
        assert match_atom(atom("p", "a", "X"), atom("p", "c", "b"), {}) is None

    def test_input_assignment_not_mutated(self):
        prior = {}
        match_atom(atom("p", "X"), atom("p", "a"), prior)
        assert prior == {}


class TestHomomorphisms:
    def test_single_atom_all_matches(self):
        inst = Instance([atom("p", "a"), atom("p", "b")])
        homs = list(homomorphisms([atom("p", "X")], inst))
        values = {h[Variable("X")] for h in homs}
        assert values == {Constant("a"), Constant("b")}

    def test_join_across_atoms(self):
        inst = Instance([atom("e", "a", "b"), atom("e", "b", "c")])
        homs = list(
            homomorphisms([atom("e", "X", "Y"), atom("e", "Y", "Z")], inst)
        )
        chains = {
            (h[Variable("X")].name, h[Variable("Y")].name, h[Variable("Z")].name)
            for h in homs
        }
        assert chains == {("a", "b", "c")}

    def test_empty_conjunction_yields_empty_assignment(self):
        assert list(homomorphisms([], Instance())) == [{}]

    def test_partial_assignment_respected(self):
        inst = Instance([atom("p", "a"), atom("p", "b")])
        homs = list(
            homomorphisms(
                [atom("p", "X")], inst, {Variable("X"): Constant("b")}
            )
        )
        assert len(homs) == 1
        assert homs[0][Variable("X")] == Constant("b")

    def test_no_match_yields_nothing(self):
        inst = Instance([atom("p", "a")])
        assert list(homomorphisms([atom("q", "X")], inst)) == []

    def test_has_homomorphism(self):
        inst = Instance([atom("p", "a")])
        assert has_homomorphism([atom("p", "X")], inst)
        assert not has_homomorphism([atom("p", "X"), atom("q", "X")], inst)

    def test_cartesian_product_counted(self):
        inst = Instance([atom("p", "a"), atom("p", "b")])
        homs = list(homomorphisms([atom("p", "X"), atom("p", "Y")], inst))
        assert len(homs) == 4

    def test_nulls_matchable_by_variables(self):
        null_fact = Atom(Predicate("p", 1), [Null(1)])
        inst = Instance([null_fact])
        homs = list(homomorphisms([atom("p", "X")], inst))
        assert homs[0][Variable("X")] == Null(1)


class TestApplyAssignment:
    def test_grounds_atoms(self):
        assignment = {Variable("X"): Constant("a")}
        out = apply_assignment([atom("p", "X", "X")], assignment)
        assert out == [atom("p", "a", "a")]

    def test_uncovered_variables_survive(self):
        out = apply_assignment([atom("p", "X", "Y")],
                               {Variable("X"): Constant("a")})
        assert out[0].terms[1] == Variable("Y")


class TestInstanceHomomorphism:
    def test_constants_map_identically(self):
        source = Instance([atom("p", "a")])
        target = Instance([atom("p", "a"), atom("p", "b")])
        mapping = instance_homomorphism(source, target)
        assert mapping is not None
        assert mapping[Constant("a")] == Constant("a")

    def test_constant_mismatch_fails(self):
        source = Instance([atom("p", "a")])
        target = Instance([atom("p", "b")])
        assert instance_homomorphism(source, target) is None

    def test_nulls_can_map_to_constants(self):
        source = Instance([Atom(Predicate("p", 1), [Null(1)])])
        target = Instance([atom("p", "a")])
        mapping = instance_homomorphism(source, target)
        assert mapping is not None
        assert mapping[Null(1)] == Constant("a")

    def test_null_identity_consistent(self):
        p2 = Predicate("p", 2)
        source = Instance([Atom(p2, [Null(1), Null(1)])])
        target = Instance([atom("p", "a", "b")])
        assert instance_homomorphism(source, target) is None
        target2 = Instance([atom("p", "a", "a")])
        assert instance_homomorphism(source, target2) is not None

    def test_equivalence(self):
        a = Instance([atom("p", "a"), Atom(Predicate("p", 1), [Null(1)])])
        b = Instance([atom("p", "a")])
        assert is_homomorphically_equivalent(a, b)

    def test_non_equivalence(self):
        a = Instance([atom("p", "a")])
        b = Instance([atom("p", "a"), atom("q", "b")])
        assert not is_homomorphically_equivalent(a, b)
