"""Theorem 1 tests: SL termination ⇔ rich/weak acyclicity."""

import pytest

from repro.chase import ChaseVariant
from repro.errors import UnsupportedClassError
from repro.graphs import DangerousCycle, is_richly_acyclic, is_weakly_acyclic
from repro.parser import parse_program
from repro.termination import (
    critical_chase_terminates,
    decide_simple_linear,
    decide_termination,
)

# Curated SL suite: (program, oblivious-terminates, semi-obl-terminates)
CURATED = [
    # plain chain
    ("p(X) -> exists Z . q(X, Z)\nq(X, Y) -> r(Y)", True, True),
    # Example 2: diverges for both
    ("p(X, Y) -> exists Z . p(Y, Z)", False, False),
    # the o/so separation: non-frontier variable feeds the existential
    ("p(X, Y) -> exists Z . p(X, Z)", False, True),
    # Example 1 (multi-atom head)
    ("person(X) -> exists Y . hasFather(X, Y), person(Y)", False, False),
    # full program
    ("p(X, Y) -> q(Y, X)\nq(X, Y) -> p(X, Y)", True, True),
    # DL-Lite chain
    ("c1(X) -> exists Y . role1(X, Y)\nrole1(X, Y) -> c2(Y)", True, True),
    # DL-Lite cycle
    (
        "c1(X) -> exists Y . role1(X, Y)\nrole1(X, Y) -> c1(Y)",
        False,
        False,
    ),
    # existential never feeds back
    ("p(X) -> exists Z . q(X, Z)\nq(X, Y) -> p(X)", True, True),
    # nulls reach rule 2's body, but rule 2 only re-derives a known
    # fact: finitely many extra oblivious triggers, then a fixpoint.
    (
        "a(X) -> exists Y . e(X, Y)\ne(X, Y) -> a(X)",
        True,
        True,
    ),
    # two-rule genuine cycle: diverges for both
    (
        "a(X) -> exists Y . e(X, Y)\ne(X, Y) -> a(Y)",
        False,
        False,
    ),
]


class TestTheorem1Characterization:
    @pytest.mark.parametrize("text,o_expected,so_expected", CURATED)
    def test_oblivious_matches_rich_acyclicity(
        self, text, o_expected, so_expected
    ):
        rules = parse_program(text)
        assert is_richly_acyclic(rules) == o_expected
        verdict = decide_simple_linear(rules, ChaseVariant.OBLIVIOUS)
        assert verdict.terminating == o_expected

    @pytest.mark.parametrize("text,o_expected,so_expected", CURATED)
    def test_semi_oblivious_matches_weak_acyclicity(
        self, text, o_expected, so_expected
    ):
        rules = parse_program(text)
        assert is_weakly_acyclic(rules) == so_expected
        verdict = decide_simple_linear(rules, ChaseVariant.SEMI_OBLIVIOUS)
        assert verdict.terminating == so_expected

    @pytest.mark.parametrize("text,o_expected,so_expected", CURATED)
    def test_oracle_agrees_when_conclusive(
        self, text, o_expected, so_expected
    ):
        rules = parse_program(text)
        for variant, expected in (
            (ChaseVariant.OBLIVIOUS, o_expected),
            (ChaseVariant.SEMI_OBLIVIOUS, so_expected),
        ):
            oracle = critical_chase_terminates(rules, variant, max_steps=400)
            if expected:
                assert oracle is True
            else:
                assert oracle is None  # budget exhausted, as expected

    @pytest.mark.parametrize("text,o_expected,so_expected", CURATED)
    def test_guarded_procedure_agrees_on_sl(
        self, text, o_expected, so_expected
    ):
        """Theorems 1 and 4 must coincide on SL — a strong internal
        consistency check between the syntactic and semantic deciders."""
        rules = parse_program(text)
        for variant, expected in (
            (ChaseVariant.OBLIVIOUS, o_expected),
            (ChaseVariant.SEMI_OBLIVIOUS, so_expected),
        ):
            verdict = decide_termination(rules, variant=variant,
                                         method="guarded")
            assert verdict.terminating == expected, (text, variant)


class TestVerdictContents:
    def test_non_terminating_carries_dangerous_cycle(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        verdict = decide_simple_linear(rules, ChaseVariant.SEMI_OBLIVIOUS)
        assert isinstance(verdict.witness, DangerousCycle)

    def test_terminating_reports_graph_stats(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        verdict = decide_simple_linear(rules, ChaseVariant.OBLIVIOUS)
        assert verdict.stats["positions"] >= 3

    def test_methods_named_after_acyclicity(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        o = decide_simple_linear(rules, ChaseVariant.OBLIVIOUS)
        so = decide_simple_linear(rules, ChaseVariant.SEMI_OBLIVIOUS)
        assert o.method == "rich_acyclicity"
        assert so.method == "weak_acyclicity"


class TestInputValidation:
    def test_rejects_non_simple_linear(self):
        rules = parse_program("p(X, X) -> exists Z . q(X, Z)")
        with pytest.raises(UnsupportedClassError):
            decide_simple_linear(rules, ChaseVariant.OBLIVIOUS)

    def test_rejects_restricted_variant(self):
        rules = parse_program("p(X) -> q(X)")
        with pytest.raises(UnsupportedClassError):
            decide_simple_linear(rules, ChaseVariant.RESTRICTED)


class TestContainments:
    """CT_o ⊆ CT_so on SL (since RA ⊆ WA) — §2's containment."""

    @pytest.mark.parametrize("text,o_expected,so_expected", CURATED)
    def test_o_termination_implies_so_termination(
        self, text, o_expected, so_expected
    ):
        assert not (o_expected and not so_expected)
        rules = parse_program(text)
        o = decide_simple_linear(rules, ChaseVariant.OBLIVIOUS)
        so = decide_simple_linear(rules, ChaseVariant.SEMI_OBLIVIOUS)
        if o.terminating:
            assert so.terminating
