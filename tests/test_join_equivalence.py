"""Indexed join engine ≡ naive reference — assignment-for-assignment.

The indexed engine (:func:`repro.model.homomorphisms`, compiled join
plans over term-level indexes) must yield *exactly* the same
assignments in *exactly* the same order as the retained seed matcher
(:func:`repro.model.naive_homomorphisms`).  Order matters: the
restricted chase is order-sensitive and the sequence-level tests pin
the canonical fair order, so "same set" is not enough.

Checked three ways:

* property-based (hypothesis) over random programs, databases, and
  chase-grown instances with nulls;
* seeded sweeps over the workload generators (SL / linear / guarded,
  with and without rule constants);
* handwritten adversarial conjunctions (repeated variables, pattern
  constants, cross-products, partial assignments).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.chase import ChaseVariant, run_chase
from repro.model import (
    Atom,
    Constant,
    Database,
    Instance,
    Null,
    Predicate,
    TGD,
    Variable,
    homomorphisms,
    naive_homomorphisms,
)
from repro.workloads import (
    random_database,
    random_guarded,
    random_linear,
    random_simple_linear,
)
from tests.conftest import atom

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_same_enumeration(atoms, instance, partial=None):
    indexed = list(homomorphisms(atoms, instance, partial))
    naive = list(naive_homomorphisms(atoms, instance, partial))
    assert indexed == naive


def grown_instance(rules, seed=0):
    """A chase-grown instance (contains nulls when rules invent them)."""
    db = random_database(rules, num_constants=3, facts_per_predicate=2,
                         seed=seed)
    result = run_chase(db, rules, ChaseVariant.SEMI_OBLIVIOUS,
                       max_steps=120)
    return result.instance


GENERATORS = [
    lambda seed: random_simple_linear(4, seed=seed),
    lambda seed: random_simple_linear(4, seed=seed, constant_prob=0.3),
    lambda seed: random_linear(4, seed=seed),
    lambda seed: random_guarded(3, side_atoms=2, seed=seed),
]


@pytest.mark.parametrize("generator", GENERATORS)
@pytest.mark.parametrize("seed", range(8))
def test_rule_bodies_enumerate_identically(generator, seed):
    rules = generator(seed)
    instance = grown_instance(rules, seed)
    for rule in rules:
        assert_same_enumeration(rule.body, instance)
        assert_same_enumeration(rule.head, instance)


@pytest.mark.parametrize("seed", range(8))
def test_partial_assignments_enumerate_identically(seed):
    rules = random_guarded(3, side_atoms=2, seed=seed)
    instance = grown_instance(rules, seed)
    for rule in rules:
        first = next(naive_homomorphisms(rule.body, instance), None)
        if first is None:
            continue
        # Pin each variable of the first match in turn and compare the
        # constrained enumerations.
        for var, term in first.items():
            assert_same_enumeration(rule.body, instance, {var: term})


class TestAdversarialConjunctions:
    def setup_method(self):
        self.instance = Instance([
            atom("e", "a", "b"), atom("e", "b", "c"), atom("e", "c", "a"),
            atom("e", "a", "a"),
            atom("p", "a"), atom("p", "b"),
            atom("q", "a", "a", "b"), atom("q", "b", "b", "b"),
            Atom(Predicate("p", 1), [Null(7)]),
            Atom(Predicate("e", 2), [Null(7), Constant("a")]),
        ])

    def test_repeated_variables(self):
        assert_same_enumeration(
            [atom("q", "X", "X", "Y"), atom("e", "Y", "Y")], self.instance
        )

    def test_pattern_constants(self):
        assert_same_enumeration(
            [atom("e", "a", "X"), atom("e", "X", "Y")], self.instance
        )

    def test_cross_product(self):
        assert_same_enumeration(
            [atom("p", "X"), atom("p", "Y"), atom("p", "Z")], self.instance
        )

    def test_triangle(self):
        assert_same_enumeration(
            [atom("e", "X", "Y"), atom("e", "Y", "Z"), atom("e", "Z", "X")],
            self.instance,
        )

    def test_partial_with_unused_binding(self):
        # A partial binding for a variable not occurring in the atoms
        # must survive into every yielded assignment.
        partial = {Variable("Unused"): Constant("a")}
        assert_same_enumeration([atom("p", "X")], self.instance, partial)

    def test_null_valued_partial(self):
        assert_same_enumeration(
            [atom("e", "X", "Y")], self.instance, {Variable("X"): Null(7)}
        )

    def test_empty_conjunction(self):
        assert_same_enumeration([], self.instance)
        assert_same_enumeration([], self.instance,
                                {Variable("X"): Constant("a")})

    def test_unsatisfiable(self):
        assert_same_enumeration([atom("zz", "X")], self.instance)


# -- property-based --------------------------------------------------------

names = st.sampled_from(["p2", "q2", "r3"])
variables = st.sampled_from([Variable(n) for n in ("X", "Y", "Z")])
constants = st.sampled_from([Constant(n) for n in ("a", "b", "c")])


@st.composite
def pattern_atoms(draw):
    name = draw(names)
    arity = int(name[-1])
    terms = draw(
        st.lists(st.one_of(variables, constants),
                 min_size=arity, max_size=arity)
    )
    return Atom(Predicate(name, arity), terms)


@st.composite
def ground_atoms(draw):
    name = draw(names)
    arity = int(name[-1])
    terms = draw(
        st.lists(constants, min_size=arity, max_size=arity)
    )
    return Atom(Predicate(name, arity), terms)


@given(
    body=st.lists(pattern_atoms(), min_size=1, max_size=3),
    facts=st.lists(ground_atoms(), min_size=0, max_size=12),
)
@SETTINGS
def test_property_same_assignments_same_order(body, facts):
    instance = Instance(facts)
    assert_same_enumeration(body, instance)


@given(
    body=st.lists(pattern_atoms(), min_size=1, max_size=3),
    facts=st.lists(ground_atoms(), min_size=1, max_size=12),
    pinned=constants,
)
@SETTINGS
def test_property_partial_respected(body, facts, pinned):
    instance = Instance(facts)
    assert_same_enumeration(body, instance, {Variable("X"): pinned})


# -- interned-core engine over chase-grown instances -----------------------
#
# The randomized end-to-end property of the interned fact core: grow an
# instance with the real engines (so it holds nulls — and, via the
# Skolem chase, structured SkolemTerm constants), then hold the
# int-core join engine assignment-for-assignment, order-for-order equal
# to the retained naive matcher on every rule body, head, and pinned
# partial.

import random as _random

from repro.termination import skolem_chase
from repro.chase import critical_instance


def _random_program(rng):
    """A small random program mixing full and existential rules."""
    preds = [Predicate(f"p{i}", rng.randint(1, 3)) for i in range(3)]
    variables = [Variable(n) for n in ("X", "Y", "Z", "W")]
    consts = [Constant(c) for c in ("a", "b")]
    rules = []
    for _ in range(rng.randint(2, 4)):
        body = []
        for _ in range(rng.randint(1, 2)):
            pred = rng.choice(preds)
            body.append(Atom(pred, [
                rng.choice(consts) if rng.random() < 0.15
                else rng.choice(variables[:3])
                for _ in range(pred.arity)
            ]))
        body_vars = {t for a in body for t in a.variables()}
        head_pred = rng.choice(preds)
        head_pool = sorted(body_vars) + [variables[3]]  # W is existential
        head = [Atom(head_pred, [
            rng.choice(head_pool) for _ in range(head_pred.arity)
        ])]
        rules.append(TGD(body, head))
    return rules, preds, variables, consts


@pytest.mark.parametrize("seed", range(10))
def test_intcore_matches_naive_on_chase_grown_instances(seed):
    rng = _random.Random(seed)
    rules, preds, variables, consts = _random_program(rng)
    db = Database()
    for _ in range(rng.randint(2, 6)):
        pred = rng.choice(preds)
        db.add(Atom(pred, [rng.choice(consts)
                           for _ in range(pred.arity)]))
    grown = run_chase(db, rules, ChaseVariant.SEMI_OBLIVIOUS,
                      max_steps=80).instance
    for rule in rules:
        assert_same_enumeration(rule.body, grown)
        assert_same_enumeration(rule.head, grown)
        first = next(naive_homomorphisms(rule.body, grown), None)
        if first:
            for var, term in first.items():
                assert_same_enumeration(rule.body, grown, {var: term})


@pytest.mark.parametrize("seed", range(6))
def test_intcore_matches_naive_with_skolem_terms(seed):
    rng = _random.Random(seed + 100)
    rules, *_ = _random_program(rng)
    grown, _, _ = skolem_chase(critical_instance(rules), rules,
                               max_steps=300)
    # Skolem terms are structured constants living inside ordinary
    # facts; the interned engine must enumerate over them identically.
    for rule in rules:
        assert_same_enumeration(rule.body, grown)
        assert_same_enumeration(rule.head, grown)
