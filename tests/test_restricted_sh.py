"""Tests for the §4 reconstruction: restricted-chase termination for
single-head linear TGDs (each predicate in at most one head)."""

import itertools

import pytest

from repro.chase import ChaseVariant, run_chase
from repro.errors import UnsupportedClassError
from repro.model import Atom, Constant, Database, Schema
from repro.parser import parse_program
from repro.termination import (
    decide_restricted_single_head,
    restricted_rule_graph,
)

# (program, restricted chase terminates on all DBs)
CURATED = [
    # the self-satisfying rule: the produced atom satisfies its own
    # next trigger, so the restricted chase stops where the
    # (semi-)oblivious one diverges.
    ("p(X, Y) -> exists Z . p(X, Z)", True),
    # the genuine generator: the new atom demands an unseen head.
    ("p(X, Y) -> exists Z . p(Y, Z)", False),
    # Example 1, single-head split across two predicates.
    (
        "person(X) -> exists Y . father(X, Y)\nfather(X, Y) -> child(Y)",
        True,
    ),
    # a fresh null relayed into a dead-end predicate: terminates.
    (
        "a(X) -> exists Y . e(X, Y)\ne(X, Y) -> a2(Y)",
        True,
    ),
    # a fresh null relayed back into the generator: diverges.  The
    # relay is a *full* rule — the carry-edge case.
    (
        "a(X) -> exists Y . e(X, Y)\ne(X, Y) -> a(Y)",
        False,
    ),
    # chain without recursion.
    ("p1(X) -> exists Y . p2(X, Y)\np2(X, Y) -> exists Z . p3(Y, Z)", True),
]


def distinct_database(rules) -> Database:
    """Every predicate instantiated with pairwise-distinct constants —
    the adversarial seed for the restricted chase (the critical
    instance is useless here: over ``p(*,*)`` many heads are satisfied
    outright)."""
    database = Database()
    counter = itertools.count(1)
    for pred in Schema.from_rules(rules):
        database.add(
            Atom(pred, [Constant(f"c{next(counter)}")
                        for _ in range(pred.arity)])
        )
    return database


class TestDecider:
    @pytest.mark.parametrize("text,expected", CURATED)
    def test_curated(self, text, expected):
        rules = parse_program(text)
        verdict = decide_restricted_single_head(rules)
        assert verdict.terminating == expected
        assert verdict.variant == "restricted"

    @pytest.mark.parametrize("text,expected", CURATED)
    def test_against_budgeted_restricted_chase(self, text, expected):
        """Empirical check on the all-distinct database."""
        rules = parse_program(text)
        result = run_chase(
            distinct_database(rules), rules,
            ChaseVariant.RESTRICTED, max_steps=300,
        )
        assert result.terminated == expected, text

    def test_rejects_non_linear(self):
        rules = parse_program("p(X), q(X) -> exists Z . r(X, Z)")
        with pytest.raises(UnsupportedClassError):
            decide_restricted_single_head(rules)

    def test_rejects_repeated_head_predicates(self):
        rules = parse_program("p(X) -> r(X)\nq(X) -> r(X)")
        with pytest.raises(UnsupportedClassError):
            decide_restricted_single_head(rules)

    def test_witness_on_divergence(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        verdict = decide_restricted_single_head(rules)
        assert verdict.witness is not None
        assert rules[0] in verdict.witness

    def test_polynomial_graph_size(self):
        rules = parse_program(
            "\n".join(
                f"p{i}(X) -> exists Y . p{i + 1}(X, Y)" if i % 2 == 0
                else f"p{i}(X, Y) -> p{i + 1}(Y)"
                for i in range(10)
            )
        )
        adjacency = restricted_rule_graph(rules)
        assert sum(len(v) for v in adjacency.values()) <= len(rules) ** 2


class TestRuleGraph:
    def test_self_satisfying_rule_has_no_self_edge(self):
        rules = parse_program("p(X, Y) -> exists Z . p(X, Z)")
        adjacency = restricted_rule_graph(rules)
        assert adjacency[0] == {}

    def test_generator_rule_has_fresh_self_edge(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        adjacency = restricted_rule_graph(rules)
        assert adjacency[0].get(0) == "fresh"

    def test_full_relay_is_a_carry_edge(self):
        rules = parse_program("a(X) -> exists Y . e(X, Y)\ne(X, Y) -> a(Y)")
        adjacency = restricted_rule_graph(rules)
        assert adjacency[0].get(1) == "fresh"
        assert adjacency[1].get(0) == "carry"

    def test_full_only_cycles_have_no_fresh_edge(self):
        rules = parse_program("p(X) -> q(X)\nq(X) -> p(X)")
        adjacency = restricted_rule_graph(rules)
        kinds = {k for targets in adjacency.values()
                 for k in targets.values()}
        assert "fresh" not in kinds
        verdict = decide_restricted_single_head(rules)
        assert verdict.terminating
