"""Incremental chase maintenance: sessions, deltas, and durability.

The contracts under test, from strongest to weakest (matching the
guarantees documented in :mod:`repro.chase.incremental`):

1. **Byte-identity across executors and persistence.**  For a fixed
   arrival schedule (initial database, then deltas in order), the
   incremental run's fingerprint — facts in log order, trigger keys,
   provenance ordinals — is identical on the serial, threaded, and
   process executors, and identical between a resident in-memory
   session and the durable ``extend_chase`` path.
2. **Skolem-level equality with the from-scratch chase** for the
   oblivious and semi-oblivious variants: chasing ``D ∪ Δ`` from
   scratch yields the same instance up to null renaming (equal fact
   and null counts, mutual homomorphism).
3. **Certain-answer equality for every variant**, restricted included:
   incremental maintenance preserves universality, so certain answers
   agree with the from-scratch chase even where the instances differ.
"""

import pytest

from repro.chase import ChaseVariant, resume_chase, run_chase
from repro.chase.delta import ingest_facts
from repro.chase.incremental import ChaseSession, extend_chase
from repro.errors import BudgetExceededError
from repro.model import Null, instance_homomorphism
from repro.model.instances import SnapshotInstance
from repro.parser import parse_database, parse_fact, parse_program, parse_query
from repro.runtime.budget import Budget

VARIANTS = (
    ChaseVariant.OBLIVIOUS,
    ChaseVariant.SEMI_OBLIVIOUS,
    ChaseVariant.RESTRICTED,
)

EXECUTORS = (
    {"scheduler": None},
    {"scheduler": "threaded", "workers": 2},
    {"scheduler": "process", "workers": 2},
)

RULES = parse_program(
    """
    emp(X, D) -> exists M . mgr(D, M)
    mgr(D, M), emp(E, D) -> rep(E, M)
    rep(E, M), rep(M, T) -> rep(E, T)
    rep(E, M), rep(F, M) -> peer(E, F)
    """
)

BASE = parse_database("emp(ann, sales)\nemp(bob, sales)")

DELTAS = (
    [parse_fact("emp(cam, ops)"), parse_fact("emp(dee, ops)")],
    [parse_fact("emp(eve, sales)")],
)


def fingerprint(session):
    """Facts in log order + trigger keys + provenance ordinals: equal
    fingerprints mean byte-identical runs."""
    inst = session.instance
    return (
        tuple(inst.facts()),
        tuple(s.trigger.key(session.variant) for s in session._steps),
        tuple(s._ordinals for s in session._steps),
    )


def union_database():
    db = parse_database("emp(ann, sales)\nemp(bob, sales)")
    for delta in DELTAS:
        for fact in delta:
            db.add(fact)
    return db


def run_schedule(variant, **sched):
    """Start on BASE, feed DELTAS in order, return the session."""
    session = ChaseSession.start(BASE, RULES, variant=variant, **sched)
    for delta in DELTAS:
        session.extend(delta)
    return session


@pytest.mark.parametrize("variant", VARIANTS)
def test_incremental_byte_identical_across_executors(variant):
    reference = None
    for sched in EXECUTORS:
        with run_schedule(variant, **sched) as session:
            assert session.terminated
            print_ = fingerprint(session)
        if reference is None:
            reference = print_
        else:
            assert print_ == reference, f"executor drift under {sched}"


@pytest.mark.parametrize(
    "variant", (ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS)
)
def test_incremental_skolem_equal_to_from_scratch(variant):
    with run_schedule(variant) as session:
        incremental = session.instance
        scratch = run_chase(union_database(), RULES, variant).instance
        assert len(incremental) == len(scratch)
        nulls = lambda inst: {
            t for t in inst.active_domain() if isinstance(t, Null)
        }
        assert len(nulls(incremental)) == len(nulls(scratch))
        assert instance_homomorphism(incremental, scratch) is not None
        assert instance_homomorphism(scratch, incremental) is not None


@pytest.mark.parametrize("variant", VARIANTS)
def test_incremental_certain_answers_match_from_scratch(variant):
    query = parse_query("q(E, F) :- peer(E, F)")
    with run_schedule(variant) as session:
        incremental = query.certain_answers(session.instance)
        scratch = run_chase(union_database(), RULES, variant)
        assert session.terminated and scratch.terminated
        assert incremental == query.certain_answers(scratch.instance)
        assert incremental  # the workload has certain answers to lose


def test_incremental_universal_for_restricted_extension_legs():
    # Each restricted extension leg must preserve universality: the
    # incremental instance maps into the from-scratch chase and back.
    with run_schedule(ChaseVariant.RESTRICTED) as session:
        scratch = run_chase(
            union_database(), RULES, ChaseVariant.RESTRICTED
        ).instance
        assert instance_homomorphism(session.instance, scratch) is not None
        assert instance_homomorphism(scratch, session.instance) is not None


def test_durable_extend_matches_memory_session(tmp_path):
    store = str(tmp_path / "chase.d")
    run_chase(BASE, RULES, ChaseVariant.OBLIVIOUS, save=store)
    for delta in DELTAS:
        extend_chase(store, delta)
    with ChaseSession.resume(store) as reopened:
        with run_schedule(ChaseVariant.OBLIVIOUS) as memory:
            assert fingerprint(reopened) == fingerprint(memory)
    # resume_chase still reads the extended store (a no-op leg).
    result = resume_chase(store, save=False)
    assert result.terminated
    assert result.step_count == reopened.step_count


def test_durable_extend_checkpoints_each_leg(tmp_path):
    store = str(tmp_path / "chase.d")
    run_chase(BASE, RULES, ChaseVariant.SEMI_OBLIVIOUS, save=store)
    before = extend_chase(store, DELTAS[0]).step_count
    # A fresh process-independent reopen sees the first delta durable.
    with ChaseSession.resume(store, save=False) as session:
        assert session.step_count == before
        assert session.terminated


def test_extend_rejects_non_ground_and_null_facts():
    from repro.model import Atom, Constant, Predicate

    with ChaseSession.start(BASE, RULES) as session:
        with pytest.raises(ValueError):
            session.extend([parse_query("emp(X, sales)").atoms[0]])
        null_fact = Atom(
            Predicate("emp", 2), (Null(99), Constant("sales"))
        )
        with pytest.raises(ValueError):
            session.extend([null_fact])


def test_extend_duplicate_delta_is_noop():
    with ChaseSession.start(BASE, RULES) as session:
        steps = session.step_count
        watermark = session.watermark
        session.extend([parse_fact("emp(ann, sales)")])
        assert session.step_count == steps
        assert session.watermark == watermark
        assert session.terminated


def test_extend_after_step_budget_stop():
    with ChaseSession.start(BASE, RULES, max_steps=1) as session:
        assert not session.terminated
        assert session.stop_reason == "step_budget"
        # Raising the cap lets the same session finish, then extend.
        session.extend([], max_steps=10_000)
        assert session.terminated
        result = session.extend(DELTAS[0])
        assert result.terminated
        query = parse_query("q(E) :- emp(E, ops)")
        assert len(list(query.answers(session.instance))) == 2


def test_extend_leg_deadline_stops_round_consistently_then_recovers():
    # A ticking injected clock: every probe advances 1s, so the first
    # budget check after start() is already past the 0.5s deadline.
    state = {"t": 0.0}

    def clock():
        state["t"] += 1.0
        return state["t"]

    with ChaseSession.start(BASE, RULES) as session:
        result = session.extend(
            DELTAS[0], budget=Budget(timeout_s=0.5, clock=clock)
        )
        assert session.stop_reason == "deadline"
        assert not session.terminated
        assert result.stop_reason == "deadline"
        # A fresh (unlimited) leg drives the leftover frontier to the
        # fixpoint; the final model agrees with the untripped schedule
        # (fact *order* may differ — the deadline interleaved two
        # deltas into one leg — but the facts and answers may not).
        session.extend(DELTAS[1])
        assert session.terminated
        query = parse_query("q(E, F) :- peer(E, F)")
        with ChaseSession.start(BASE, RULES) as reference:
            for delta in DELTAS:
                reference.extend(delta)
            # Same model up to null renaming (the deadline interleaved
            # two deltas into one leg, so order/numbering may differ).
            assert len(session.instance) == len(reference.instance)
            assert instance_homomorphism(
                session.instance, reference.instance
            ) is not None
            assert instance_homomorphism(
                reference.instance, session.instance
            ) is not None
            assert query.certain_answers(
                session.instance
            ) == query.certain_answers(reference.instance)


def test_session_snapshot_pins_watermark():
    with ChaseSession.start(BASE, RULES) as session:
        snap = session.snapshot()
        assert isinstance(snap, SnapshotInstance)
        before = snap.watermark
        session.extend(DELTAS[0])
        assert snap.watermark == before  # old view unmoved
        assert session.snapshot().watermark == session.watermark
        assert session.watermark > before


def test_ingest_facts_notifies_engine():
    session = ChaseSession.start(BASE, RULES)
    try:
        added = ingest_facts(session._engine, [parse_fact("emp(fay, hr)")])
        assert len(added) == 1
        session._run_leg(None)
        assert session.terminated
        query = parse_query("q(M) :- mgr(hr, M)")
        assert len(list(query.answers(session.instance))) == 1
    finally:
        session.close()
