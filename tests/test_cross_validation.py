"""Cross-validation: abstract deciders vs the concrete chase oracle.

These are the load-bearing correctness tests of the reproduction: on
randomly sampled SL / L / G programs the semantic deciders must agree
with (budgeted) ground truth, and the paper's containments must hold.
"""

import pytest

from repro.chase import ChaseVariant
from repro.graphs import is_richly_acyclic, is_weakly_acyclic
from repro.termination import (
    critical_chase_terminates,
    decide_termination,
)
from repro.workloads import (
    random_guarded,
    random_linear,
    random_simple_linear,
)

ORACLE_STEPS = 700

SL_SETS = [
    random_simple_linear(n, num_predicates=p, max_arity=a, seed=s)
    for n, p, a, s in [
        (2, 2, 2, 1), (3, 3, 2, 2), (4, 3, 3, 3), (5, 4, 3, 4),
        (3, 2, 3, 5), (6, 4, 2, 6), (4, 4, 3, 7), (5, 3, 2, 8),
        (2, 2, 3, 9), (6, 3, 3, 10), (3, 3, 3, 11), (4, 2, 2, 12),
    ]
]

L_SETS = [
    random_linear(n, num_predicates=p, max_arity=a, seed=s)
    for n, p, a, s in [
        (2, 2, 2, 1), (3, 3, 2, 2), (4, 3, 3, 3), (5, 4, 3, 4),
        (3, 2, 3, 5), (6, 4, 2, 6), (4, 4, 3, 7), (5, 3, 2, 8),
        (2, 3, 3, 9), (4, 3, 2, 10),
    ]
]

G_SETS = [
    random_guarded(n, num_predicates=p, max_arity=a, seed=s)
    for n, p, a, s in [
        (2, 2, 2, 1), (3, 3, 2, 2), (2, 3, 3, 3), (3, 2, 2, 4),
        (4, 3, 2, 5), (2, 2, 3, 6), (3, 3, 3, 7), (4, 4, 2, 8),
    ]
]

# Constant-bearing SL programs: the regime where Theorem 1's
# constant-free characterization is inapplicable and the dispatcher
# must route to the critical decider (see the decider regression
# test); the critical instance includes the rule constants.
CONST_SETS = [
    random_simple_linear(
        n, num_predicates=p, max_arity=a, seed=s, constant_prob=0.3
    )
    for n, p, a, s in [
        (2, 2, 2, 1), (3, 3, 2, 2), (4, 3, 3, 3), (3, 2, 3, 4),
        (5, 4, 2, 5), (4, 4, 3, 6), (3, 3, 3, 7), (2, 2, 3, 8),
        (5, 3, 2, 9), (4, 2, 2, 10),
    ]
]


def check_agreement(rules, variant):
    """Decider vs oracle: if the oracle is conclusive (terminates),
    the decider must agree; if the decider says non-terminating, the
    oracle must NOT have terminated."""
    verdict = decide_termination(rules, variant=variant)
    oracle = critical_chase_terminates(rules, variant,
                                       max_steps=ORACLE_STEPS)
    if oracle is True:
        assert verdict.terminating, (
            f"decider says diverging but the critical chase reached a "
            f"fixpoint: {[str(r) for r in rules]}"
        )
    if verdict.terminating:
        assert oracle is True, (
            f"decider says terminating but the critical chase blew its "
            f"budget: {[str(r) for r in rules]}"
        )


class TestDeciderVsOracle:
    @pytest.mark.parametrize("idx", range(len(SL_SETS)))
    def test_simple_linear_oblivious(self, idx):
        check_agreement(SL_SETS[idx], ChaseVariant.OBLIVIOUS)

    @pytest.mark.parametrize("idx", range(len(SL_SETS)))
    def test_simple_linear_semi_oblivious(self, idx):
        check_agreement(SL_SETS[idx], ChaseVariant.SEMI_OBLIVIOUS)

    @pytest.mark.parametrize("idx", range(len(L_SETS)))
    def test_linear_oblivious(self, idx):
        check_agreement(L_SETS[idx], ChaseVariant.OBLIVIOUS)

    @pytest.mark.parametrize("idx", range(len(L_SETS)))
    def test_linear_semi_oblivious(self, idx):
        check_agreement(L_SETS[idx], ChaseVariant.SEMI_OBLIVIOUS)

    @pytest.mark.parametrize("idx", range(len(G_SETS)))
    def test_guarded_oblivious(self, idx):
        check_agreement(G_SETS[idx], ChaseVariant.OBLIVIOUS)

    @pytest.mark.parametrize("idx", range(len(G_SETS)))
    def test_guarded_semi_oblivious(self, idx):
        check_agreement(G_SETS[idx], ChaseVariant.SEMI_OBLIVIOUS)

    @pytest.mark.parametrize("idx", range(len(CONST_SETS)))
    def test_constant_bearing_oblivious(self, idx):
        check_agreement(CONST_SETS[idx], ChaseVariant.OBLIVIOUS)

    @pytest.mark.parametrize("idx", range(len(CONST_SETS)))
    def test_constant_bearing_semi_oblivious(self, idx):
        check_agreement(CONST_SETS[idx], ChaseVariant.SEMI_OBLIVIOUS)


class TestPaperContainments:
    """§2/§3 class containments, checked on all sampled programs."""

    def test_ct_o_subset_ct_so(self):
        # CT_o ⊆ CT_so: the so-chase fires a subset of the o-chase's
        # trigger classes.
        for rules in SL_SETS + L_SETS + G_SETS:
            o = decide_termination(rules, variant=ChaseVariant.OBLIVIOUS)
            so = decide_termination(
                rules, variant=ChaseVariant.SEMI_OBLIVIOUS
            )
            if o.terminating:
                assert so.terminating, [str(r) for r in rules]

    def test_ra_subset_wa(self):
        for rules in SL_SETS + L_SETS + G_SETS:
            if is_richly_acyclic(rules):
                assert is_weakly_acyclic(rules)

    def test_wa_sound_for_so_termination(self):
        # WA is a sufficient condition for CT_so on arbitrary TGDs; on
        # our guarded samples the semantic decider must accept whenever
        # WA does.
        for rules in SL_SETS + L_SETS + G_SETS:
            if is_weakly_acyclic(rules):
                verdict = decide_termination(
                    rules, variant=ChaseVariant.SEMI_OBLIVIOUS
                )
                assert verdict.terminating, [str(r) for r in rules]

    def test_ra_sound_for_o_termination(self):
        for rules in SL_SETS + L_SETS + G_SETS:
            if is_richly_acyclic(rules):
                verdict = decide_termination(
                    rules, variant=ChaseVariant.OBLIVIOUS
                )
                assert verdict.terminating, [str(r) for r in rules]

    def test_thm1_sl_exactness_on_samples(self):
        # On SL the semantic (guarded) decider must coincide exactly
        # with rich/weak acyclicity — Theorem 1 as an identity of
        # procedures.
        for rules in SL_SETS:
            g_o = decide_termination(
                rules, variant=ChaseVariant.OBLIVIOUS, method="guarded"
            ).terminating
            g_so = decide_termination(
                rules, variant=ChaseVariant.SEMI_OBLIVIOUS, method="guarded"
            ).terminating
            assert g_o == is_richly_acyclic(rules), [str(r) for r in rules]
            assert g_so == is_weakly_acyclic(rules), [str(r) for r in rules]


class TestMutualSustenanceOracle:
    """Companion to test_pumping: each rule alone terminates, together
    they diverge — confirmed by the concrete chase."""

    RULES_TEXT = """
    p(X, Y, D) -> exists Z, D2 . p(Z, Y, D2)
    p(X, Y, D) -> exists W . p(X, X, W)
    """

    def test_each_rule_alone_terminates(self):
        from repro.parser import parse_program

        rules = parse_program(self.RULES_TEXT)
        for rule in rules:
            assert critical_chase_terminates(
                [rule], ChaseVariant.SEMI_OBLIVIOUS, max_steps=2000
            ) is True

    def test_together_the_oracle_never_stops(self):
        from repro.parser import parse_program

        rules = parse_program(self.RULES_TEXT)
        assert critical_chase_terminates(
            rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps=2000
        ) is None
        verdict = decide_termination(
            rules, variant=ChaseVariant.SEMI_OBLIVIOUS
        )
        assert not verdict.terminating
