"""Further property-based tests: Skolem/so correspondence, monotonicity
of termination under rule removal, and zoo hierarchy invariants."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.chase import ChaseVariant, critical_instance, run_chase
from repro.graphs import is_jointly_acyclic, is_weakly_acyclic
from repro.termination import decide_termination, is_mfa, skolem_chase
from repro.workloads import random_linear, random_simple_linear

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def sl_sets(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    count = draw(st.integers(min_value=1, max_value=4))
    return random_simple_linear(count, seed=seed)


@st.composite
def linear_sets(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    count = draw(st.integers(min_value=1, max_value=3))
    return random_linear(count, repeat_prob=0.5, seed=seed)


class TestSkolemSemiObliviousCorrespondence:
    """The Skolem chase is the semi-oblivious chase with memoised
    witnesses: on terminating inputs both derive the same number of
    facts (terms differ — structured Skolem terms vs flat nulls)."""

    @SETTINGS
    @given(rules=sl_sets())
    def test_fact_counts_agree_on_termination(self, rules):
        database = critical_instance(rules)
        so = run_chase(
            database, rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps=400
        )
        instance, cyclic, fixpoint = skolem_chase(
            database, rules, max_steps=2000
        )
        if so.terminated and fixpoint:
            assert len(instance) == len(so.instance)

    @SETTINGS
    @given(rules=sl_sets())
    def test_cyclic_skolem_term_implies_chase_divergence(self, rules):
        database = critical_instance(rules)
        _, cyclic, _ = skolem_chase(database, rules, max_steps=2000)
        if cyclic is not None:
            # MFA refuted; the exact decider may still terminate, but
            # in SL the Skolem cycle means WA fails too.
            assert not is_mfa(rules)


class TestMonotonicity:
    @SETTINGS
    @given(rules=sl_sets(), drop=st.integers(min_value=0, max_value=3))
    def test_termination_antitone_under_rule_addition(self, rules, drop):
        """Removing rules can only help termination: if Σ terminates,
        every subset of Σ terminates."""
        if decide_termination(
            rules, variant=ChaseVariant.SEMI_OBLIVIOUS
        ).terminating:
            subset = [r for i, r in enumerate(rules) if i != drop % len(rules)]
            if subset:
                assert decide_termination(
                    subset, variant=ChaseVariant.SEMI_OBLIVIOUS
                ).terminating

    @SETTINGS
    @given(rules=linear_sets())
    def test_zoo_hierarchy_on_linear(self, rules):
        wa = is_weakly_acyclic(rules)
        ja = is_jointly_acyclic(rules)
        mfa = is_mfa(rules)
        exact = decide_termination(
            rules, variant=ChaseVariant.SEMI_OBLIVIOUS
        ).terminating
        if wa:
            assert ja
        if ja:
            assert mfa
        if mfa:
            assert exact


class TestCriticalInstanceSemantics:
    @SETTINGS
    @given(rules=sl_sets())
    def test_critical_termination_transfers_to_samples(self, rules):
        """Marnette's direction observed concretely: if the critical
        chase terminates, the chase on sampled databases does too."""
        from repro.workloads import random_database

        critical_result = run_chase(
            critical_instance(rules), rules,
            ChaseVariant.SEMI_OBLIVIOUS, max_steps=400,
        )
        if not critical_result.terminated:
            return
        for seed in (0, 1):
            db = random_database(rules, seed=seed)
            result = run_chase(
                db, rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps=2000
            )
            assert result.terminated
