"""Tests for the looping operator (the paper's lower-bound technique)."""

import pytest

from repro.classes import is_guarded
from repro.chase import ChaseVariant, run_chase
from repro.errors import UnsupportedClassError
from repro.entailment import (
    entails_atom,
    looping_operator,
    tag_predicate,
    tag_rule,
)
from repro.model import Predicate
from repro.parser import parse_atom, parse_database, parse_program
from repro.termination import decide_termination


BASE = parse_program(
    """
    admin(X) -> canWrite(X)
    canWrite(X), audited(X) -> alert()
    """
)
GOAL = Predicate("alert", 0)
DB_POSITIVE = parse_database("admin(root)\naudited(root)")
DB_NEGATIVE = parse_database("admin(root)\naudited(visitor)")


class TestTagging:
    def test_tag_predicate_adds_position(self):
        tagged = tag_predicate(Predicate("p", 2))
        assert tagged.arity == 3
        assert tagged.name.endswith("__t")

    def test_tag_rule_shares_one_tag_variable(self):
        rule = parse_program("p(X), q(X) -> exists Z . r(X, Z)")[0]
        tagged = tag_rule(rule)
        tags = {atom.terms[0] for atom in tagged.body + tagged.head}
        assert len(tags) == 1

    def test_tagging_preserves_guardedness(self):
        rule = parse_program("g(X, Y), q(Y) -> exists Z . r(Y, Z)")[0]
        assert tag_rule(rule).is_guarded()

    def test_tagging_preserves_linearity_and_frontier_growth(self):
        rule = parse_program("p(X, Y) -> exists Z . q(Y, Z)")[0]
        tagged = tag_rule(rule)
        assert tagged.is_linear()
        assert len(tagged.frontier) == len(rule.frontier) + 1

    def test_tag_variable_collision_avoided(self):
        rule = parse_program("p(LoopTag) -> q(LoopTag)")[0]
        tagged = tag_rule(rule)
        assert len(tagged.body[0].terms) == 2
        assert len(set(tagged.body[0].terms)) == 2


class TestOperatorConstruction:
    def test_output_is_guarded(self):
        program = looping_operator(BASE, DB_POSITIVE, GOAL,
                                   check_termination=False)
        assert is_guarded(program.rules)

    def test_rule_count(self):
        program = looping_operator(BASE, DB_POSITIVE, GOAL,
                                   check_termination=False)
        # start + layout + 2 facts + 2 tagged rules + restart
        assert len(program) == 7

    def test_goal_must_be_propositional(self):
        with pytest.raises(UnsupportedClassError):
            looping_operator(BASE, DB_POSITIVE, Predicate("alert", 1),
                             check_termination=False)

    def test_unguarded_base_rejected(self):
        bad = parse_program("p(X, Y), q(Y, Z) -> alert()")
        with pytest.raises(UnsupportedClassError):
            looping_operator(bad, DB_POSITIVE, GOAL,
                             check_termination=False)

    def test_diverging_base_rejected_by_precondition(self):
        diverging = parse_program(
            "p(X, Y) -> exists Z . p(Y, Z)\np(X, Y) -> alert()"
        )
        with pytest.raises(UnsupportedClassError, match="terminating"):
            looping_operator(diverging, parse_database("p(a, b)"), GOAL)

    def test_empty_database_supported(self):
        program = looping_operator(BASE, parse_database(""), GOAL,
                                   check_termination=False)
        assert program.dom_predicate.arity == 1  # just the tag


class TestReduction:
    """The headline property:  D ∧ Σ ⊨ p  ⇔  loop(Σ,D,p) ∉ CT."""

    def test_entailed_goal_gives_divergence(self):
        assert entails_atom(BASE, DB_POSITIVE, parse_atom("alert()"))
        program = looping_operator(BASE, DB_POSITIVE, GOAL)
        for variant in (ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS):
            verdict = decide_termination(program.rules, variant=variant)
            assert not verdict.terminating, variant

    def test_non_entailed_goal_gives_termination(self):
        assert not entails_atom(BASE, DB_NEGATIVE, parse_atom("alert()"))
        program = looping_operator(BASE, DB_NEGATIVE, GOAL)
        for variant in (ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS):
            verdict = decide_termination(program.rules, variant=variant)
            assert verdict.terminating, variant

    def test_concrete_chase_on_minimal_standard_database(self):
        # Positive case: the chase of the minimal standard DB diverges.
        program = looping_operator(BASE, DB_POSITIVE, GOAL)
        db = parse_database("zero(0)\none(1)")
        result = run_chase(db, program.rules,
                           ChaseVariant.SEMI_OBLIVIOUS, max_steps=300)
        assert not result.terminated
        # Negative case: it terminates.
        program2 = looping_operator(BASE, DB_NEGATIVE, GOAL)
        result2 = run_chase(db, program2.rules,
                            ChaseVariant.SEMI_OBLIVIOUS, max_steps=300)
        assert result2.terminated

    def test_junk_goal_atom_cannot_refuel_the_loop(self):
        """A database that plants the tagged goal and a dom tuple gets
        one spurious restart, after which the genuine (non-entailed)
        simulation stops — Σ' stays in CT."""
        program = looping_operator(BASE, DB_NEGATIVE, GOAL)
        k = program.dom_predicate.arity - 1
        junk_lines = ["zero(0)", "one(1)", "alert__t(evil)"]
        junk_lines.append(
            f"{program.dom_predicate.name}({', '.join(['evil'] + ['x'] * k)})"
        )
        db = parse_database("\n".join(junk_lines))
        result = run_chase(db, program.rules,
                           ChaseVariant.SEMI_OBLIVIOUS, max_steps=500)
        assert result.terminated

    def test_reduction_with_linear_base(self):
        base = parse_program("a(X) -> b(X)\nb(X) -> goal()")
        goal = Predicate("goal", 0)
        db_yes = parse_database("a(c)")
        db_no = parse_database("b2(c)")
        yes = looping_operator(base, db_yes, goal)
        no = looping_operator(base, db_no, goal)
        assert not decide_termination(
            yes.rules, variant="semi_oblivious"
        ).terminating
        assert decide_termination(
            no.rules, variant="semi_oblivious"
        ).terminating
