"""Unit tests for bag types, canonicalization, and pattern matching."""

from repro.model import Constant, Predicate, Variable
from repro.parser import parse_rule
from repro.termination.abstraction import (
    BagType,
    atom_to_pattern,
    pattern_homomorphisms,
    pattern_to_str,
)


P2 = Predicate("p", 2)
Q1 = Predicate("q", 1)


class TestBagType:
    def test_equality_of_identical(self):
        a = BagType(1, 1, [(P2, (0, 1))])
        b = BagType(1, 1, [(P2, (0, 1))])
        assert a == b
        assert hash(a) == hash(b)

    def test_isomorphic_null_relabelings_collapse(self):
        # nulls are classes 1 and 2 (one constant class 0)
        a = BagType(1, 2, [(P2, (1, 2)), (Q1, (1,))])
        b = BagType(1, 2, [(P2, (2, 1)), (Q1, (2,))])
        assert a == b

    def test_non_isomorphic_distinct(self):
        a = BagType(1, 2, [(P2, (1, 2)), (Q1, (1,))])
        b = BagType(1, 2, [(P2, (1, 2)), (Q1, (2,))])
        assert a != b

    def test_constant_classes_not_permuted(self):
        a = BagType(2, 0, [(P2, (0, 1))])
        b = BagType(2, 0, [(P2, (1, 0))])
        assert a != b

    def test_canonical_map_translates_raw_classes(self):
        bag = BagType(1, 2, [(P2, (2, 1))])
        # canonical_map[i] is the canonical id of raw null class 1+i.
        relabel = {1 + i: c for i, c in enumerate(bag.canonical_map)}
        translated = frozenset(
            (pred, tuple(relabel.get(c, c) for c in classes))
            for pred, classes in [(P2, (2, 1))]
        )
        assert translated == bag.cloud

    def test_num_classes_and_null_classes(self):
        bag = BagType(2, 3, [])
        assert bag.num_classes == 5
        assert bag.null_classes() == (2, 3, 4)

    def test_describe_renders_constants_and_nulls(self):
        bag = BagType(1, 1, [(P2, (0, 1))])
        text = bag.describe([Constant("*")])
        assert "p(*, n1)" in text

    def test_large_null_count_heuristic_is_deterministic(self):
        cloud = [(P2, (1 + i, 2 + i)) for i in range(8)]
        a = BagType(1, 9, cloud)
        b = BagType(1, 9, cloud)
        assert a == b


class TestAtomToPattern:
    def test_variables_and_constants(self):
        rule = parse_rule("p(X, a) -> q(X)")
        const_class = {Constant("a"): 0}
        pattern = atom_to_pattern(
            rule.body[0], {Variable("X"): 3}, const_class
        )
        assert pattern == (P2, (3, 0))


class TestPatternHomomorphisms:
    def test_basic_match(self):
        rule = parse_rule("p(X, Y) -> q(X)")
        cloud = frozenset([(P2, (0, 1))])
        homs = list(pattern_homomorphisms(rule.body, cloud, {}))
        assert homs == [{Variable("X"): 0, Variable("Y"): 1}]

    def test_repeated_variable_requires_equal_classes(self):
        rule = parse_rule("p(X, X) -> q(X)")
        cloud = frozenset([(P2, (0, 1)), (P2, (1, 1))])
        homs = list(pattern_homomorphisms(rule.body, cloud, {}))
        assert homs == [{Variable("X"): 1}]

    def test_rule_constant_pins_class(self):
        rule = parse_rule("p(X, a) -> q(X)")
        cloud = frozenset([(P2, (1, 0)), (P2, (1, 2))])
        homs = list(
            pattern_homomorphisms(rule.body, cloud, {Constant("a"): 0})
        )
        assert homs == [{Variable("X"): 1}]

    def test_multi_atom_join(self):
        rule = parse_rule("p(X, Y), q(Y) -> r(X)")
        cloud = frozenset([(P2, (0, 1)), (P2, (0, 2)), (Q1, (1,))])
        homs = list(pattern_homomorphisms(rule.body, cloud, {}))
        assert homs == [{Variable("X"): 0, Variable("Y"): 1}]

    def test_no_match(self):
        rule = parse_rule("q(X) -> r(X)")
        cloud = frozenset([(P2, (0, 0))])
        assert list(pattern_homomorphisms(rule.body, cloud, {})) == []


class TestPatternToStr:
    def test_rendering(self):
        text = pattern_to_str((P2, (0, 1)), 1, [Constant("*")])
        assert text == "p(*, n1)"
