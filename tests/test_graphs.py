"""Unit tests for dependency graphs and weak/rich acyclicity."""

from repro.graphs import (
    Digraph,
    EdgeKind,
    dependency_graph,
    extended_dependency_graph,
    is_richly_acyclic,
    is_weakly_acyclic,
    rich_acyclicity_witness,
    weak_acyclicity_witness,
)
from repro.parser import parse_program


class TestDigraph:
    def test_scc_singletons(self):
        g = Digraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        comps = g.strongly_connected_components()
        assert all(len(c) == 1 for c in comps)
        assert len(comps) == 3

    def test_scc_cycle(self):
        g = Digraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(3, 1)
        comps = g.strongly_connected_components()
        assert {frozenset(c) for c in comps} == {frozenset({1, 2, 3})}

    def test_scc_mixed(self):
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        g.add_edge("b", "c")
        comps = {frozenset(c) for c in g.strongly_connected_components()}
        assert frozenset({"a", "b"}) in comps
        assert frozenset({"c"}) in comps

    def test_shortest_path(self):
        g = Digraph()
        g.add_edge(1, 2, "e12")
        g.add_edge(2, 3, "e23")
        g.add_edge(1, 3, "e13")
        path = g.shortest_path(1, 3)
        assert [e.label for e in path] == ["e13"]

    def test_shortest_path_respects_allowed(self):
        g = Digraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        path = g.shortest_path(1, 3, allowed={1, 2, 3})
        assert path is not None
        assert g.shortest_path(1, 3, allowed={1, 2}) is None

    def test_shortest_path_missing(self):
        g = Digraph()
        g.add_edge(1, 2)
        assert g.shortest_path(2, 1) is None

    def test_reachable_from(self):
        g = Digraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_node(4)
        assert g.reachable_from([1]) == {1, 2, 3}
        assert g.reachable_from([4]) == {4}

    def test_deep_graph_scc_no_recursion_error(self):
        g = Digraph()
        for i in range(5000):
            g.add_edge(i, i + 1)
        assert len(g.strongly_connected_components()) == 5001


class TestDependencyGraph:
    def test_regular_and_special_edges(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        graph = dependency_graph(rules)
        kinds = sorted(e.label.kind for e in graph.edges())
        assert kinds == [EdgeKind.REGULAR, EdgeKind.SPECIAL]

    def test_non_frontier_variable_no_special_edge_in_plain_graph(self):
        # Y is universally quantified but not in the head: the plain
        # dependency graph must NOT add a special edge from p[1].
        rules = parse_program("p(X, Y) -> exists Z . q(X, Z)")
        graph = dependency_graph(rules)
        sources = {
            str(e.source) for e in graph.edges()
            if e.label.kind == EdgeKind.SPECIAL
        }
        assert sources == {"p[0]"}

    def test_extended_graph_adds_non_frontier_special_edges(self):
        rules = parse_program("p(X, Y) -> exists Z . q(X, Z)")
        graph = extended_dependency_graph(rules)
        sources = {
            str(e.source) for e in graph.edges()
            if e.label.kind == EdgeKind.SPECIAL
        }
        assert sources == {"p[0]", "p[1]"}

    def test_edge_labels_carry_rules(self):
        rules = parse_program("p(X) -> exists Z . q(X, Z)")
        graph = dependency_graph(rules)
        assert all(e.label.rule == rules[0] for e in graph.edges())


class TestWeakAcyclicity:
    def test_example_2_not_weakly_acyclic(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        assert not is_weakly_acyclic(rules)

    def test_chain_weakly_acyclic(self):
        rules = parse_program(
            "p(X) -> exists Z . q(X, Z)\nq(X, Y) -> r(Y)"
        )
        assert is_weakly_acyclic(rules)

    def test_full_rules_always_weakly_acyclic(self):
        rules = parse_program("p(X, Y) -> p(Y, X)\np(X, Y) -> q(X)")
        assert is_weakly_acyclic(rules)
        assert is_richly_acyclic(rules)

    def test_regular_cycle_alone_is_harmless(self):
        rules = parse_program("p(X) -> q(X)\nq(X) -> p(X)")
        assert is_weakly_acyclic(rules)

    def test_witness_contains_special_edge(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        witness = weak_acyclicity_witness(rules)
        assert witness is not None
        assert witness.special.label.kind == EdgeKind.SPECIAL
        assert witness.special in witness.edges

    def test_witness_cycle_closes(self):
        rules = parse_program(
            "p(X) -> exists Z . q(X, Z)\nq(X, Y) -> exists W . p(W), r(X)"
        )
        witness = weak_acyclicity_witness(rules)
        assert witness is not None
        assert witness.edges[-1].target == witness.edges[0].source

    def test_witness_rules_accessible(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        witness = weak_acyclicity_witness(rules)
        assert rules[0] in witness.rules()


class TestRichAcyclicity:
    def test_ra_implies_wa(self):
        # RA ⊆ WA (the extended graph only adds edges).
        programs = [
            "p(X) -> exists Z . q(X, Z)\nq(X, Y) -> r(Y)",
            "p(X, Y) -> exists Z . p(Y, Z)",
            "p(X, Y) -> exists Z . q(X, Z)\nq(X, Y) -> p(X, Y)",
            "a(X) -> exists Y . b(X, Y)\nb(X, Y) -> a(Y)",
        ]
        for text in programs:
            rules = parse_program(text)
            if is_richly_acyclic(rules):
                assert is_weakly_acyclic(rules)

    def test_separation_wa_but_not_ra(self):
        # p(X, Y) -> exists Z . p(X, Z): the frontier X never reaches
        # the existential position through regular edges (WA holds),
        # but the non-frontier Y at p[1] feeds Z at p[1] in the
        # extended graph (RA fails) — the o/so separation of Theorem 1.
        rules = parse_program("p(X, Y) -> exists Z . p(X, Z)")
        assert is_weakly_acyclic(rules)
        assert not is_richly_acyclic(rules)
        witness = rich_acyclicity_witness(rules)
        assert witness is not None

    def test_dl_lite_style_chain_richly_acyclic(self):
        rules = parse_program(
            "c1(X) -> exists Y . role1(X, Y)\nrole1(X, Y) -> c2(Y)"
        )
        assert is_richly_acyclic(rules)

    def test_example_1_not_richly_acyclic(self):
        rules = parse_program(
            "person(X) -> exists Y . hasFather(X, Y), person(Y)"
        )
        assert not is_richly_acyclic(rules)
        assert not is_weakly_acyclic(rules)
