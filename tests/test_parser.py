"""Unit tests for the rule/database text format."""

import pytest

from repro.model import Constant, Predicate, Variable
from repro.parser import (
    ParseError,
    atom_to_text,
    instance_to_text,
    parse_atom,
    parse_database,
    parse_fact,
    parse_program,
    parse_rule,
    program_to_text,
    rule_to_text,
)


class TestParseAtom:
    def test_variables_uppercase(self):
        a = parse_atom("p(X, Y1)")
        assert a.variables() == {Variable("X"), Variable("Y1")}

    def test_constants_lowercase_and_numbers(self):
        a = parse_atom("p(bob, 42)")
        assert a.constants() == {Constant("bob"), Constant("42")}

    def test_quoted_constants(self):
        a = parse_atom("p('Hello World')")
        assert a.terms[0] == Constant("Hello World")

    def test_underscore_prefix_is_variable(self):
        assert parse_atom("p(_x)").variables() == {Variable("_x")}

    def test_zero_ary(self):
        a = parse_atom("goal()")
        assert a.predicate == Predicate("goal", 0)

    def test_trailing_dot_tolerated(self):
        assert parse_atom("p(a).") == parse_atom("p(a)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("p(a) q(b)")

    def test_missing_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("p(a")

    def test_bad_character_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("p(a; b)")


class TestParseFact:
    def test_ground_ok(self):
        assert parse_fact("p(a, b)").is_ground()

    def test_variables_rejected(self):
        with pytest.raises(ParseError):
            parse_fact("p(X)")


class TestParseRule:
    def test_basic(self):
        rule = parse_rule("p(X, Y) -> q(Y)")
        assert len(rule.body) == 1
        assert len(rule.head) == 1
        assert rule.frontier == {Variable("Y")}

    def test_multi_atom_body_and_head(self):
        rule = parse_rule("p(X), r(X, Y) -> q(X), s(Y)")
        assert len(rule.body) == 2
        assert len(rule.head) == 2

    def test_exists_prefix(self):
        rule = parse_rule("p(X) -> exists Y . q(X, Y)")
        assert rule.existential_variables == {Variable("Y")}

    def test_exists_multiple(self):
        rule = parse_rule("p(X) -> exists Y, Z . q(X, Y), r(Z)")
        assert rule.existential_variables == {Variable("Y"), Variable("Z")}

    def test_implicit_existentials_without_prefix(self):
        rule = parse_rule("p(X) -> q(X, Y)")
        assert rule.existential_variables == {Variable("Y")}

    def test_wrong_exists_declaration_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) -> exists Y . q(X)")
        with pytest.raises(ParseError):
            parse_rule("p(X) -> exists X . q(X, Y)")

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) q(X)")

    def test_constants_in_rules(self):
        rule = parse_rule("p(X, admin) -> q(X)")
        assert Constant("admin") in rule.constants()

    def test_label_attached(self):
        assert parse_rule("p(X) -> q(X)", label="r7").label == "r7"

    def test_exists_as_predicate_name_not_confused(self):
        # 'exists' only has meaning right after '->'.
        rule = parse_rule("exists(X) -> q(X)")
        assert rule.body[0].predicate.name == "exists"


class TestParseProgram:
    def test_multiple_lines_with_comments(self):
        rules = parse_program(
            """
            % a comment
            p(X) -> q(X)

            q(X) -> exists Y . r(X, Y)  % trailing comment
            """
        )
        assert len(rules) == 2
        assert rules[0].label == "r1"
        assert rules[1].label == "r2"

    def test_empty_program(self):
        assert parse_program("  \n % nothing \n") == []

    def test_error_reports_line(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_program("p(X) -> q(X)\np(X) -> ")


class TestParseDatabase:
    def test_facts(self):
        db = parse_database("p(a)\nq(a, b)")
        assert len(db) == 2

    def test_rejects_rules(self):
        with pytest.raises(ParseError):
            parse_database("p(X) -> q(X)")

    def test_duplicates_collapse(self):
        db = parse_database("p(a)\np(a)")
        assert len(db) == 1


class TestRoundTrip:
    RULES = [
        "p(X, Y) -> q(Y)",
        "p(X) -> exists Y . q(X, Y)",
        "p(X), r(X, Y) -> exists Z . q(Y, Z), s(Z)",
        "p(X, X) -> exists Z . p(X, Z)",
        "p(X, bob) -> q(bob)",
        "goal() -> exists T . run(T)",
    ]

    @pytest.mark.parametrize("text", RULES)
    def test_rule_round_trip(self, text):
        rule = parse_rule(text)
        assert parse_rule(rule_to_text(rule)) == rule

    def test_program_round_trip(self):
        rules = parse_program("\n".join(self.RULES))
        again = parse_program(program_to_text(rules))
        assert again == rules

    def test_quoted_constant_round_trip(self):
        rule = parse_rule("p(X, 'Strange Name') -> q(X)")
        assert parse_rule(rule_to_text(rule)) == rule

    def test_instance_to_text_sorted(self):
        db = parse_database("q(b)\np(a)")
        assert instance_to_text(db).splitlines() == ["p(a)", "q(b)"]

    def test_atom_to_text_quotes_uppercase_constants(self):
        atom = parse_atom("p('Bob')")
        assert atom_to_text(atom) == "p('Bob')"
