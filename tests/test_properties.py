"""Property-based tests (hypothesis) on the core invariants."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.chase import ChaseVariant, run_chase
from repro.cq import is_model_of
from repro.graphs import is_richly_acyclic, is_weakly_acyclic
from repro.model import (
    Atom,
    Constant,
    Database,
    Predicate,
    Variable,
    instance_homomorphism,
)
from repro.parser import parse_rule, rule_to_text
from repro.termination import decide_termination
from repro.termination.abstraction import BagType
from repro.workloads import random_database, random_simple_linear

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# -- strategies ------------------------------------------------------------

names = st.sampled_from(["p", "q", "r", "s"])
variables = st.sampled_from([Variable(n) for n in ("X", "Y", "Z", "W")])
constants = st.sampled_from([Constant(n) for n in ("a", "b", "c")])


@st.composite
def ground_atoms(draw):
    name = draw(names)
    arity = draw(st.integers(min_value=1, max_value=3))
    terms = draw(
        st.lists(constants, min_size=arity, max_size=arity)
    )
    return Atom(Predicate(name + str(arity), arity), terms)


@st.composite
def rule_texts(draw):
    """Random simple-linear rule text via the seeded generator."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    count = draw(st.integers(min_value=1, max_value=4))
    return random_simple_linear(count, seed=seed)


# -- chase invariants -------------------------------------------------------


class TestChaseInvariants:
    @SETTINGS
    @given(rules=rule_texts(), seed=st.integers(0, 100))
    def test_terminated_chase_is_model(self, rules, seed):
        database = random_database(rules, seed=seed)
        result = run_chase(
            database, rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps=200
        )
        if result.terminated:
            assert is_model_of(result.instance, database, rules)

    @SETTINGS
    @given(rules=rule_texts(), seed=st.integers(0, 100))
    def test_oblivious_result_contains_semi_oblivious(self, rules, seed):
        database = random_database(rules, seed=seed)
        o = run_chase(database, rules, ChaseVariant.OBLIVIOUS, max_steps=200)
        so = run_chase(
            database, rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps=200
        )
        if o.terminated and so.terminated:
            # Same termination status and the so result embeds into the
            # o result (both are universal models).
            assert instance_homomorphism(so.instance, o.instance) is not None

    @SETTINGS
    @given(rules=rule_texts(), seed=st.integers(0, 100))
    def test_restricted_result_embeds_into_semi_oblivious(self, rules, seed):
        database = random_database(rules, seed=seed)
        so = run_chase(
            database, rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps=300
        )
        restricted = run_chase(
            database, rules, ChaseVariant.RESTRICTED, max_steps=300
        )
        if so.terminated and restricted.terminated:
            assert len(restricted.instance) <= len(so.instance)
            assert instance_homomorphism(
                restricted.instance, so.instance
            ) is not None

    @SETTINGS
    @given(rules=rule_texts(), seed=st.integers(0, 100))
    def test_chase_monotone_in_database(self, rules, seed):
        database = random_database(rules, seed=seed)
        result = run_chase(
            database, rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps=200
        )
        for fact in database:
            assert fact in result.instance


class TestTerminationInvariants:
    @SETTINGS
    @given(rules=rule_texts())
    def test_ct_o_subset_ct_so(self, rules):
        o = decide_termination(rules, variant=ChaseVariant.OBLIVIOUS)
        so = decide_termination(rules, variant=ChaseVariant.SEMI_OBLIVIOUS)
        if o.terminating:
            assert so.terminating

    @SETTINGS
    @given(rules=rule_texts())
    def test_thm1_identity_on_sl(self, rules):
        o = decide_termination(rules, variant=ChaseVariant.OBLIVIOUS)
        so = decide_termination(rules, variant=ChaseVariant.SEMI_OBLIVIOUS)
        assert o.terminating == is_richly_acyclic(rules)
        assert so.terminating == is_weakly_acyclic(rules)

    @SETTINGS
    @given(rules=rule_texts())
    def test_verdict_stable_across_calls(self, rules):
        first = decide_termination(rules, variant=ChaseVariant.OBLIVIOUS)
        second = decide_termination(rules, variant=ChaseVariant.OBLIVIOUS)
        assert first.terminating == second.terminating


class TestParserRoundTrip:
    @SETTINGS
    @given(rules=rule_texts())
    def test_rule_text_round_trips(self, rules):
        for rule in rules:
            assert parse_rule(rule_to_text(rule)) == rule


class TestBagTypeCanonicalization:
    @SETTINGS
    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=6,
        ),
        permutation_seed=st.integers(0, 1000),
    )
    def test_invariant_under_null_permutation(self, data, permutation_seed):
        """Relabelling null classes must not change the canonical type."""
        import random as random_module

        predicate = Predicate("p", 2)
        num_constants = 1
        cloud = [
            (predicate, (num_constants + a, num_constants + b))
            for a, b in data
        ]
        null_ids = list(range(num_constants, num_constants + 4))
        shuffled = list(null_ids)
        random_module.Random(permutation_seed).shuffle(shuffled)
        relabel = dict(zip(null_ids, shuffled))
        permuted = [
            (pred, tuple(relabel[c] for c in classes))
            for pred, classes in cloud
        ]
        assert BagType(num_constants, 4, cloud) == BagType(
            num_constants, 4, permuted
        )


class TestInstanceHomomorphismProperties:
    @SETTINGS
    @given(facts=st.lists(ground_atoms(), min_size=0, max_size=8))
    def test_reflexive(self, facts):
        instance = Database(facts)
        assert instance_homomorphism(instance, instance) is not None

    @SETTINGS
    @given(
        facts=st.lists(ground_atoms(), min_size=1, max_size=8),
        extra=ground_atoms(),
    )
    def test_monotone_target(self, facts, extra):
        source = Database(facts)
        target = Database(facts + [extra])
        assert instance_homomorphism(source, target) is not None
