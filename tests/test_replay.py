"""Tests for empirical witness confirmation.

Every non-termination witness the deciders emit must be confirmable by
the concrete chase — the strongest end-to-end guarantee the library
offers for its negative verdicts.
"""

import pytest

from repro.chase import ChaseVariant
from repro.parser import parse_program
from repro.termination import (
    PumpingWitness,
    confirm_witness,
    decide_guarded,
    decide_termination,
)

DIVERGING = [
    "p(X, Y) -> exists Z . p(Y, Z)",
    "person(X) -> exists Y . hasFather(X, Y), person(Y)",
    "g(X, Y), q(Y) -> exists Z . g(Y, Z), q(Z)",
    "a(X) -> exists Y . e(X, Y)\ne(X, Y) -> a(Y)",
    "a(X) -> exists Y . b(X, Y)\nb(X, Y) -> exists Z . c(Y, Z)\n"
    "c(X, Y) -> a(X)",
]


class TestConfirmWitness:
    @pytest.mark.parametrize("text", DIVERGING)
    @pytest.mark.parametrize(
        "variant", [ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS]
    )
    def test_all_emitted_witnesses_confirm(self, text, variant):
        rules = parse_program(text)
        verdict = decide_guarded(rules, variant)
        assert not verdict.terminating
        assert isinstance(verdict.witness, PumpingWitness)
        replay = confirm_witness(rules, verdict.witness, rounds=3)
        assert replay.confirmed, replay
        assert all(count >= 3 for count in replay.firings.values())

    def test_mutually_sustaining_witness_confirms(self):
        rules = parse_program(
            """
            p(X, Y, D) -> exists Z, D2 . p(Z, Y, D2)
            p(X, Y, D) -> exists W . p(X, X, W)
            """
        )
        verdict = decide_guarded(rules, ChaseVariant.SEMI_OBLIVIOUS)
        assert not verdict.terminating
        replay = confirm_witness(rules, verdict.witness, rounds=4)
        assert replay.confirmed

    def test_bogus_witness_refuted(self):
        # Hand-build a witness over a terminating program by borrowing
        # a walk from a diverging one: the replay must refuse it.
        diverging = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        verdict = decide_guarded(diverging, ChaseVariant.SEMI_OBLIVIOUS)
        terminating = parse_program("p(X, X) -> exists Z . p(X, Z)")
        replay = confirm_witness(terminating, verdict.witness, rounds=3)
        assert not replay.confirmed
        assert replay.steps_used < 50

    def test_result_repr_and_bool(self):
        rules = parse_program("p(X, Y) -> exists Z . p(Y, Z)")
        verdict = decide_termination(rules, variant="semi_oblivious",
                                     method="guarded")
        replay = confirm_witness(rules, verdict.witness)
        assert bool(replay)
        assert "confirmed" in repr(replay)
