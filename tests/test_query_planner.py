"""The cost-based query subsystem ≡ the object-level oracle.

``repro.query`` plans conjunctions from columnar statistics and
evaluates them entirely in id space; the retained object-level path
(:func:`repro.model.naive_homomorphisms` + explicit ``Term``-tuple
projection) is the oracle.  Planner-ordered answers must be
*set*-identical to the oracle's — ordering policies may permute
enumeration order, never membership — on chase-grown instances with
labelled nulls and (via the Skolem chase) structured Skolem terms.

Also covered: the plan cache's fact-count-bucket invalidation, the
certain-answer null filtering, the cost/heuristic policy cross-check,
``is_model`` against an object-level reference, and the chase's
``planner="cost"`` opt-in (same trigger sets — equal up to null
renaming).
"""

import random

import pytest

from repro.chase import ChaseVariant, critical_instance, run_chase
from repro.cq import ConjunctiveQuery, is_model
from repro.model import (
    Atom,
    Constant,
    Database,
    Instance,
    Null,
    Predicate,
    TGD,
    Variable,
    has_homomorphism,
    is_homomorphically_equivalent,
    naive_homomorphisms,
)
from repro.query import CompiledQuery, estimate_extension, order_atoms_cost, order_for
from repro.termination import skolem_chase
from repro.workloads import random_database, random_guarded
from tests.conftest import atom

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def oracle_answer_set(answer_variables, atoms, instance):
    """The object-level reference: naive backtracking matches projected
    to Term tuples."""
    return {
        tuple(assignment[v] for v in answer_variables)
        for assignment in naive_homomorphisms(atoms, instance)
    }


def _random_program(rng):
    """A small random program mixing full and existential rules (the
    test_join_equivalence idiom)."""
    preds = [Predicate(f"p{i}", rng.randint(1, 3)) for i in range(3)]
    variables = [Variable(n) for n in ("X", "Y", "Z", "W")]
    consts = [Constant(c) for c in ("a", "b")]
    rules = []
    for _ in range(rng.randint(2, 4)):
        body = []
        for _ in range(rng.randint(1, 2)):
            pred = rng.choice(preds)
            body.append(Atom(pred, [
                rng.choice(consts) if rng.random() < 0.15
                else rng.choice(variables[:3])
                for _ in range(pred.arity)
            ]))
        body_vars = {t for a in body for t in a.variables()}
        head_pred = rng.choice(preds)
        head_pool = sorted(body_vars) + [variables[3]]
        head = [Atom(head_pred, [
            rng.choice(head_pool) for _ in range(head_pred.arity)
        ])]
        rules.append(TGD(body, head))
    return rules, preds, consts


def _random_query(rng, preds):
    """A random CQ over ``preds`` with 1-3 body atoms and a random
    projection of its variables."""
    variables = [Variable(n) for n in ("X", "Y", "Z")]
    body = []
    for _ in range(rng.randint(1, 3)):
        pred = rng.choice(preds)
        body.append(Atom(pred, [
            rng.choice(variables) for _ in range(pred.arity)
        ]))
    body_vars = sorted({t for a in body for t in a.variables()})
    answer = [v for v in body_vars if rng.random() < 0.6]
    return ConjunctiveQuery(answer, body)


def _grown(rng, rules, preds, consts):
    db = Database()
    for _ in range(rng.randint(3, 7)):
        pred = rng.choice(preds)
        db.add(Atom(pred, [rng.choice(consts)
                           for _ in range(pred.arity)]))
    return run_chase(db, rules, ChaseVariant.SEMI_OBLIVIOUS,
                     max_steps=80).instance


class TestAnswerEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_planner_answers_match_oracle_on_chase_grown(self, seed):
        rng = random.Random(seed)
        rules, preds, consts = _random_program(rng)
        grown = _grown(rng, rules, preds, consts)
        assert grown.nulls() or True  # nulls appear for existential rules
        for _ in range(4):
            query = _random_query(rng, preds)
            oracle = oracle_answer_set(
                query.answer_variables, query.atoms, grown
            )
            cost = set(query.answers(grown, policy="cost"))
            heuristic = set(query.answers(grown, policy="heuristic"))
            assert cost == oracle
            assert heuristic == oracle

    @pytest.mark.parametrize("seed", range(6))
    def test_planner_answers_match_oracle_with_skolem_terms(self, seed):
        rng = random.Random(seed + 500)
        rules, preds, consts = _random_program(rng)
        grown, _, _ = skolem_chase(critical_instance(rules), rules,
                                   max_steps=200)
        for _ in range(4):
            query = _random_query(rng, preds)
            oracle = oracle_answer_set(
                query.answer_variables, query.atoms, grown
            )
            assert set(query.answers(grown)) == oracle

    @pytest.mark.parametrize("seed", range(8))
    def test_certain_answers_are_exactly_null_free_oracle(self, seed):
        rng = random.Random(seed + 1000)
        rules, preds, consts = _random_program(rng)
        grown = _grown(rng, rules, preds, consts)
        for _ in range(4):
            query = _random_query(rng, preds)
            oracle = {
                answer
                for answer in oracle_answer_set(
                    query.answer_variables, query.atoms, grown
                )
                if not any(isinstance(t, Null) for t in answer)
            }
            certain = query.certain_answers(grown)
            assert set(certain) == oracle
            # Sorted-for-determinism contract.
            assert certain == sorted(
                certain, key=lambda tup: tuple(str(t) for t in tup)
            )

    def test_answers_deduplicate_in_id_space(self):
        inst = Instance([atom("e", "a", "b"), atom("e", "a", "c"),
                         atom("e", "b", "c")])
        query = ConjunctiveQuery([X], [atom("e", "X", "Y")])
        assert list(query.answers(inst)) == [
            (Constant("a"),), (Constant("b"),)
        ]

    def test_boolean_holds_in_both_policies(self):
        inst = Instance([atom("p", "a")])
        query = ConjunctiveQuery([], [atom("p", "X")])
        assert query.holds_in(inst, policy="cost")
        assert query.holds_in(inst, policy="heuristic")
        missing = ConjunctiveQuery([], [atom("q", "X")])
        assert not missing.holds_in(inst)


class TestPlanCache:
    def test_steady_state_hits_and_bucket_replan(self):
        inst = Instance([atom("e", "c0", "c1")])
        compiled = CompiledQuery([X], [Atom(Predicate("e", 2), [X, Y])])
        list(compiled.answers(inst))
        assert compiled.stats == {
            "plans": 1, "plan_hits": 0, "early_outs": 0
        }
        # Same bucket: pure cache hit.
        list(compiled.answers(inst))
        assert compiled.stats == {
            "plans": 1, "plan_hits": 1, "early_outs": 0
        }
        # Grow past the next power-of-two fact-count bucket: the cached
        # plan expires and the query replans from fresh statistics.
        before = len(inst)
        for i in range(1, 2 * before + 2):
            inst.add(atom("e", f"c{i}", f"c{i + 1}"))
        assert len(inst).bit_length() > before.bit_length()
        list(compiled.answers(inst))
        assert compiled.stats["plans"] == 2

    def test_cache_is_per_instance(self):
        compiled = CompiledQuery([X], [Atom(Predicate("e", 2), [X, Y])])
        a = Instance([atom("e", "a", "b")])
        b = Instance([atom("e", "c", "d")])
        assert list(compiled.answers(a)) == [(Constant("a"),)]
        assert list(compiled.answers(b)) == [(Constant("c"),)]
        assert compiled.stats["plans"] == 2


class TestCostOrdering:
    def test_orders_are_permutations(self):
        inst = Instance([atom("e", "a", "b"), atom("p", "a")])
        atoms = (atom("e", "X", "Y"), atom("p", "X"), atom("q", "Y", "Z"))
        ordered = order_atoms_cost(atoms, inst)
        assert sorted(map(str, ordered)) == sorted(map(str, atoms))

    def test_selective_constant_first(self):
        inst = Instance()
        for i in range(50):
            inst.add(atom("big", f"x{i}", "hub"))
        inst.add(atom("small", "x1", "x2"))
        # big holds 50 rows, small a single one: the one-row relation
        # seeds the join.
        ordered = order_atoms_cost(
            (atom("big", "X", "Y"), atom("small", "X", "Z")), inst
        )
        assert ordered[0].predicate.name == "small"

    def test_posting_list_beats_relation_size(self):
        inst = Instance()
        for i in range(40):
            inst.add(atom("r", f"a{i}", "h0" if i else "h1"))
        for i in range(5):
            inst.add(atom("s", f"b{i}", f"c{i}"))
        # r is bigger, but r(X, 'h1') has a single-row posting list.
        ordered = order_atoms_cost(
            (atom("s", "X", "Y"), atom("r", "Z", "h1")), inst
        )
        assert ordered[0].predicate.name == "r"
        est = estimate_extension(inst, atom("r", "Z", "h1"), frozenset())
        assert est == 1.0

    def test_bound_variable_uses_column_cardinality(self):
        inst = Instance()
        for i in range(30):
            inst.add(atom("t", f"k{i % 3}", f"v{i}"))
        # 3 distinct keys over 30 rows -> ~10 expected matches for a
        # bound first column, far below the 30-row relation scan.
        est = estimate_extension(
            inst, atom("t", "X", "Y"), frozenset({Variable("X")})
        )
        assert est == pytest.approx(10.0)

    def test_joint_selectivity_beats_single_best_index(self):
        # Two relations joined on both columns of an already-bound
        # pair (X, Y).  ``narrow`` (50 rows, key first column, a
        # single value in the second) has a perfect single index: its
        # old min-of-candidate-lists estimate is 50/50 = 1.  ``spread``
        # (100 rows, 25 x 20 distinct) has no comparably good single
        # column — old estimate min(100/25, 100/20) = 4 — but its
        # *joint* selectivity is far better: 100 / (25 * 20) = 0.2
        # expected matches per bound pair.  The old model ordered
        # narrow first (1 < 4); the product model must not.
        inst = Instance()
        for i in range(100):
            inst.add(atom("narrow", f"n{i % 50}", "only"))
            inst.add(atom("spread", f"n{i % 25}", f"m{i % 20}"))
        for i in range(5):
            inst.add(atom("seed", f"n{i}", f"m{i}"))
        bound = frozenset({X, Y})
        narrow = atom("narrow", "X", "Y")
        spread = atom("spread", "X", "Y")
        assert estimate_extension(inst, narrow, bound) == pytest.approx(1.0)
        assert estimate_extension(inst, spread, bound) == pytest.approx(0.2)
        ordered = order_atoms_cost((narrow, spread), inst, bound)
        assert ordered[0].predicate.name == "spread"
        # Full plan: the 5-row seed binds (X, Y), then the joint model
        # runs spread before narrow — the old single-index model chose
        # [seed, narrow, spread] here.
        full = order_atoms_cost(
            (atom("seed", "X", "Y"), narrow, spread), inst
        )
        assert [a.predicate.name for a in full] == [
            "seed", "spread", "narrow"
        ]

    def test_constant_and_bound_var_multiply(self):
        # r(X, c) under bound X: 20 rows, posting('c') covers half of
        # them, and column 0 has 10 distinct values ->
        # 20 * (1/10) * (10/20) = 1, below both single-position
        # candidates (20/10 = 2 and posting 10).
        inst = Instance()
        for i in range(40):
            inst.add(atom("r", f"k{i % 10}", "c" if i < 20 else "d"))
        est = estimate_extension(
            inst, atom("r", "X", "c"), frozenset({X})
        )
        assert est == pytest.approx(1.0)

    def test_repeated_variable_constrains_later_positions(self):
        # e(X, X): the second occurrence is equality-constrained by
        # the first, so it contributes its column's 1/distinct even
        # with nothing bound: 30 * (1/10) = 3.
        inst = Instance()
        for i in range(30):
            inst.add(atom("e", f"a{i % 30}", f"b{i % 10}"))
        est = estimate_extension(inst, atom("e", "X", "X"), frozenset())
        assert est == pytest.approx(3.0)

    def test_order_for_rejects_unknown_policy(self):
        inst = Instance([atom("p", "a")])
        with pytest.raises(ValueError):
            order_for((atom("p", "X"),), inst, policy="nope")

    def test_order_for_is_deterministic_and_cached(self):
        inst = Instance([atom("e", "a", "b"), atom("p", "a")])
        atoms = (atom("e", "X", "Y"), atom("p", "X"))
        first = order_for(atoms, inst)
        assert order_for(atoms, inst) == first
        assert order_for(atoms, inst) is first  # cached object


class TestIsModel:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_object_level_reference(self, seed):
        rules = random_guarded(3, side_atoms=2, seed=seed)
        db = random_database(rules, num_constants=3,
                             facts_per_predicate=2, seed=seed)
        grown = run_chase(db, rules, ChaseVariant.SEMI_OBLIVIOUS,
                          max_steps=60).instance

        def reference(instance, rules):
            for rule in rules:
                for assignment in naive_homomorphisms(rule.body, instance):
                    partial = {v: assignment[v] for v in rule.frontier}
                    if not has_homomorphism(rule.head, instance, partial):
                        return False
            return True

        assert is_model(grown, rules) == reference(grown, rules)
        # A strict sub-instance generally violates some rule; whatever
        # the truth, the engines must agree on it.
        sub = Instance(list(grown)[: max(1, len(grown) // 2)])
        assert is_model(sub, rules) == reference(sub, rules)


class TestChaseCostPlanner:
    @pytest.mark.parametrize("seed", range(6))
    def test_semi_oblivious_equal_up_to_null_renaming(self, seed):
        rng = random.Random(seed + 2000)
        rules, preds, consts = _random_program(rng)
        db = Database()
        for _ in range(rng.randint(3, 6)):
            pred = rng.choice(preds)
            db.add(Atom(pred, [rng.choice(consts)
                               for _ in range(pred.arity)]))
        heuristic = run_chase(db, rules, ChaseVariant.SEMI_OBLIVIOUS,
                              max_steps=200)
        cost = run_chase(db, rules, ChaseVariant.SEMI_OBLIVIOUS,
                         max_steps=200, planner="cost")
        # Same trigger set -> same step count and fact count; results
        # may differ only by null renaming (isomorphic instances embed
        # into each other).
        assert cost.terminated == heuristic.terminated
        assert cost.step_count == heuristic.step_count
        assert len(cost.instance) == len(heuristic.instance)
        assert is_homomorphically_equivalent(
            cost.instance, heuristic.instance
        )

    def test_rejects_unknown_planner(self):
        db = Database([atom("p", "a")])
        with pytest.raises(ValueError):
            run_chase(db, [], planner="nope")

    @pytest.mark.parametrize("kind", ["threaded", "process"])
    def test_cost_planner_is_executor_independent(self, kind):
        # The order policy ships to process-executor mirrors with the
        # init payload; a cost-planned batched run must stay
        # byte-identical to the cost-planned serial run (regression:
        # mirrors used to fall back to heuristic ordering, permuting
        # within-batch trigger order and null numbering).
        from repro.chase import RoundScheduler

        p, q, r, s, out = (Predicate("p", 1), Predicate("q", 2),
                           Predicate("r", 2), Predicate("s", 2),
                           Predicate("out", 4))
        W = Variable("W")
        S = Variable("S")
        # Two stages so the second round's discovery runs through
        # already-synced worker mirrors (round 1 resyncs locally).  A
        # single q row makes the cost planner start each rest-of-body
        # join from q (estimate 1, though disconnected from the pivot)
        # where the heuristic starts from the connected r — the two
        # policies genuinely order differently on this shape, so a
        # mirror planning with the wrong policy permutes null numbers.
        rules = [
            TGD([Atom(p, [X]), Atom(q, [Y, Constant("k")]),
                 Atom(r, [X, Z])],
                [Atom(s, [X, W])]),
            TGD([Atom(s, [X, S]), Atom(q, [Y, Constant("k")]),
                 Atom(r, [X, Z])],
                [Atom(out, [S, Y, Z, W])]),
        ]
        db = Database()
        # Two q rows: swapping the join nesting transposes the (Y, Z)
        # emission order, so a wrong-policy mirror renumbers nulls.
        db.add(Atom(q, [Constant("y0"), Constant("k")]))
        db.add(Atom(q, [Constant("y1"), Constant("k")]))
        for i in range(4):
            db.add(Atom(p, [Constant(f"x{i}")]))
            for j in range(3):
                db.add(Atom(r, [Constant(f"x{i}"), Constant(f"z{j}")]))
        serial = run_chase(db, rules, ChaseVariant.OBLIVIOUS,
                           max_steps=500, planner="cost")
        with RoundScheduler(kind, workers=2) as sched:
            batched = run_chase(db, rules, ChaseVariant.OBLIVIOUS,
                                max_steps=500, planner="cost",
                                scheduler=sched)
        assert batched.instance.facts() == serial.instance.facts()
        assert batched.step_count == serial.step_count


class TestQueryPolicyAgreement:
    def test_handwritten_join_all_policies(self):
        inst = Instance([
            atom("e", "a", "b"), atom("e", "b", "c"), atom("e", "c", "a"),
            atom("e", "a", "a"),
            Atom(Predicate("e", 2), [Null(3), Constant("a")]),
        ])
        query = ConjunctiveQuery(
            [X, Z], [atom("e", "X", "Y"), atom("e", "Y", "Z")]
        )
        oracle = oracle_answer_set(query.answer_variables, query.atoms, inst)
        assert set(query.answers(inst, policy="cost")) == oracle
        assert set(query.answers(inst, policy="heuristic")) == oracle
        certain = {
            a for a in oracle
            if not any(isinstance(t, Null) for t in a)
        }
        assert set(query.certain_answers(inst)) == certain
