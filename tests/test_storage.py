"""Durable fact stores: save/open equivalence, checkpoint/resume
byte-identity, worker-mirror hydration, and the persistence CLI.

The contract under test is the strongest one the engine offers: a
saved run, reopened and resumed — after any stop reason, on any
executor, across any number of legs — must be *byte-identical* to the
uninterrupted in-memory run: same facts in the same order, same
trigger keys, same provenance ordinals, same null numbering.
"""

import os
import pickle

import pytest

from repro.chase import (
    ChaseVariant,
    RoundScheduler,
    load_state,
    resume_chase,
    run_chase,
)
from repro.cli import main
from repro.model import Atom, Instance, Null, Predicate, Variable
from repro.parser import parse_database, parse_program
from repro.query.planner import order_atoms_cost
from repro.runtime.budget import Budget
from repro.storage import (
    DurableFactStore,
    FactStore,
    StoreFormatError,
    open_instance,
    open_store,
    read_manifest,
    save_store,
)
from repro.workloads import random_database, random_simple_linear

PROGRAM = """
emp(X) -> exists D . works(X, D)
works(X, D) -> dept(D)
dept(D) -> exists M . head(D, M)
head(D, M) -> person(M)
emp(X) -> person(X)
"""

DATABASE = "emp(ada)\nemp(alan)\nemp(grace)"


def chain_workload(n=16):
    """A deterministic ~170-step terminating workload: transitive
    closure over an ``n``-edge chain plus one existential tagger."""
    rules = parse_program(
        """
        e(X, Y) -> p(X, Y)
        p(X, Y), e(Y, Z) -> p(X, Z)
        p(X, Y) -> exists W . tag(Y, W)
        """
    )
    db = parse_database(
        "\n".join(f"e(n{i}, n{i + 1})" for i in range(n))
    )
    return rules, db


@pytest.fixture
def rules():
    return parse_program(PROGRAM)


@pytest.fixture
def db():
    return parse_database(DATABASE)


def fingerprint(result):
    """Facts order + trigger keys + provenance ordinals — the
    byte-identity relation used throughout this module."""
    variant = result.variant
    return (
        result.instance.facts(),
        tuple(step.trigger.key(variant) for step in result.steps),
        tuple(step._ordinals for step in result.steps),
    )


# -- save / reopen equivalence ---------------------------------------------


class TestSaveReopen:
    def test_reopened_store_is_byte_identical(self, rules, db, tmp_path):
        result = run_chase(db, rules, "restricted", max_steps=500)
        assert result.terminated
        path = str(tmp_path / "store")
        save_store(result.instance._store, path)

        reopened = open_instance(path)
        assert isinstance(reopened._store, DurableFactStore)
        assert reopened.facts() == result.instance.facts()
        # Null identity survives the round trip, not just fact count.
        assert any(
            isinstance(t, Null) for f in reopened.facts() for t in f.terms
        )

    def test_reopen_is_lazy_until_touched(self, rules, db, tmp_path):
        result = run_chase(db, rules, "restricted", max_steps=500)
        path = str(tmp_path / "store")
        save_store(result.instance._store, path)

        store = open_store(path)
        assert not store.loaded()
        # Counts and per-column statistics come straight from the
        # manifest — no segment is decoded to answer them.
        works = Predicate("works", 2)
        pid = store.pred_ids[works]
        assert store.count_rows(pid) == result.instance.count_with_predicate(
            works
        )
        assert store.distinct_at(pid, 0) == result.instance._store.distinct_at(
            result.instance._store.pred_ids[works], 0
        )
        assert not store.loaded()
        store.ensure_all()
        assert store.loaded()
        assert store.size() == len(result.instance)

    def test_distinct_at_drives_identical_plans(self, rules, db, tmp_path):
        result = run_chase(db, rules, "restricted", max_steps=500)
        path = str(tmp_path / "store")
        save_store(result.instance._store, path)
        reopened = open_instance(path)

        mem_store = result.instance._store
        dur_store = reopened._store
        for pred, pid in mem_store.pred_ids.items():
            dur_pid = dur_store.pred_ids[pred]
            for position in range(pred.arity):
                assert mem_store.distinct_at(pid, position) == (
                    dur_store.distinct_at(dur_pid, position)
                ), (pred, position)

        X, D, M = Variable("X"), Variable("D"), Variable("M")
        atoms = [
            Atom(Predicate("works", 2), [X, D]),
            Atom(Predicate("head", 2), [D, M]),
            Atom(Predicate("person", 1), [M]),
        ]
        assert order_atoms_cost(atoms, reopened) == order_atoms_cost(
            atoms, result.instance
        )

    def test_copy_and_eq_are_backend_agnostic(self, rules, db, tmp_path):
        result = run_chase(db, rules, "restricted", max_steps=500)
        path = str(tmp_path / "store")
        save_store(result.instance._store, path)
        reopened = open_instance(path)

        assert reopened == result.instance
        copied = reopened.copy()
        # copy() always lands on the in-memory backend, via the store
        # API only.
        assert type(copied._store) is FactStore
        assert copied == reopened
        person = Predicate("person", 1)
        assert reopened.facts_with_predicate(person) == (
            result.instance.facts_with_predicate(person)
        )

    def test_save_refuses_then_overwrites(self, rules, db, tmp_path):
        result = run_chase(db, rules, "restricted", max_steps=500)
        path = str(tmp_path / "store")
        result.instance.save(path)
        with pytest.raises(FileExistsError):
            result.instance.save(path)
        result.instance.save(path, overwrite=True)
        assert open_instance(path) == result.instance

    def test_manifest_counts_match(self, rules, db, tmp_path):
        result = run_chase(db, rules, "restricted", max_steps=500)
        path = str(tmp_path / "store")
        save_store(result.instance._store, path)
        manifest = read_manifest(path)
        assert manifest["facts"] == len(result.instance)
        assert sum(
            meta["rows"] for meta in manifest["predicates"].values()
        ) == len(result.instance)

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_roundtrip_property_random_workloads(self, seed, tmp_path):
        """Chase-grown instances (nulls included) survive save/open
        and ChaseResult survives pickle, byte-identically."""
        rules = random_simple_linear(4, seed=seed)
        db = random_database(rules, seed=seed)
        result = run_chase(db, rules, "semi_oblivious", max_steps=200)
        path = str(tmp_path / f"store{seed}")
        save_store(result.instance._store, path)
        assert open_instance(path).facts() == result.instance.facts()

        clone = pickle.loads(pickle.dumps(result))
        assert clone.instance.facts() == result.instance.facts()
        assert clone.terminated == result.terminated
        assert clone.stop_reason == result.stop_reason


# -- checkpoint / resume ----------------------------------------------------


class TestCheckpointResume:
    @pytest.mark.parametrize("variant", ChaseVariant.ALL)
    def test_step_budget_stop_resumes_byte_identical(
        self, rules, db, tmp_path, variant
    ):
        ref = run_chase(db, rules, variant, max_steps=500)
        assert ref.terminated

        path = str(tmp_path / "store")
        part = run_chase(db, rules, variant, max_steps=5, save=path)
        assert not part.terminated and part.stop_reason == "step_budget"

        res = resume_chase(path, max_steps=500)
        assert res.terminated
        assert fingerprint(res) == fingerprint(ref)

    @pytest.mark.parametrize("variant", ChaseVariant.ALL)
    def test_uninterrupted_save_matches_plain_run(
        self, rules, db, tmp_path, variant
    ):
        ref = run_chase(db, rules, variant, max_steps=500)
        saved = run_chase(
            db, rules, variant, max_steps=500, save=str(tmp_path / "s")
        )
        assert fingerprint(saved) == fingerprint(ref)

    @pytest.mark.parametrize("variant", ChaseVariant.ALL)
    def test_chained_multi_leg_resume(self, rules, db, tmp_path, variant):
        ref = run_chase(db, rules, variant, max_steps=500)
        path = str(tmp_path / "store")
        r = run_chase(db, rules, variant, max_steps=3, save=path)
        legs = 1
        while not r.terminated:
            legs += 1
            assert legs < 50
            r = resume_chase(path, max_steps=3 * legs)
        assert legs > 2
        assert fingerprint(r) == fingerprint(ref)

    def test_resume_of_finished_store_returns_immediately(
        self, rules, db, tmp_path
    ):
        ref = run_chase(db, rules, "restricted", max_steps=500)
        path = str(tmp_path / "store")
        run_chase(db, rules, "restricted", max_steps=500, save=path)
        again = resume_chase(path)
        assert again.terminated
        assert fingerprint(again) == fingerprint(ref)

    def test_deadline_stop_resumes_byte_identical(self, rules, db, tmp_path):
        ref = run_chase(db, rules, "semi_oblivious", max_steps=500)
        ticks = iter([0.0] * 3 + [100.0] * 1000)
        budget = Budget(timeout_s=1.0, clock=lambda: next(ticks))
        path = str(tmp_path / "store")
        part = run_chase(
            db, rules, "semi_oblivious", max_steps=500, save=path,
            budget=budget,
        )
        assert not part.terminated and part.stop_reason == "deadline"
        assert 0 < part.step_count < ref.step_count

        res = resume_chase(path, max_steps=500)
        assert res.terminated
        assert fingerprint(res) == fingerprint(ref)

    @pytest.mark.parametrize("kind", ["serial", "threaded", "process"])
    def test_resume_on_every_executor(self, kind, tmp_path):
        rules, db = chain_workload()
        ref = run_chase(db, rules, "semi_oblivious", max_steps=2000)
        assert ref.terminated
        path = str(tmp_path / "store")
        part = run_chase(db, rules, "semi_oblivious", max_steps=40, save=path)
        assert not part.terminated

        res = resume_chase(
            path, max_steps=2000, scheduler=kind,
            workers=2 if kind != "serial" else None,
        )
        assert res.terminated
        assert fingerprint(res) == fingerprint(ref)

    def test_resume_rejects_mismatched_rules(self, rules, db, tmp_path):
        path = str(tmp_path / "store")
        run_chase(db, rules, "restricted", max_steps=5, save=path)
        other = parse_program("emp(X) -> person(X)")
        with pytest.raises(ValueError, match="rules"):
            resume_chase(path, rules=other)

    def test_save_rejects_shuffled_rounds_and_custom_nulls(
        self, rules, db, tmp_path
    ):
        with pytest.raises(ValueError, match="order_seed"):
            run_chase(
                db, rules, "restricted", max_steps=5,
                save=str(tmp_path / "a"), order_seed=7,
            )

    def test_plain_save_can_be_queried_not_resumed(self, rules, db, tmp_path):
        result = run_chase(db, rules, "restricted", max_steps=500)
        path = str(tmp_path / "plain")
        save_store(result.instance._store, path)
        assert open_instance(path) == result.instance
        with pytest.raises(StoreFormatError, match="quer"):
            resume_chase(path)

    def test_torn_checkpoint_is_refused(self, rules, db, tmp_path):
        path = str(tmp_path / "store")
        run_chase(db, rules, "restricted", max_steps=5, save=path)
        store = open_store(path)
        state_path = os.path.join(path, "chase.pkl")
        with open(state_path, "rb") as handle:
            state = pickle.load(handle)
        state["facts"] += 1  # header ahead of the data files
        with open(state_path, "wb") as handle:
            pickle.dump(state, handle)
        with pytest.raises(StoreFormatError):
            load_state(path, store)

    def test_resumed_result_survives_pickle(self, rules, db, tmp_path):
        path = str(tmp_path / "store")
        run_chase(db, rules, "restricted", max_steps=5, save=path)
        res = resume_chase(path, max_steps=500)
        assert isinstance(res.instance._store, DurableFactStore)
        clone = pickle.loads(pickle.dumps(res))
        # The copy lands on the in-memory backend with identical facts.
        assert type(clone.instance._store) is FactStore
        assert clone.instance.facts() == res.instance.facts()


# -- worker-mirror hydration ------------------------------------------------


class TestMirrorHydration:
    def test_process_mirrors_hydrate_from_disk(self, tmp_path):
        """Workers of a resumed run load the persisted prefix from the
        store directory and are shipped only the post-reopen tail."""
        rules, db = chain_workload()
        ref = run_chase(db, rules, "semi_oblivious", max_steps=2000)
        path = str(tmp_path / "store")
        part = run_chase(db, rules, "semi_oblivious", max_steps=40, save=path)
        assert not part.terminated

        with RoundScheduler("process", workers=2) as sched:
            res = resume_chase(path, max_steps=2000, scheduler=sched)
            stats = dict(sched.ship_stats)
        assert fingerprint(res) == fingerprint(ref)
        assert stats["full_ships"] == 0
        assert stats["store_base"] == len(part.instance)
        # Shipping only post-reopen deltas undercuts the old
        # pickle-the-whole-instance protocol.
        assert stats["rows_shipped"] < stats["rows_old_protocol"]


# -- CLI --------------------------------------------------------------------


@pytest.fixture
def cli_rules_file(tmp_path):
    path = tmp_path / "rules.tgd"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture
def cli_db_file(tmp_path):
    path = tmp_path / "db.facts"
    path.write_text(DATABASE + "\n")
    return str(path)


class TestStorageCLI:
    def test_save_inspect_resume_query_flow(
        self, cli_rules_file, cli_db_file, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        # Stop mid-run: exit code 1 (step_budget), resumable hint.
        code = main([
            "chase", cli_rules_file, cli_db_file, "--variant", "r",
            "--max-steps", "5", "--save", store,
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "resumable" in captured.err

        assert main(["inspect", store]) == 0
        out = capsys.readouterr().out
        assert "stopped" in out and "resumable" in out

        # Resume to fixpoint: exit 0.
        assert main(["chase", "--resume", store]) == 0
        assert "fixpoint" in capsys.readouterr().out

        assert main(["inspect", store]) == 0
        assert "terminated" in capsys.readouterr().out

        # Certain answers over the store, no re-chase...
        query = "person(X)"
        assert main([
            "query", query, "--db", store, "--certain",
        ]) == 0
        db_out = capsys.readouterr().out
        # ...match the re-chasing query path exactly.
        assert main([
            "query", cli_rules_file, cli_db_file, query, "--variant", "r",
            "--certain",
        ]) == 0
        chase_out = capsys.readouterr().out
        db_answers = {
            line for line in db_out.splitlines()
            if line and not line.startswith("%")
        }
        chase_answers = {
            line for line in chase_out.splitlines()
            if line and not line.startswith("%")
        }
        assert db_answers == chase_answers and db_answers

    def test_resume_refuses_save_flag(self, tmp_path, capsys):
        assert main([
            "chase", "--resume", str(tmp_path / "s"), "--save",
            str(tmp_path / "t"),
        ]) == 2
        capsys.readouterr()

    def test_chase_requires_rules_without_resume(self, capsys):
        assert main(["chase"]) == 2
        capsys.readouterr()

    def test_query_db_on_plain_save(
        self, cli_rules_file, cli_db_file, tmp_path, capsys
    ):
        rules = parse_program(PROGRAM)
        db = parse_database(DATABASE)
        result = run_chase(db, rules, "restricted", max_steps=500)
        store = str(tmp_path / "plain")
        result.instance.save(store)
        assert main(["query", "person(X)", "--db", store]) == 0
        out = capsys.readouterr().out
        assert "% store" in out
