"""Unit tests for pumpable-cycle detection."""

import pytest

from repro.chase import ChaseVariant
from repro.parser import parse_program
from repro.termination import (
    TransitionGraph,
    TypeAnalysis,
    alive_edge_fixpoint,
    find_pumping_witness,
    renewable_classes,
    verify_cyclic_walk,
)


def graph_for(text: str) -> TransitionGraph:
    return TransitionGraph(TypeAnalysis(parse_program(text)))


class TestRenewableClasses:
    def test_fresh_classes_seed_renewal(self):
        graph = graph_for("p(X, Y) -> exists Z . p(Y, Z)")
        renewal = renewable_classes(graph.edges)
        assert any(classes for classes in renewal.values())

    def test_no_existentials_no_renewal(self):
        graph = graph_for("p(X, Y) -> q(Y, X)")
        assert graph.edges == []
        assert renewable_classes(graph.edges) == {}


class TestAliveFixpoint:
    def test_constant_trigger_edges_die(self):
        # p(X, X) -> exists Z . p(X, Z): the only self-transition has an
        # all-constant trigger image and must be pruned.
        graph = graph_for("p(X, X) -> exists Z . p(X, Z)")
        for component in graph.strongly_connected_components():
            internal = [
                e for node in component for e in graph.out_edges(node)
                if e.target in component
            ]
            alive = alive_edge_fixpoint(internal, ChaseVariant.OBLIVIOUS)
            assert alive == []

    def test_renewing_edges_survive(self):
        graph = graph_for("p(X, Y) -> exists Z . p(Y, Z)")
        survivors = []
        for component in graph.strongly_connected_components():
            internal = [
                e for node in component for e in graph.out_edges(node)
                if e.target in component
            ]
            survivors.extend(
                alive_edge_fixpoint(internal, ChaseVariant.SEMI_OBLIVIOUS)
            )
        assert survivors


class TestVerifyCyclicWalk:
    def test_rejects_empty_walk(self):
        assert not verify_cyclic_walk([], ChaseVariant.OBLIVIOUS, 1)

    def test_rejects_non_closing_walk(self):
        graph = graph_for(
            "p(X) -> exists Z . q(X, Z)\nq(X, Y) -> exists W . r(Y, W)"
        )
        e1 = next(e for e in graph.edges if e.rule.label == "r1")
        e2 = next(e for e in graph.edges if e.rule.label == "r2")
        with pytest.raises(ValueError):
            verify_cyclic_walk([e1, e2], ChaseVariant.OBLIVIOUS,
                               graph.analysis.num_constants)

    def test_verifies_genuine_pump(self):
        graph = graph_for("p(X, Y) -> exists Z . p(Y, Z)")
        witness = find_pumping_witness(graph, ChaseVariant.SEMI_OBLIVIOUS)
        assert witness is not None
        assert witness.verified
        assert verify_cyclic_walk(
            witness.walk, ChaseVariant.SEMI_OBLIVIOUS,
            graph.analysis.num_constants,
        )


class TestFindPumpingWitness:
    def test_terminating_program_has_no_witness(self):
        graph = graph_for("p(X) -> exists Z . q(X, Z)\nq(X, Y) -> r(Y)")
        assert find_pumping_witness(graph, ChaseVariant.OBLIVIOUS) is None
        assert find_pumping_witness(graph, ChaseVariant.SEMI_OBLIVIOUS) is None

    def test_example_2_found_for_both_variants(self):
        graph = graph_for("p(X, Y) -> exists Z . p(Y, Z)")
        for variant in (ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS):
            witness = find_pumping_witness(graph, variant)
            assert witness is not None and witness.verified

    def test_oblivious_only_divergence(self):
        # p(X, Y) -> exists Z . p(X, Z): o diverges, so terminates.
        graph = graph_for("p(X, Y) -> exists Z . p(X, Z)")
        assert find_pumping_witness(graph, ChaseVariant.OBLIVIOUS) is not None
        assert find_pumping_witness(graph, ChaseVariant.SEMI_OBLIVIOUS) is None

    def test_mutually_sustaining_loops(self):
        """Two rules, neither self-sufficient, whose composition pumps.

        Under the semi-oblivious chase, r1 refreshes position 1 while
        its trigger reads position 2, and r2 copies position 1 into
        position 2 while reading position 1.  Each rule *alone*
        terminates (their self-loops recycle — see the companion
        oracle test in test_cross_validation), but alternating them
        renews every trigger image — the case that forces candidate
        walks beyond simple cycles (covering walks).
        """
        rules_text = """
        p(X, Y, D) -> exists Z, D2 . p(Z, Y, D2)
        p(X, Y, D) -> exists W . p(X, X, W)
        """
        rules = parse_program(rules_text)
        # Each rule alone: terminating for the semi-oblivious chase.
        for rule in rules:
            solo = TransitionGraph(TypeAnalysis([rule]))
            assert find_pumping_witness(
                solo, ChaseVariant.SEMI_OBLIVIOUS
            ) is None
        # Together: a verified composite pump using both rules.
        graph = graph_for(rules_text)
        witness = find_pumping_witness(graph, ChaseVariant.SEMI_OBLIVIOUS)
        assert witness is not None
        assert witness.verified
        labels = {e.rule.label for e in witness.walk}
        assert labels == {"r1", "r2"}

    def test_witness_describe_mentions_rules(self):
        graph = graph_for("p(X, Y) -> exists Z . p(Y, Z)")
        witness = find_pumping_witness(graph, ChaseVariant.OBLIVIOUS)
        assert "r1" in witness.describe()
        assert "oblivious" in witness.describe()

    def test_witness_rules_method(self):
        graph = graph_for("p(X, Y) -> exists Z . p(Y, Z)")
        witness = find_pumping_witness(graph, ChaseVariant.OBLIVIOUS)
        assert all(r.label == "r1" for r in witness.rules())
