"""A small text format for rules, programs, and databases.

Syntax (one statement per line; ``%`` starts a comment)::

    % rules: body -> [exists Z1,...,Zk .] head
    person(X) -> exists Y . hasFather(X, Y), person(Y)
    p(X, Y), q(Y) -> r(X)

    % facts (for databases): ground atoms
    person(bob)

    % conjunctive queries: answer atom :- body (bare bodies are boolean)
    q(X) :- person(X), hasFather(X, Y)

Tokens starting with an upper-case letter or underscore are variables;
everything else (bare lower-case words, numbers, and single-quoted
strings) are constants.  The existential prefix is optional — head
variables missing from the body are existentially quantified either
way; when the prefix *is* given it must list exactly those variables.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..model import Atom, Constant, Database, Predicate, Term, TGD, Variable


class ParseError(ValueError):
    """Raised on malformed rule/fact text, with position information."""

    def __init__(self, message: str, text: str, pos: int):
        snippet = text[max(0, pos - 20) : pos + 20]
        super().__init__(f"{message} at offset {pos}: ...{snippet!r}...")
        self.pos = pos


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->)
  | (?P<neck>:-)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<quoted>'[^']*')
  | (?P<word>[A-Za-z0-9_][A-Za-z0-9_\-]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens: List[Tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", text, pos)
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append((kind, match.group(), pos))
        pos = match.end()
    return tokens


class _TokenStream:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str, int]]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> Tuple[str, str, int]:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input", self.text, len(self.text))
        self.index += 1
        return tok

    def expect(self, kind: str) -> Tuple[str, str, int]:
        tok = self.next()
        if tok[0] != kind:
            raise ParseError(f"expected {kind}, found {tok[1]!r}", self.text, tok[2])
        return tok

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)


def _is_variable_name(word: str) -> bool:
    return word[0].isupper() or word[0] == "_"


def _parse_term(stream: _TokenStream) -> Term:
    kind, value, pos = stream.next()
    if kind == "quoted":
        return Constant(value[1:-1])
    if kind != "word":
        raise ParseError(f"expected a term, found {value!r}", stream.text, pos)
    if _is_variable_name(value):
        return Variable(value)
    return Constant(value)


def _parse_atom(stream: _TokenStream) -> Atom:
    kind, name, pos = stream.next()
    if kind != "word":
        raise ParseError(
            f"expected a predicate name, found {name!r}", stream.text, pos
        )
    stream.expect("lpar")
    terms: List[Term] = []
    tok = stream.peek()
    if tok is not None and tok[0] == "rpar":
        stream.next()
    else:
        terms.append(_parse_term(stream))
        while True:
            kind, value, pos = stream.next()
            if kind == "rpar":
                break
            if kind != "comma":
                raise ParseError(
                    f"expected ',' or ')', found {value!r}", stream.text, pos
                )
            terms.append(_parse_term(stream))
    return Atom(Predicate(name, len(terms)), terms)


def _parse_atom_list(stream: _TokenStream) -> List[Atom]:
    atoms = [_parse_atom(stream)]
    while True:
        tok = stream.peek()
        if tok is None or tok[0] != "comma":
            break
        stream.next()
        atoms.append(_parse_atom(stream))
    return atoms


def parse_atom(text: str) -> Atom:
    """Parse a single atom such as ``p(X, a)``."""
    stream = _TokenStream(text)
    atom = _parse_atom(stream)
    tok = stream.peek()
    if tok is not None and tok[0] == "dot":
        stream.next()
    if not stream.at_end():
        _, value, pos = stream.next()
        raise ParseError(f"trailing input {value!r}", text, pos)
    return atom


def parse_fact(text: str) -> Atom:
    """Parse a ground atom; raises if variables occur."""
    atom = parse_atom(text)
    if not atom.is_ground():
        raise ParseError(f"fact contains variables: {atom}", text, 0)
    return atom


def parse_rule(text: str, label: str = "") -> TGD:
    """Parse one TGD from ``body -> [exists V1,...,Vk .] head`` text."""
    stream = _TokenStream(text)
    body = _parse_atom_list(stream)
    stream.expect("arrow")
    declared: Optional[List[Variable]] = None
    tok = stream.peek()
    if tok is not None and tok[0] == "word" and tok[1] == "exists":
        stream.next()
        declared = []
        while True:
            kind, value, pos = stream.next()
            if kind != "word" or not _is_variable_name(value):
                raise ParseError(
                    f"expected a variable after 'exists', found {value!r}",
                    text,
                    pos,
                )
            declared.append(Variable(value))
            tok = stream.peek()
            if tok is not None and tok[0] == "comma":
                stream.next()
                continue
            break
        stream.expect("dot")
    head = _parse_atom_list(stream)
    tok = stream.peek()
    if tok is not None and tok[0] == "dot":
        stream.next()
    if not stream.at_end():
        _, value, pos = stream.next()
        raise ParseError(f"trailing input {value!r}", text, pos)
    rule = TGD(body, head, label=label)
    if declared is not None:
        if set(declared) != set(rule.existential_variables):
            raise ParseError(
                "declared existential variables "
                f"{{{', '.join(sorted(v.name for v in declared))}}} do not "
                "match the head variables missing from the body "
                f"{{{', '.join(sorted(v.name for v in rule.existential_variables))}}}",
                text,
                0,
            )
    return rule


def parse_query(text: str):
    """Parse a conjunctive query.

    Syntax: ``q(X, Z) :- e(X, Y), e(Y, Z)`` — the answer atom's terms
    are the answer variables (its predicate name is decorative) and the
    conjunction after ``:-`` is the body.  A bare conjunction (no
    ``:-``) is a *boolean* query.  Returns a
    :class:`repro.cq.ConjunctiveQuery`.
    """
    from ..cq import ConjunctiveQuery

    stream = _TokenStream(text)
    first = _parse_atom(stream)
    name = "q"
    tok = stream.peek()
    if tok is not None and tok[0] == "neck":
        stream.next()
        for term in first.terms:
            if not isinstance(term, Variable):
                raise ParseError(
                    f"answer atom terms must be variables, got {term}",
                    text,
                    0,
                )
        answer_variables = list(first.terms)
        name = first.predicate.name
        atoms = _parse_atom_list(stream)
    else:
        # A bare conjunction: boolean query.
        answer_variables = []
        atoms = [first]
        while tok is not None and tok[0] == "comma":
            stream.next()
            atoms.append(_parse_atom(stream))
            tok = stream.peek()
    tok = stream.peek()
    if tok is not None and tok[0] == "dot":
        stream.next()
    if not stream.at_end():
        _, value, pos = stream.next()
        raise ParseError(f"trailing input {value!r}", text, pos)
    try:
        return ConjunctiveQuery(answer_variables, atoms, name=name)
    except ValueError as exc:
        raise ParseError(str(exc), text, 0) from exc


def parse_program(text: str) -> List[TGD]:
    """Parse a whole program: one rule per non-empty, non-comment line."""
    rules: List[TGD] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("%", 1)[0].strip()
        if not line:
            continue
        try:
            rules.append(parse_rule(line, label=f"r{len(rules) + 1}"))
        except ParseError as exc:
            raise ParseError(f"line {lineno}: {exc}", raw, 0) from exc
    return rules


def parse_database(text: str) -> Database:
    """Parse a database: one ground atom per non-empty, non-comment line."""
    database = Database()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("%", 1)[0].strip()
        if not line:
            continue
        try:
            database.add(parse_fact(line))
        except ParseError as exc:
            raise ParseError(f"line {lineno}: {exc}", raw, 0) from exc
    return database
