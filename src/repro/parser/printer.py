"""Pretty-printing of rules, programs, and instances.

The printed form round-trips through :mod:`repro.parser.parser` for
rules and databases (nulls print as ``z<i>`` and are not re-parseable,
which matches the usual convention that databases are null-free).
"""

from __future__ import annotations

from typing import Iterable

from ..model import Atom, Instance, TGD


def atom_to_text(atom: Atom) -> str:
    """Render one atom, quoting constants that would not re-parse bare."""
    parts = []
    for term in atom.terms:
        text = str(term)
        if _needs_quoting(term, text):
            parts.append(f"'{text}'")
        else:
            parts.append(text)
    return f"{atom.predicate.name}({', '.join(parts)})"


def _needs_quoting(term: object, text: str) -> bool:
    from ..model import Constant

    if not isinstance(term, Constant):
        return False
    if not text:
        return True
    if text[0].isupper() or text[0] == "_":
        return True
    return not all(ch.isalnum() or ch in "_-" for ch in text)


def rule_to_text(rule: TGD) -> str:
    """Render one rule in the parser's syntax."""
    body = ", ".join(atom_to_text(a) for a in rule.body)
    head = ", ".join(atom_to_text(a) for a in rule.head)
    if rule.existential_variables:
        ex = ", ".join(sorted(v.name for v in rule.existential_variables))
        return f"{body} -> exists {ex} . {head}"
    return f"{body} -> {head}"


def program_to_text(rules: Iterable[TGD]) -> str:
    """Render a program, one rule per line."""
    return "\n".join(rule_to_text(r) for r in rules)


def instance_to_text(instance: Instance) -> str:
    """Render an instance, one fact per line, sorted for stability."""
    return "\n".join(sorted(atom_to_text(f) for f in instance))
