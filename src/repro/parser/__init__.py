"""Text syntax for rules, programs, facts, and databases."""

from .parser import (
    ParseError,
    parse_atom,
    parse_database,
    parse_fact,
    parse_program,
    parse_query,
    parse_rule,
)
from .printer import (
    atom_to_text,
    instance_to_text,
    program_to_text,
    rule_to_text,
)

__all__ = [
    "ParseError",
    "atom_to_text",
    "instance_to_text",
    "parse_atom",
    "parse_database",
    "parse_fact",
    "parse_program",
    "parse_query",
    "parse_rule",
    "program_to_text",
    "rule_to_text",
]
