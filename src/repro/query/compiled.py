"""Compiled conjunctive queries: int-native evaluation end-to-end.

The object-level CQ path (PR 0–4) enumerated ``Variable → Term`` dicts
through :func:`repro.model.homomorphisms`, built a ``Term`` tuple per
candidate answer, and deduplicated those tuples in a set — paying an
object decode, k tuple hashes of interned terms, and a dict per match
even when the match was a duplicate about to be dropped.

:class:`CompiledQuery` keeps the whole pipeline in id space:

* the body is ordered by the cost-based planner
  (:mod:`repro.query.planner`) and resolved to a slot-compiled
  :class:`~repro.model.joinplan.PlanExec`;
* answers are projected out of the live slot list by a compiled
  ``itemgetter`` — an *int* tuple, no Term materialization;
* deduplication happens on those int tuples, so the dedup set holds
  small-int tuples instead of Term tuples (the ``answers`` memory
  fix), and only tuples that survive dedup (and, for certain answers,
  the null-freeness filter) are ever decoded;
* **distinct-projection pushdown** — the plan is split at the first
  step binding every answer variable; prefix matches whose projection
  was already emitted are skipped before the residual join runs at
  all, and unseen projections need only an *existence* probe of the
  residual (the first witness proves the answer; enumerating the rest
  is pure duplicate work).  Answer sets and first-seen emission order
  are identical to full enumeration;
* null-freeness is a term-id *kind* check — each distinct id is
  classified once per instance (memoized), so certain-answer filtering
  never rebuilds Term tuples just to inspect them;
* resolved plans are cached per ``(query, fact-count bucket)``: the
  planner replans only when the instance's statistics have shifted a
  power-of-two bucket, so repeated evaluation over a growing chase
  result is two dict hits in the steady state.

The object-level :func:`repro.model.homomorphisms` surface stays
untouched — it is the public compatibility API and the differential-
test oracle the property tests compare this engine against.

**Snapshot-pinned evaluation.**  Everything here works unchanged over
a :class:`~repro.model.instances.SnapshotInstance` (a watermark view of
a live instance — see :mod:`repro.storage.snapshot`): resolution binds
the snapshot store's *bounded* accessors, so a plan resolved against a
snapshot can never observe rows appended after its watermark, even
while a writer thread extends the base concurrently.  Plans are cached
in each instance's own ``_plans`` dict — deliberately **not** shared
between a base and its snapshots (a resolved step captures its store's
accessor methods at build time, so reusing a base plan on a snapshot
would read past the watermark).  A snapshot's fact count is frozen, so
its first evaluation of a query builds the plan and every later
request pinned to the same published snapshot is a cache hit; the
query server re-pays one plan build per *ingest leg*, not per request.
Concurrent readers sharing one snapshot race only on insert-only dict
caches (``_plans``, the null-kind memo, the decode cache), which is
safe under the GIL — and evaluation itself never writes to the store.
"""

from __future__ import annotations

from operator import itemgetter as _itemgetter
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from ..model.atoms import Atom
from ..model.instances import Instance
from ..model.joinplan import _RESOLVE_CACHE_CAP, PlanExec, resolve_exec
from ..model.terms import Null, Term, Variable
from . import kernels as _kernels
from .planner import order_for

#: Budget-check cadence inside evaluation loops (per prefix match).
_BUDGET_CHECK_EVERY = 1024


def _empty_project(match):
    return ()


def _single_project(slot: int):
    def project(match):
        return (match[slot],)

    return project


class CompiledQuery:
    """A conjunctive query compiled for repeated int-native evaluation.

    ``answer_variables`` may repeat and may be empty (a boolean query);
    every answer variable must occur in ``atoms``.  ``policy`` selects
    the planner's ordering policy (see
    :data:`repro.query.planner.ORDER_POLICIES`); both policies yield
    the same answer *sets*, in possibly different orders.

    ``kernel`` selects the execution tier (see
    :data:`repro.query.kernels.KERNELS`): ``"tuple"`` is the original
    tuple-at-a-time executor and the default; ``"vector"`` evaluates
    the same plan as columnar batch hash joins (order-exact — answers
    come back byte-identical, sequence included); ``"wcoj"`` runs the
    leapfrog worst-case-optimal multiway join (set-identical answers,
    enumerated in trie order); ``"auto"`` picks per instance from the
    join graph's shape and the columnar statistics.

    Instances are stateless with respect to any particular
    :class:`~repro.model.instances.Instance` — resolved plans live in
    the instance's own cache — so one ``CompiledQuery`` may be reused
    across many instances and many growth stages of one instance.
    ``stats`` counts plan builds vs cache hits, which is how the tests
    observe bucket-crossing replans.

    Evaluation is read-only and safe to run from many threads at once
    over the same instance or snapshot (the query server does exactly
    this); the only shared mutations are insert-only dict caches.  The
    ``stats`` counters are best-effort under such races — they guide
    tests and tuning, never results.
    """

    __slots__ = ("answer_variables", "atoms", "policy", "kernel", "stats")

    def __init__(
        self,
        answer_variables: Sequence[Variable],
        atoms: Sequence[Atom],
        policy: str = "cost",
        kernel: str = "tuple",
    ):
        self.answer_variables: Tuple[Variable, ...] = tuple(answer_variables)
        self.atoms: Tuple[Atom, ...] = tuple(atoms)
        self.policy = policy
        if kernel not in _kernels.KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of "
                f"{_kernels.KERNELS}"
            )
        self.kernel = kernel
        if not self.atoms:
            raise ValueError("a compiled query needs at least one atom")
        body_vars = set()
        for atom in self.atoms:
            body_vars |= atom.variables()
        for var in self.answer_variables:
            if var not in body_vars:
                raise ValueError(
                    f"answer variable {var} does not occur in the query body"
                )
        self.stats: Dict[str, int] = {
            "plans": 0,
            "plan_hits": 0,
            "early_outs": 0,
        }

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.answer_variables)
        body = ", ".join(str(a) for a in self.atoms)
        return (
            f"CompiledQuery(({head}) :- {body}, policy={self.policy}, "
            f"kernel={self.kernel})"
        )

    # -- plan resolution ----------------------------------------------------

    def _resolved(self, instance: Instance):
        """``(prefix, suffix, project, slots, full)`` for ``instance``
        at its current growth bucket.

        The planner-ordered body is resolved into one shared slot
        space and split at the first step binding every answer
        variable: ``prefix`` enumerates up to that point (where the
        projection is determined), ``suffix`` is the residual join
        (``None`` when the whole body is needed to bind the answers),
        and ``project`` reads the answer id tuple off the live slot
        list.  Both execs share the full slot space, so a prefix
        match's slot list seeds the suffix probe directly.  ``slots``
        is the answer variables' slot tuple and ``full`` the unsplit
        plan — what the batch kernels consume.
        """
        cache = instance._plans
        key = (
            "cq",
            self.atoms,
            self.answer_variables,
            self.policy,
            len(instance).bit_length(),
        )
        entry = cache.get(key)
        if entry is None:
            self.stats["plans"] += 1
            ordered = order_for(
                self.atoms, instance, policy=self.policy
            )
            # Reuse the shared per-instance resolution (same steps and
            # slot space the engines use) instead of re-resolving.
            exec_ = resolve_exec(instance, ordered)
            steps = exec_.steps
            env = exec_.slot_of
            slots = tuple(env[v] for v in self.answer_variables)
            if not slots:
                project = _empty_project
            elif len(slots) == 1:
                project = _single_project(slots[0])
            else:
                project = _itemgetter(*slots)
            need = set(slots)
            split = len(steps)
            bound: Set[int] = set()
            if need <= bound:
                split = 0
            else:
                for index, step in enumerate(steps):
                    bound.update(slot for slot, _, _ in step.groups)
                    if need <= bound:
                        split = index + 1
                        break
            if split == len(steps):
                # No residual: the full plan is the prefix.
                prefix, suffix = exec_, None
            else:
                prefix = PlanExec(steps[:split], env)
                suffix = PlanExec(steps[split:], env)
            entry = (prefix, suffix, project, slots, exec_)
            if len(cache) >= _RESOLVE_CACHE_CAP:
                cache.clear()
            cache[key] = entry
        else:
            self.stats["plan_hits"] += 1
        return entry

    def _effective_kernel(self, instance: Instance) -> str:
        """Resolve ``"auto"`` to a concrete kernel for ``instance``
        (cached per growth bucket — the pick is a statistics read)."""
        kernel = self.kernel
        if kernel != "auto":
            return kernel
        cache = instance._plans
        key = ("kern", self.atoms, len(instance).bit_length())
        pick = cache.get(key)
        if pick is None:
            pick = _kernels.choose_kernel(self.atoms, instance)
            if len(cache) >= _RESOLVE_CACHE_CAP:
                cache.clear()
            cache[key] = pick
        return pick

    def _unsatisfiable(self, instance: Instance, steps) -> bool:
        """Early-out (carried PR 5 follow-up): True when some step of
        the plan — prefix or distinct-projection pushdown *residue* —
        can never match: its relation is empty, or a constant's posting
        list at one of its positions is empty.  Zero matches for any
        single step means zero answers for the conjunction, so callers
        skip enumeration (and in particular never pay a prefix scan
        whose residual probes are doomed to fail every time)."""
        for step in steps:
            if not instance.rows_of(step.pid):
                self.stats["early_outs"] += 1
                return True
            for pos, tid in step.const_checks:
                if not instance.probe_rows(step.pid, pos, tid):
                    self.stats["early_outs"] += 1
                    return True
        return False

    def _null_kinds(self, instance: Instance) -> Dict[int, bool]:
        """The instance's ``term id -> is-null`` memo (lives in the
        instance's plan cache and dies with it)."""
        cache = instance._plans
        kinds = cache.get("null_kind")
        if kinds is None:
            kinds = cache["null_kind"] = {}
        return kinds

    # -- evaluation ---------------------------------------------------------

    def matches_ids(
        self, instance: Instance, budget=None
    ) -> Iterator[Tuple[int, ...]]:
        """Every body match, projected to the answer variables' term
        ids — *not* deduplicated and with no pushdown (consumers doing
        their own keying, e.g. the universality check, dedup on a
        coarser projection and need every match).

        Under ``kernel="vector"`` the same sequence comes back from the
        batch pipeline (order-exact); ``"wcoj"`` yields the same
        multiset in trie order."""
        _, _, project, slots, exec_ = self._resolved(instance)
        if self._unsatisfiable(instance, exec_.steps):
            return
        kernel = self._effective_kernel(instance)
        if kernel == "vector":
            yield from _kernels.run_batch(exec_, instance, slots, budget)
            return
        if kernel == "wcoj":
            yield from _kernels.run_wcoj(exec_, instance, slots, budget)
            return
        assign = exec_.fresh_assign()
        seen = 0
        for match in exec_.run(instance, assign):
            if budget is not None:
                seen += 1
                if not seen % _BUDGET_CHECK_EVERY:
                    budget.raise_if_exceeded()
            yield project(match)

    def answer_ids(
        self, instance: Instance, budget=None
    ) -> Iterator[Tuple[int, ...]]:
        """Deduplicated answer tuples in id space, in first-seen order
        (identical, set and order, to deduplicating the full
        enumeration — the pushdown only skips work that could not
        produce a new answer).

        ``budget`` (a :class:`repro.runtime.budget.Budget`) is checked
        every few prefix matches; a tripped budget raises
        :class:`~repro.errors.BudgetExceededError` — already-yielded
        answers are valid (evaluation is read-only, enumeration just
        stops early)."""
        prefix, suffix, project, slots, full = self._resolved(instance)
        if self._unsatisfiable(instance, full.steps):
            return
        kernel = self._effective_kernel(instance)
        seen: Set[Tuple[int, ...]] = set()
        add = seen.add
        if kernel == "vector":
            # Batch enumeration is order-exact, so first-seen dedup of
            # the batch equals the pushdown path byte-for-byte — and
            # run_batch_unique performs it at array speed.
            yield from _kernels.run_batch_unique(
                full, instance, slots, budget
            )
            return
        if kernel == "wcoj":
            for ids in _kernels.run_wcoj(full, instance, slots, budget):
                if ids not in seen:
                    add(ids)
                    yield ids
            return
        assign = prefix.fresh_assign()
        matches = 0
        if suffix is None:
            for match in prefix.run(instance, assign):
                if budget is not None:
                    matches += 1
                    if not matches % _BUDGET_CHECK_EVERY:
                        budget.raise_if_exceeded()
                ids = project(match)
                if ids not in seen:
                    add(ids)
                    yield ids
            return
        suffix_first = suffix.first
        for match in prefix.run(instance, assign):
            if budget is not None:
                matches += 1
                if not matches % _BUDGET_CHECK_EVERY:
                    budget.raise_if_exceeded()
            ids = project(match)
            if ids in seen:
                continue
            # The suffix probes from a copy: PlanExec.first abandons
            # its generator mid-enumeration, which may leave bindings
            # on the list it was given.
            if suffix_first(instance, list(match)):
                add(ids)
                yield ids

    def answers(
        self, instance: Instance, budget=None
    ) -> Iterator[Tuple[Term, ...]]:
        """Naive answers (nulls treated as values), decoded lazily —
        only tuples that survive the int-space dedup materialize."""
        obj = instance.symbols.obj
        for ids in self.answer_ids(instance, budget=budget):
            yield tuple(obj(tid) for tid in ids)

    def certain_ids(
        self, instance: Instance, budget=None
    ) -> Iterator[Tuple[int, ...]]:
        """Deduplicated null-free answer tuples in id space.

        Null-freeness is a per-id *kind* check: each distinct term id
        is classified once per instance, so filtering never decodes
        whole tuples just to drop them — and null-containing
        projections are dropped *before* the residual-join probe (a
        null answer can never become certain).
        """
        prefix, suffix, project, slots, full = self._resolved(instance)
        if self._unsatisfiable(instance, full.steps):
            return
        kinds = self._null_kinds(instance)
        obj = instance.symbols.obj
        kernel = self._effective_kernel(instance)
        if kernel in ("vector", "wcoj"):
            if kernel == "vector":
                # Already first-seen-deduplicated at array speed.
                projected = _kernels.run_batch_unique(
                    full, instance, slots, budget
                )
            else:
                projected = _kernels.run_wcoj(full, instance, slots, budget)
            batch_seen: Set[Tuple[int, ...]] = set()
            batch_add = batch_seen.add
            for ids in projected:
                if ids in batch_seen:
                    continue
                batch_add(ids)
                certain = True
                for tid in ids:
                    kind = kinds.get(tid)
                    if kind is None:
                        kind = kinds[tid] = isinstance(obj(tid), Null)
                    if kind:
                        certain = False
                        break
                if certain:
                    yield ids
            return
        assign = prefix.fresh_assign()
        seen: Set[Tuple[int, ...]] = set()
        add = seen.add
        suffix_first = suffix.first if suffix is not None else None
        matches = 0
        for match in prefix.run(instance, assign):
            if budget is not None:
                matches += 1
                if not matches % _BUDGET_CHECK_EVERY:
                    budget.raise_if_exceeded()
            ids = project(match)
            if ids in seen:
                continue
            certain = True
            for tid in ids:
                kind = kinds.get(tid)
                if kind is None:
                    kind = kinds[tid] = isinstance(obj(tid), Null)
                if kind:
                    certain = False
                    break
            if not certain:
                # Remember the verdict so later duplicates skip the
                # per-id checks too.
                add(ids)
                continue
            if suffix_first is not None and not suffix_first(
                instance, list(match)
            ):
                continue
            add(ids)
            yield ids

    def certain_answers(
        self, instance: Instance, budget=None
    ) -> List[Tuple[Term, ...]]:
        """Null-free answers, decoded and sorted for determinism (the
        certain answers of the query when ``instance`` is a universal
        model)."""
        obj = instance.symbols.obj
        out = [
            tuple(obj(tid) for tid in ids)
            for ids in self.certain_ids(instance, budget=budget)
        ]
        return sorted(out, key=lambda tup: tuple(str(t) for t in tup))

    def holds_in(self, instance: Instance, budget=None) -> bool:
        """Boolean evaluation: does any body match exist?"""
        prefix, suffix, project, slots, full = self._resolved(instance)
        if self._unsatisfiable(instance, full.steps):
            return False
        kernel = self._effective_kernel(instance)
        if kernel == "vector":
            return _kernels.batch_exists(full, instance, budget)
        if kernel == "wcoj":
            return _kernels.wcoj_exists(full, instance, budget)
        assign = prefix.fresh_assign()
        if suffix is None:
            return prefix.first(instance, assign)
        suffix_first = suffix.first
        matches = 0
        for match in prefix.run(instance, assign):
            if budget is not None:
                matches += 1
                if not matches % _BUDGET_CHECK_EVERY:
                    budget.raise_if_exceeded()
            if suffix_first(instance, list(match)):
                return True
        return False
