"""The unified query subsystem: cost-based, int-native planning and
execution for conjunctive queries, entailment, and chase discovery.

``repro.query`` owns join *ordering* for every consumer of conjunction
matching (:func:`~repro.query.planner.order_for` with the ``cost`` and
``heuristic`` policies) and the int-native evaluation surface
(:class:`~repro.query.compiled.CompiledQuery`).  The object-level
:func:`repro.model.homomorphisms` API is unchanged and remains the
compatibility surface and differential-test oracle.
"""

from .compiled import CompiledQuery
from .kernels import KERNELS, choose_kernel, is_cyclic, numpy_active
from .planner import (
    ORDER_POLICIES,
    estimate_extension,
    order_atoms_cost,
    order_for,
)

__all__ = [
    "KERNELS",
    "ORDER_POLICIES",
    "CompiledQuery",
    "choose_kernel",
    "estimate_extension",
    "is_cyclic",
    "numpy_active",
    "order_atoms_cost",
    "order_for",
]
