"""Batch execution kernels: vectorized hash joins and a worst-case-
optimal (leapfrog) multiway join over the interned int columns.

The tuple-at-a-time executor (:class:`repro.model.joinplan.PlanExec`)
pays a Python-level loop iteration per candidate row per join level.
This module adds the next speed tier (ROADMAP item 3): evaluate a
resolved step sequence as **columnar batch operations** — materialize
each relation once as a dense int matrix, filter constants and
repeated-variable positions with vectorized masks, and join whole
column arrays at a time with a sort-based vectorized hash join
(joint factorization + ``searchsorted`` range expansion).  NumPy is an
*optional* dependency: every kernel has a pure-Python batch fallback
(dict-based hash joins over the same column layout), selected
automatically when NumPy is missing or the ``REPRO_NO_NUMPY``
environment variable is set, and proven answer-identical by the
property suite.

Two kernels live here:

* **vector** (:func:`run_batch`) — pipelined hash joins following the
  planner's step order.  The join is *order-exact*: for each
  intermediate tuple (in order), matching candidate rows are emitted
  in relation insertion order, which is precisely the depth-first
  enumeration order of ``PlanExec.run``.  Batch results are therefore
  byte-identical, sequence included, to the tuple engine — the chase
  engines can swap it in for fat rounds without perturbing null
  naming, trigger keys, or fingerprints (``tests/test_kernels.py``
  holds it to order-exactness, not just set equality).

* **wcoj** (:func:`run_wcoj`) — a leapfrog-triejoin-style worst-case-
  optimal join for **cyclic** CQs, where every binary join plan is
  provably suboptimal (the AGM bound; Ngo–Porat–Ré–Rudra, Veldhuizen's
  LeapFrog TrieJoin).  Each atom's candidate rows are projected to its
  variables in one global variable order and sorted lexicographically
  (a flattened trie); evaluation intersects the per-variable sorted
  runs by leapfrogging ``searchsorted`` seeks, so a triangle query
  never materializes the quadratic binary intermediate.  Output order
  is the leapfrog order (sorted by term id along the variable order),
  *not* the tuple engine's — consumers get set-identical answers.

Kernel selection (``"auto"``) is cost-based from the columnar
statistics: cyclic join graphs (GYO reduction leaves a residue) pick
``wcoj``; fat multi-atom joins pick ``vector``; everything else stays
on the tuple engine, whose per-call overhead is unbeatable for small
inputs.  :class:`repro.query.compiled.CompiledQuery` and the chase's
delta discovery (:mod:`repro.chase.delta`) both route through here —
see ``kernel=`` on :class:`~repro.query.compiled.CompiledQuery`,
``--kernel`` on the CLI, and the fat-round gate in
:func:`repro.chase.delta.delta_triggers`.

Candidate matrices are cached per ``(pred, row-count, filter)`` in the
instance's plan cache: rows are append-only, so a matrix is valid as
long as the relation has not grown, and snapshot-bounded accessors
(``instance.rows_of``) keep every kernel watermark-consistent on
:class:`~repro.model.instances.SnapshotInstance` views.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..model.atoms import Atom
from ..model.instances import Instance
from ..model.joinplan import _RESOLVE_CACHE_CAP, PlanExec, ResolvedStep

#: The closed kernel vocabulary accepted by ``CompiledQuery(kernel=)``,
#: the CLI's ``--kernel`` flag, and the serve API.
KERNELS = ("tuple", "vector", "wcoj", "auto")

#: ``auto`` picks the vector kernel only when the conjunction's
#: relations hold at least this many rows in total — below it the
#: tuple engine's lower per-call overhead wins.
AUTO_VECTOR_MIN_ROWS = 2048

#: Joint key codes are re-factorized before a combine could overflow
#: this many bits (int64 is 63 usable bits; 62 leaves slack).
_CODE_BITS = 62

if os.environ.get("REPRO_NO_NUMPY"):
    _np = None
else:  # pragma: no branch
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - exercised via env gate
        _np = None


def numpy_active() -> bool:
    """True iff the vectorized (NumPy) paths are in use; False means
    every kernel runs its pure-Python batch fallback."""
    return _np is not None


# -- join-graph shape -------------------------------------------------------


def is_cyclic(atoms: Sequence[Atom]) -> bool:
    """True iff the conjunction's join graph is cyclic (not
    α-acyclic), decided by GYO ear removal.

    Hyperedges are the atoms' variable sets.  Repeatedly (a) drop
    variables occurring in exactly one edge and (b) drop edges
    contained in another edge; the query is acyclic iff the reduction
    empties the edge set.  Cyclic CQs (triangles and denser) are where
    binary join plans are provably suboptimal and ``auto`` selects the
    worst-case-optimal kernel.
    """
    edges: List[Set] = []
    for atom in atoms:
        vars_ = set(atom.variables())
        if vars_:
            edges.append(vars_)
    changed = True
    while changed and edges:
        changed = False
        counts: Dict = {}
        for edge in edges:
            for var in edge:
                counts[var] = counts.get(var, 0) + 1
        for edge in edges:
            lone = {v for v in edge if counts[v] == 1}
            if lone:
                edge -= lone
                changed = True
        kept: List[Set] = []
        for i, edge in enumerate(edges):
            if not edge:
                changed = True
                continue
            absorbed = False
            for j, other in enumerate(edges):
                if i == j or not other:
                    continue
                if edge < other or (edge == other and j < i):
                    absorbed = True
                    break
            if absorbed:
                changed = True
                continue
            kept.append(edge)
        edges = kept
    return bool(edges)


def choose_kernel(atoms: Sequence[Atom], instance: Instance) -> str:
    """The cost-based ``auto`` pick for one conjunction over one
    instance: ``wcoj`` for cyclic join graphs with at least three
    atoms, ``vector`` for fat multi-atom joins (total candidate rows
    at or above :data:`AUTO_VECTOR_MIN_ROWS`), ``tuple`` otherwise."""
    if len(atoms) >= 3 and is_cyclic(atoms):
        return "wcoj"
    if len(atoms) >= 2:
        total = 0
        for atom in atoms:
            total += instance.count_with_predicate(atom.predicate)
        if total >= AUTO_VECTOR_MIN_ROWS:
            return "vector"
    return "tuple"


# -- candidate materialization ----------------------------------------------


def _relation_matrix(instance: Instance, pid: int, arity: int):
    """The relation's rows as a dense ``(n, arity)`` int64 matrix
    (NumPy path), cached per ``(pid, row count)`` — append-only rows
    make the count a sufficient validity key, and snapshot-bounded
    ``rows_of`` keeps views watermark-consistent."""
    rows = instance.rows_of(pid)
    n = len(rows)
    cache = instance._plans
    key = ("kmat", pid, n)
    mat = cache.get(key)
    if mat is None:
        from itertools import chain

        if n:
            mat = _np.fromiter(
                chain.from_iterable(rows), dtype=_np.int64, count=n * arity
            ).reshape(n, arity)
        else:
            mat = _np.empty((0, arity), dtype=_np.int64)
        if len(cache) >= _RESOLVE_CACHE_CAP:
            cache.clear()
        cache[key] = mat
    return mat


def _step_filter_key(step: ResolvedStep) -> Tuple:
    return (
        step.const_checks,
        tuple((p0, rest) for _, p0, rest in step.groups),
    )


def _candidates_np(instance: Instance, step: ResolvedStep):
    """``step``'s candidate rows — constants and intra-atom repeated
    variables pre-verified — as a filtered matrix, cached per
    ``(pid, row count, filter)``."""
    rows = instance.rows_of(step.pid)
    n = len(rows)
    arity = len(step.build)
    cache = instance._plans
    key = ("kcand", step.pid, n, _step_filter_key(step))
    cand = cache.get(key)
    if cand is None:
        mat = _relation_matrix(instance, step.pid, arity)
        mask = None
        for pos, tid in step.const_checks:
            cond = mat[:, pos] == tid
            mask = cond if mask is None else (mask & cond)
        for _, p0, rest in step.groups:
            for p in rest:
                cond = mat[:, p] == mat[:, p0]
                mask = cond if mask is None else (mask & cond)
        cand = mat if mask is None else mat[mask]
        if len(cache) >= _RESOLVE_CACHE_CAP:
            cache.clear()
        cache[key] = cand
    return cand


def _candidates_py(
    instance: Instance, step: ResolvedStep
) -> List[Tuple[int, ...]]:
    """The pure-Python twin of :func:`_candidates_np`: a filtered row
    list in insertion order."""
    rows = instance.rows_of(step.pid)
    cache = instance._plans
    key = ("kcand-py", step.pid, len(rows), _step_filter_key(step))
    cand = cache.get(key)
    if cand is None:
        const_checks = step.const_checks
        groups = step.groups
        cand = []
        for row in rows:
            ok = True
            for pos, tid in const_checks:
                if row[pos] != tid:
                    ok = False
                    break
            if ok:
                for _, p0, rest in groups:
                    value = row[p0]
                    for p in rest:
                        if row[p] != value:
                            ok = False
                            break
                    if not ok:
                        break
            if ok:
                cand.append(row)
        if len(cache) >= _RESOLVE_CACHE_CAP:
            cache.clear()
        cache[key] = cand
    return cand


# -- the vectorized hash-join pipeline (NumPy path) -------------------------


def _join_codes_np(probe_cols, build_cols):
    """Joint factorization of a multi-column equi-join key: returns
    ``(probe_code, build_code)`` int64 arrays where equal codes mean
    equal key tuples.  Columns are factorized against the union of
    both sides so the code spaces line up; codes are re-factorized
    whenever a combine could overflow 62 bits."""
    np = _np
    pcode = None
    bcode = None
    width = 1
    for pc, bc in zip(probe_cols, build_cols):
        both = np.concatenate([pc, bc])
        uniq, inv = np.unique(both, return_inverse=True)
        base = len(uniq) + 1
        pinv = inv[: len(pc)]
        binv = inv[len(pc):]
        if pcode is None:
            pcode, bcode, width = pinv, binv, base
            continue
        if width * base >= 1 << _CODE_BITS:
            both = np.concatenate([pcode, bcode])
            uniq, inv = np.unique(both, return_inverse=True)
            pcode = inv[: len(pcode)]
            bcode = inv[len(pcode):]
            width = len(uniq) + 1
        pcode = pcode * base + pinv
        bcode = bcode * base + binv
        width *= base
    return pcode, bcode


def _expand_join_np(pcode, bcode):
    """The order-exact range expansion of a vectorized hash join:
    ``(probe_idx, build_idx)`` index arrays such that iterating them
    visits, for each probe tuple in order, its matching build rows in
    insertion order — exactly the tuple engine's DFS order."""
    np = _np
    order = np.argsort(bcode, kind="stable")
    sorted_codes = bcode[order]
    left = np.searchsorted(sorted_codes, pcode, side="left")
    right = np.searchsorted(sorted_codes, pcode, side="right")
    counts = right - left
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    probe_idx = np.repeat(np.arange(len(pcode), dtype=np.intp), counts)
    starts = np.repeat(left, counts)
    prefix = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.intp) - prefix
    build_idx = order[starts + within]
    return probe_idx, build_idx


class _BatchNp:
    """The NumPy batch state: one int64 column per bound slot, all of
    one length ``m`` (``m`` starts at 1 with zero columns — the single
    empty assignment)."""

    __slots__ = ("cols", "m")

    def __init__(self, cols: Dict[int, object], m: int):
        self.cols = cols
        self.m = m

    def apply(self, instance: Instance, step: ResolvedStep) -> bool:
        """Join one step in; False when the batch became empty."""
        np = _np
        cand = _candidates_np(instance, step)
        k = len(cand)
        cols = self.cols
        bound = [(slot, p0) for slot, p0, _ in step.groups if slot in cols]
        fresh = [
            (slot, p0) for slot, p0, _ in step.groups if slot not in cols
        ]
        if k == 0:
            self.m = 0
            return False
        if not bound:
            # No shared slots: an order-preserving cross product (for
            # an all-constant atom k is 0 or 1 — a semi-join).
            m = self.m
            if fresh:
                if cols:
                    probe_idx = np.repeat(np.arange(m, dtype=np.intp), k)
                    build_idx = np.tile(np.arange(k, dtype=np.intp), m)
                    for slot in list(cols):
                        cols[slot] = cols[slot][probe_idx]
                    for slot, p0 in fresh:
                        cols[slot] = cand[build_idx, p0]
                    self.m = m * k
                else:
                    for slot, p0 in fresh:
                        cols[slot] = cand[:, p0].copy()
                    self.m = k
            # No fresh slots either (pure existence check): k >= 1
            # rows survive the const filter, batch unchanged.
            return self.m > 0
        probe_cols = [cols[slot] for slot, _ in bound]
        build_cols = [cand[:, p0] for _, p0 in bound]
        pcode, bcode = _join_codes_np(probe_cols, build_cols)
        probe_idx, build_idx = _expand_join_np(pcode, bcode)
        if len(probe_idx) == 0:
            self.m = 0
            return False
        for slot in list(cols):
            cols[slot] = cols[slot][probe_idx]
        for slot, p0 in fresh:
            cols[slot] = cand[build_idx, p0]
        self.m = len(probe_idx)
        return True

    def project(self, slots: Sequence[int]) -> List[Tuple[int, ...]]:
        """The batch projected to ``slots`` as a list of int tuples,
        in batch (i.e. DFS-exact) order."""
        if self.m == 0:
            return []
        if not slots:
            return [()] * self.m
        np = _np
        stacked = np.stack([self.cols[s] for s in slots], axis=1)
        # tolist() converts to Python ints in C; the per-row
        # tuple(map(int, row)) alternative is ~10x slower and was the
        # difference between winning and losing the bench gate.
        return list(map(tuple, stacked.tolist()))


class _BatchPy:
    """The pure-Python twin of :class:`_BatchNp`: columns are plain
    lists, joins are dict-built hash joins — same pipeline, same
    order, no NumPy."""

    __slots__ = ("cols", "m")

    def __init__(self, cols: Dict[int, List[int]], m: int):
        self.cols = cols
        self.m = m

    def apply(self, instance: Instance, step: ResolvedStep) -> bool:
        cand = _candidates_py(instance, step)
        k = len(cand)
        cols = self.cols
        bound = [(slot, p0) for slot, p0, _ in step.groups if slot in cols]
        fresh = [
            (slot, p0) for slot, p0, _ in step.groups if slot not in cols
        ]
        if k == 0:
            self.m = 0
            return False
        if not bound:
            m = self.m
            if fresh:
                if cols:
                    for slot in list(cols):
                        old = cols[slot]
                        cols[slot] = [v for v in old for _ in range(k)]
                    for slot, p0 in fresh:
                        column = [row[p0] for row in cand]
                        cols[slot] = column * m
                    self.m = m * k
                else:
                    for slot, p0 in fresh:
                        cols[slot] = [row[p0] for row in cand]
                    self.m = k
            return self.m > 0
        # Build side: key tuple -> candidate indexes in insertion order.
        table: Dict[Tuple[int, ...], List[int]] = {}
        build_positions = [p0 for _, p0 in bound]
        for j, row in enumerate(cand):
            key = tuple(row[p] for p in build_positions)
            hit = table.get(key)
            if hit is None:
                table[key] = [j]
            else:
                hit.append(j)
        probe_cols = [cols[slot] for slot, _ in bound]
        probe_idx: List[int] = []
        build_idx: List[int] = []
        for i in range(self.m):
            key = tuple(col[i] for col in probe_cols)
            hit = table.get(key)
            if hit is not None:
                for j in hit:
                    probe_idx.append(i)
                    build_idx.append(j)
        if not probe_idx:
            self.m = 0
            return False
        for slot in list(cols):
            old = cols[slot]
            cols[slot] = [old[i] for i in probe_idx]
        for slot, p0 in fresh:
            cols[slot] = [cand[j][p0] for j in build_idx]
        self.m = len(probe_idx)
        return True

    def project(self, slots: Sequence[int]) -> List[Tuple[int, ...]]:
        if self.m == 0:
            return []
        if not slots:
            return [()] * self.m
        columns = [self.cols[s] for s in slots]
        return list(zip(*columns))


def _fresh_batch(seed_cols: Optional[Dict[int, Sequence[int]]] = None,
                 m: int = 1):
    """An empty (or seeded) batch on whichever engine is active."""
    if _np is not None:
        cols = {}
        if seed_cols:
            for slot, values in seed_cols.items():
                cols[slot] = _np.asarray(values, dtype=_np.int64)
        return _BatchNp(cols, m)
    cols_py: Dict[int, List[int]] = {}
    if seed_cols:
        for slot, values in seed_cols.items():
            cols_py[slot] = list(values)
    return _BatchPy(cols_py, m)


def run_batch(
    exec_: PlanExec,
    instance: Instance,
    answer_slots: Sequence[int],
    budget=None,
) -> List[Tuple[int, ...]]:
    """Evaluate ``exec_``'s step sequence as a batched hash-join
    pipeline and return every full match projected to ``answer_slots``
    — **not** deduplicated, in exactly the order ``exec_.run`` would
    enumerate (order-exactness is what lets the chase engines use this
    kernel without perturbing results)."""
    batch = _fresh_batch()
    for step in exec_.steps:
        if budget is not None:
            budget.raise_if_exceeded()
        if not batch.apply(instance, step):
            return []
    return batch.project(tuple(answer_slots))


def _row_codes_np(cols):
    """One int64 code per row of the column set, equal codes iff equal
    row tuples.  Term ids are non-negative, so ``max + 1`` is a valid
    mixed-radix base per column — one O(n) max instead of the O(n log n)
    per-column unique — with the same 62-bit overflow re-factorization
    as :func:`_join_codes_np` when the radix product grows too wide."""
    np = _np
    code = None
    width = 1
    for col in cols:
        base = (int(col.max()) if len(col) else 0) + 1
        if code is None:
            code, width = col, base
            continue
        if width * base >= 1 << _CODE_BITS:
            compressed, code = np.unique(code, return_inverse=True)
            width = len(compressed) + 1
        code = code * base + col
        width *= base
    return code


def run_batch_unique(
    exec_: PlanExec,
    instance: Instance,
    answer_slots: Sequence[int],
    budget=None,
) -> List[Tuple[int, ...]]:
    """:func:`run_batch` deduplicated to first occurrences, preserving
    first-seen order — byte-identical to deduplicating the tuple
    engine's enumeration (order-exactness again), but the dedup runs
    at array speed instead of one Python set probe per match."""
    batch = _fresh_batch()
    for step in exec_.steps:
        if budget is not None:
            budget.raise_if_exceeded()
        if not batch.apply(instance, step):
            return []
    slots = tuple(answer_slots)
    if batch.m == 0:
        return []
    if not slots:
        return [()]
    if _np is not None and isinstance(batch, _BatchNp):
        np = _np
        cols = [batch.cols[s] for s in slots]
        codes = _row_codes_np(cols)
        _, first = np.unique(codes, return_index=True)
        first.sort()
        stacked = np.stack(cols, axis=1)[first]
        return list(map(tuple, stacked.tolist()))
    seen = set()
    add = seen.add
    out: List[Tuple[int, ...]] = []
    for ids in batch.project(slots):
        if ids not in seen:
            add(ids)
            out.append(ids)
    return out


def batch_exists(exec_: PlanExec, instance: Instance, budget=None) -> bool:
    """Boolean evaluation on the vector kernel: does any full match
    exist?"""
    batch = _fresh_batch()
    for step in exec_.steps:
        if budget is not None:
            budget.raise_if_exceeded()
        if not batch.apply(instance, step):
            return False
    return batch.m > 0


def batch_rule_matches(
    instance: Instance,
    pivot_step: ResolvedStep,
    rest: Optional[PlanExec],
    pivot_rows: Sequence[Tuple[int, ...]],
    emit_slots: Sequence[int],
    budget=None,
) -> List[Tuple[int, ...]]:
    """The chase-discovery entry point: match ``pivot_rows`` against
    ``pivot_step``, join the rest-of-body steps in batch, and project
    each full match to ``emit_slots`` (the rule's sorted body
    variables) — in exactly the order the serial pivot-seeded loop
    yields them, so fat-round vectorized discovery is byte-identical
    to tuple-at-a-time discovery."""
    if not pivot_rows:
        return []
    # Seed: verify the pivot atom's constants and repeated variables
    # against each candidate row (the frontier hands in arbitrary rows
    # of the pivot's relation, in arrival order).
    const_checks = pivot_step.const_checks
    groups = pivot_step.groups
    if _np is not None:
        from itertools import chain

        arity = len(pivot_step.build)
        n = len(pivot_rows)
        mat = _np.fromiter(
            chain.from_iterable(pivot_rows),
            dtype=_np.int64,
            count=n * arity,
        ).reshape(n, arity)
        mask = None
        for pos, tid in const_checks:
            cond = mat[:, pos] == tid
            mask = cond if mask is None else (mask & cond)
        for _, p0, rest_pos in groups:
            for p in rest_pos:
                cond = mat[:, p] == mat[:, p0]
                mask = cond if mask is None else (mask & cond)
        if mask is not None:
            mat = mat[mask]
        if len(mat) == 0:
            return []
        seed = {slot: mat[:, p0] for slot, p0, _ in groups}
        batch = _BatchNp(dict(seed), len(mat))
    else:
        kept: List[Tuple[int, ...]] = []
        for row in pivot_rows:
            ok = True
            for pos, tid in const_checks:
                if row[pos] != tid:
                    ok = False
                    break
            if ok:
                for _, p0, rest_pos in groups:
                    value = row[p0]
                    for p in rest_pos:
                        if row[p] != value:
                            ok = False
                            break
                    if not ok:
                        break
            if ok:
                kept.append(row)
        if not kept:
            return []
        batch = _BatchPy(
            {slot: [row[p0] for row in kept] for slot, p0, _ in groups},
            len(kept),
        )
    if rest is not None:
        for step in rest.steps:
            if budget is not None:
                budget.raise_if_exceeded()
            if not batch.apply(instance, step):
                return []
    return batch.project(tuple(emit_slots))


# -- the worst-case-optimal (leapfrog) kernel -------------------------------


class _TrieNp:
    """One atom's flattened trie (NumPy path): candidate rows
    projected to the atom's variable slots in global order, sorted
    lexicographically and deduplicated.  ``cols[c]`` is the c-th
    projected column; windows on it are sorted once the first ``c``
    columns are fixed."""

    __slots__ = ("slots", "cols", "lists", "size")

    def __init__(self, instance: Instance, step: ResolvedStep,
                 global_order: Sequence[int]):
        np = _np
        rank = {slot: i for i, slot in enumerate(global_order)}
        ordered = sorted(
            ((slot, p0) for slot, p0, _ in step.groups),
            key=lambda pair: rank[pair[0]],
        )
        self.slots = tuple(slot for slot, _ in ordered)
        cand = _candidates_np(instance, step)
        if not ordered:
            # All-constant atom: a zero-column trie whose emptiness is
            # the existence verdict.
            self.cols = ()
            self.lists = ()
            self.size = len(cand)
            return
        proj = cand[:, [p0 for _, p0 in ordered]]
        if len(proj):
            keys = tuple(proj[:, c] for c in range(proj.shape[1] - 1, -1, -1))
            proj = proj[np.lexsort(keys)]
            if len(proj) > 1:
                distinct = np.any(proj[1:] != proj[:-1], axis=1)
                keep = np.empty(len(proj), dtype=bool)
                keep[0] = True
                keep[1:] = distinct
                proj = proj[keep]
        self.cols = tuple(
            np.ascontiguousarray(proj[:, c]) for c in range(proj.shape[1])
        )
        # Python-int mirrors: ``at`` runs once per leapfrog probe, and
        # a list index is ~10x cheaper than a NumPy scalar conversion.
        self.lists = tuple(col.tolist() for col in self.cols)
        self.size = len(proj)

    def seek(self, lo: int, hi: int, depth: int, value: int) -> int:
        """The first position in ``[lo, hi)`` whose ``depth``-th column
        is at least ``value``."""
        col = self.cols[depth]
        return lo + int(_np.searchsorted(col[lo:hi], value, side="left"))

    def at(self, pos: int, depth: int) -> int:
        return self.lists[depth][pos]


class _TriePy:
    """The pure-Python twin of :class:`_TrieNp` (bisect over sorted
    deduplicated projection tuples)."""

    __slots__ = ("slots", "rows", "size")

    def __init__(self, instance: Instance, step: ResolvedStep,
                 global_order: Sequence[int]):
        rank = {slot: i for i, slot in enumerate(global_order)}
        ordered = sorted(
            ((slot, p0) for slot, p0, _ in step.groups),
            key=lambda pair: rank[pair[0]],
        )
        self.slots = tuple(slot for slot, _ in ordered)
        cand = _candidates_py(instance, step)
        if not ordered:
            self.rows: List[Tuple[int, ...]] = []
            self.size = len(cand)
            return
        positions = [p0 for _, p0 in ordered]
        self.rows = sorted({tuple(row[p] for p in positions) for row in cand})
        self.size = len(self.rows)

    def seek(self, lo: int, hi: int, depth: int, value: int) -> int:
        return self._bisect(lo, hi, depth, value, True)

    def at(self, pos: int, depth: int) -> int:
        return self.rows[pos][depth]

    def _bisect(self, lo: int, hi: int, depth: int, value: int,
                left: bool) -> int:
        rows = self.rows
        while lo < hi:
            mid = (lo + hi) // 2
            cell = rows[mid][depth]
            if cell < value or (not left and cell == value):
                lo = mid + 1
            else:
                hi = mid
        return lo


#: Budget-check cadence inside the leapfrog recursion (per binding).
_WCOJ_CHECK_EVERY = 4096


def _wcoj_variable_order(steps: Sequence[ResolvedStep]) -> Tuple[int, ...]:
    """The global slot order: most-shared variables first (they prune
    hardest), slot number as the deterministic tie-break."""
    seen_in: Dict[int, int] = {}
    for step in steps:
        for slot, _, _ in step.groups:
            seen_in[slot] = seen_in.get(slot, 0) + 1
    return tuple(sorted(seen_in, key=lambda slot: (-seen_in[slot], slot)))


def _run_wcoj_impl(
    exec_: PlanExec,
    instance: Instance,
    answer_slots: Sequence[int],
    budget,
    first_only: bool,
):
    steps = exec_.steps
    order = _wcoj_variable_order(steps)
    trie_cls = _TrieNp if _np is not None else _TriePy
    tries = [trie_cls(instance, step, order) for step in steps]
    for trie in tries:
        if trie.size == 0:
            return []
    depth_parts: List[List[Tuple]] = []
    for d, slot in enumerate(order):
        parts = []
        for trie in tries:
            if slot in trie.slots:
                parts.append((trie, trie.slots.index(slot)))
        depth_parts.append(parts)
    n_slots = len(order)
    slot_value: Dict[int, int] = {}
    out: List[Tuple[int, ...]] = []
    answer = tuple(answer_slots)
    counter = [0]

    def recurse(depth: int, windows: Dict[int, Tuple[int, int]]) -> bool:
        """Returns True to stop the whole search (first_only hit)."""
        if depth == n_slots:
            out.append(tuple(slot_value[s] for s in answer))
            return first_only
        if budget is not None:
            counter[0] += 1
            if not counter[0] % _WCOJ_CHECK_EVERY:
                budget.raise_if_exceeded()
        parts = depth_parts[depth]
        slot = order[depth]
        # Leapfrog: intersect the participants' sorted runs at their
        # current column.
        states = []
        for trie, col in parts:
            lo, hi = windows[id(trie)]
            if lo >= hi:
                return False
            states.append([trie, col, lo, hi])
        while True:
            # Highest current head value across participants.
            value = None
            for state in states:
                trie, col, lo, hi = state
                head = trie.at(lo, col)
                if value is None or head > value:
                    value = head
            agreed = True
            for state in states:
                trie, col, lo, hi = state
                pos = trie.seek(lo, hi, col, value)
                state[2] = pos
                if pos >= hi:
                    return False
                if trie.at(pos, col) != value:
                    agreed = False
            if not agreed:
                continue
            # All participants carry ``value``: bind, narrow, recurse.
            # After the agreed seek each window's lo already sits on the
            # first occurrence of ``value``, so narrowing only needs the
            # run's upper edge (the first position of ``value + 1``).
            slot_value[slot] = value
            narrowed = dict(windows)
            for state in states:
                trie, col, lo, hi = state
                narrowed[id(trie)] = (lo, trie.seek(lo, hi, col, value + 1))
            if recurse(depth + 1, narrowed):
                return True
            # Advance past ``value`` on every participant: the narrowed
            # window's upper edge is exactly the position past the run.
            exhausted_after = False
            for state in states:
                state[2] = pos = narrowed[id(state[0])][1]
                if pos >= state[3]:
                    exhausted_after = True
            if exhausted_after:
                return False

    recurse(0, {id(trie): (0, trie.size) for trie in tries})
    return out


def run_wcoj(
    exec_: PlanExec,
    instance: Instance,
    answer_slots: Sequence[int],
    budget=None,
) -> List[Tuple[int, ...]]:
    """Evaluate ``exec_``'s conjunction with the leapfrog worst-case-
    optimal join and return the matches projected to ``answer_slots``.

    Bindings are enumerated in sorted-term-id order along the global
    variable order (the trie order), **not** the tuple engine's DFS
    order, and each distinct full binding is visited exactly once — so
    the projection may still contain duplicates (two bindings, one
    projection); callers dedup exactly as they would for the tuple
    engine."""
    return _run_wcoj_impl(exec_, instance, answer_slots, budget, False)


def wcoj_exists(exec_: PlanExec, instance: Instance, budget=None) -> bool:
    """Boolean evaluation on the worst-case-optimal kernel."""
    return bool(_run_wcoj_impl(exec_, instance, (), budget, True))
