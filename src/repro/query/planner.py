"""Cost-based join ordering from the columnar core's statistics.

PR 1's ``order_atoms`` ordered conjunctions by a fixed syntactic
heuristic: connected atoms first, then smallest relation, then fewest
new variables.  That ignores everything the interned columnar
:class:`~repro.model.instances.Instance` already knows for free:

* per-predicate row counts (``rows_of``);
* per-``(pred_id, position, term_id)`` posting-list lengths for every
  *constant* in the conjunction (``probe_rows``); and
* per-``(pred_id, position)`` distinct-value counts (``distinct_at``,
  maintained incrementally by ``add_row``), which bound the average
  posting-list length a *bound variable* will probe with.

This module is the single ordering entry point for the whole query
subsystem — CQ evaluation, universality checks, entailment's pattern
joins, and the chase engines' trigger discovery and head probes all
route through :func:`order_for`.  Two policies are offered:

* ``"cost"`` — greedy smallest-estimated-extension ordering: at each
  step pick the atom whose estimated number of matching rows *per
  intermediate tuple* (under the variables bound so far) is smallest.
  The estimate is join-dependent: row count times the product of
  per-position selectivities (see :func:`estimate_extension`), so an
  atom constrained at several positions ranks below one with a single
  good index even when that index is the best *individual* candidate
  list.  Ties break to the old heuristic's criteria and finally to
  body position, so the ordering is deterministic.
* ``"heuristic"`` — the PR 1 ordering, retained verbatim as the
  selectable fallback and the equivalence cross-check: any conjunction
  must produce the same answer *set* under both policies (the property
  tests hold the planner to that).

Orders are cached per instance in a fact-count-bucketed cache (see
:func:`order_for`): statistics drift as a chase grows, so a cached
order is reused only while the instance stays within the same power-of-
two fact-count bucket — repeated evaluation over a growing instance
replans O(log growth) times, not per call.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..model.atoms import Atom
from ..model.instances import Instance
from ..model.joinplan import _RESOLVE_CACHE_CAP
from ..model.joinplan import order_atoms as heuristic_order_atoms
from ..model.terms import Variable

ORDER_POLICIES = ("cost", "heuristic")
"""Join-order policies: ``cost`` plans from columnar statistics,
``heuristic`` is the retained PR 1 syntactic ordering."""


def estimate_extension(
    instance: Instance,
    atom: Atom,
    bound: FrozenSet[Variable],
) -> float:
    """Estimated rows of ``atom``'s relation matching one intermediate
    tuple that binds ``bound``.

    Join-dependent model: the relation's row count scaled by the
    *product* of per-position selectivities under the usual attribute-
    independence assumption — ``posting/rows`` for a constant position
    (the exact fraction of rows carrying that value) and
    ``1/distinct`` for a bound-variable position (the average fraction
    matching one given value; repeated variables *within* the atom
    constrain their later occurrences the same way).  An atom
    restricted at several positions therefore estimates lower than any
    single position suggests — which is what a multiway join actually
    delivers, and what the earlier single-best-index model (the min of
    those candidate lists) could not see.  For an atom restricted at
    one position the product collapses to exactly that old estimate.
    Unknown predicates and absent constants estimate 0 (the join is
    empty).
    """
    pid = instance.pred_id_get(atom.predicate)
    if pid is None:
        return 0.0
    rows = len(instance.rows_of(pid))
    if rows == 0:
        return 0.0
    estimate = float(rows)
    local: Set[Variable] = set()
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            if term in bound or term in local:
                distinct = instance.distinct_at(pid, position)
                if distinct:
                    estimate /= distinct
            local.add(term)
        else:
            tid = instance.term_id_get(term)
            if tid is None:
                return 0.0
            posting = len(instance.probe_rows(pid, position, tid))
            if posting == 0:
                return 0.0
            estimate *= posting / rows
    return estimate


def order_atoms_cost(
    atoms: Sequence[Atom],
    instance: Instance,
    bound: FrozenSet[Variable] = frozenset(),
) -> Tuple[Atom, ...]:
    """Greedy cardinality-driven join order.

    At each step the atom with the smallest estimated extension count
    under the variables bound so far wins; ties fall back to the old
    heuristic's criteria (connectedness, relation size, fewest new
    variables) and finally to body position, keeping the order
    deterministic for identical statistics.
    """
    remaining: List[Tuple[int, Atom, FrozenSet[Variable], int]] = [
        (
            index,
            atom,
            atom.variables(),
            instance.count_with_predicate(atom.predicate),
        )
        for index, atom in enumerate(atoms)
    ]
    ordered: List[Atom] = []
    seen: Set[Variable] = set(bound)
    while remaining:
        frozen_seen = frozenset(seen)

        def cost(entry) -> Tuple[float, bool, int, int, int]:
            index, atom, atom_vars, fan_out = entry
            disconnected = bool(atom_vars) and not (atom_vars & frozen_seen)
            return (
                estimate_extension(instance, atom, frozen_seen),
                disconnected,
                fan_out,
                len(atom_vars - frozen_seen),
                index,
            )

        best = min(remaining, key=cost)
        remaining.remove(best)
        ordered.append(best[1])
        seen |= best[2]
    return tuple(ordered)


def order_for(
    atoms: Sequence[Atom],
    instance: Instance,
    bound: FrozenSet[Variable] = frozenset(),
    policy: str = "cost",
) -> Tuple[Atom, ...]:
    """The planner's entry point: order ``atoms`` for ``instance``
    under ``policy``.

    Cost orders are cached per instance, keyed on the conjunction, the
    bound set, and the instance's power-of-two *fact-count bucket* —
    statistics shift as instances grow, so a cached order expires when
    the fact count crosses a bucket boundary and is replanned from the
    fresh statistics.  The heuristic policy delegates straight to the
    retained PR 1 ordering (cheap enough to recompute, and its own
    fan-out inputs are O(1) lookups).
    """
    if policy == "heuristic":
        return heuristic_order_atoms(atoms, instance, bound)
    if policy != "cost":
        raise ValueError(
            f"unknown order policy {policy!r}; expected one of "
            f"{ORDER_POLICIES}"
        )
    # Shares the instance's plan cache and its cap/clear discipline
    # (repro.model.joinplan): stale buckets linger only until a
    # cap-triggered clear, at most O(log growth) buckets exist per
    # conjunction, and an all-ad-hoc-query workload still cannot grow
    # the cache without bound.
    cache: Dict = instance._plans
    key = ("order", tuple(atoms), bound, len(instance).bit_length())
    ordered = cache.get(key)
    if ordered is None:
        ordered = order_atoms_cost(atoms, instance, bound)
        if len(cache) >= _RESOLVE_CACHE_CAP:
            cache.clear()
        cache[key] = ordered
    return ordered
