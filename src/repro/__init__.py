"""repro — chase termination for guarded existential rules.

A production-quality reproduction of

    Marco Calautti, Georg Gottlob, Andreas Pieris.
    "Chase Termination for Guarded Existential Rules", PODS 2015.

The library provides:

* a logical model of TGDs (existential rules), instances, and
  homomorphisms (:mod:`repro.model`);
* fair oblivious / semi-oblivious / restricted chase engines, critical
  instances, durable checkpoint/resume, and resident sessions with
  incremental maintenance (:mod:`repro.chase`);
* weak/rich acyclicity and the dependency graphs behind them
  (:mod:`repro.graphs`);
* the paper's termination deciders for simple-linear, linear, and
  guarded rule sets, with checkable certificates
  (:mod:`repro.termination`);
* propositional atom entailment and the looping-operator reduction
  (:mod:`repro.entailment`);
* runtime governance — resource budgets, cooperative cancellation,
  and fault-tolerant executors (:mod:`repro.runtime`);
* conjunctive queries and certain answers through a cost-based planner
  (:mod:`repro.query`, :mod:`repro.cq`), data exchange on top of the
  chase (:mod:`repro.exchange`), durable fact stores
  (:mod:`repro.storage`), an HTTP query server with incremental
  chase maintenance (:mod:`repro.serve`), a rule text format
  (:mod:`repro.parser`), and seeded workload generators
  (:mod:`repro.workloads`).

Quickstart::

    from repro import parse_program, decide_termination

    rules = parse_program("person(X) -> exists Y . father(X, Y), person(Y)")
    verdict = decide_termination(rules, variant="semi_oblivious")
    assert not verdict.terminating

Chase a database and read off certain answers::

    from repro import parse_database, parse_query, run_chase

    db = parse_database("person(ada)")
    result = run_chase(db, rules, "restricted")
    query = parse_query("q(X) :- father(X, Y)")
    answers = query.certain_answers(result.instance)

The narrative documentation lives in ``docs/ARCHITECTURE.md`` (the
engine, package by package, with its invariants) and ``docs/CLI.md``
(the ``python -m repro`` command reference).
"""

from .chase import (
    ChaseResult,
    ChaseSession,
    ChaseVariant,
    critical_instance,
    extend_chase,
    oblivious_chase,
    restricted_chase,
    resume_chase,
    run_chase,
    semi_oblivious_chase,
    standard_critical_instance,
)
from .classes import classify, narrowest_class
from .graphs import is_richly_acyclic, is_weakly_acyclic
from .model import (
    Atom,
    Constant,
    Database,
    Instance,
    Null,
    Predicate,
    Schema,
    TGD,
    Variable,
)
from .parser import (
    parse_atom,
    parse_database,
    parse_program,
    parse_query,
    parse_rule,
    program_to_text,
    rule_to_text,
)
from .cq import ConjunctiveQuery
from .query import CompiledQuery
from .runtime import STOP_REASONS, Budget, CancelToken
from .storage import FactStore, open_instance
from .termination import TerminationVerdict, decide_termination

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Budget",
    "CancelToken",
    "ChaseResult",
    "ChaseSession",
    "ChaseVariant",
    "CompiledQuery",
    "ConjunctiveQuery",
    "Constant",
    "Database",
    "FactStore",
    "Instance",
    "Null",
    "Predicate",
    "STOP_REASONS",
    "Schema",
    "TGD",
    "TerminationVerdict",
    "Variable",
    "__version__",
    "classify",
    "critical_instance",
    "decide_termination",
    "extend_chase",
    "is_richly_acyclic",
    "is_weakly_acyclic",
    "narrowest_class",
    "oblivious_chase",
    "open_instance",
    "parse_atom",
    "parse_database",
    "parse_program",
    "parse_query",
    "parse_rule",
    "program_to_text",
    "restricted_chase",
    "resume_chase",
    "rule_to_text",
    "run_chase",
    "semi_oblivious_chase",
    "standard_critical_instance",
]
