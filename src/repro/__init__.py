"""repro — chase termination for guarded existential rules.

A production-quality reproduction of

    Marco Calautti, Georg Gottlob, Andreas Pieris.
    "Chase Termination for Guarded Existential Rules", PODS 2015.

The library provides:

* a logical model of TGDs (existential rules), instances, and
  homomorphisms (:mod:`repro.model`);
* fair oblivious / semi-oblivious / restricted chase engines and
  critical instances (:mod:`repro.chase`);
* weak/rich acyclicity and the dependency graphs behind them
  (:mod:`repro.graphs`);
* the paper's termination deciders for simple-linear, linear, and
  guarded rule sets, with checkable certificates
  (:mod:`repro.termination`);
* propositional atom entailment and the looping-operator reduction
  (:mod:`repro.entailment`);
* runtime governance — resource budgets, cooperative cancellation,
  and fault-tolerant executors (:mod:`repro.runtime`);
* conjunctive queries and certain answers (:mod:`repro.cq`), data
  exchange on top of the chase (:mod:`repro.exchange`), a rule text
  format (:mod:`repro.parser`), and seeded workload generators
  (:mod:`repro.workloads`).

Quickstart::

    from repro import parse_program, decide_termination

    rules = parse_program("person(X) -> exists Y . father(X, Y), person(Y)")
    verdict = decide_termination(rules, variant="semi_oblivious")
    assert not verdict.terminating

"""

from .chase import (
    ChaseResult,
    ChaseVariant,
    critical_instance,
    oblivious_chase,
    restricted_chase,
    run_chase,
    semi_oblivious_chase,
    standard_critical_instance,
)
from .classes import classify, narrowest_class
from .graphs import is_richly_acyclic, is_weakly_acyclic
from .model import (
    Atom,
    Constant,
    Database,
    Instance,
    Null,
    Predicate,
    Schema,
    TGD,
    Variable,
)
from .parser import (
    parse_atom,
    parse_database,
    parse_program,
    parse_rule,
    program_to_text,
    rule_to_text,
)
from .runtime import STOP_REASONS, Budget, CancelToken
from .termination import TerminationVerdict, decide_termination

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Budget",
    "CancelToken",
    "ChaseResult",
    "ChaseVariant",
    "Constant",
    "Database",
    "Instance",
    "Null",
    "Predicate",
    "STOP_REASONS",
    "Schema",
    "TGD",
    "TerminationVerdict",
    "Variable",
    "__version__",
    "classify",
    "critical_instance",
    "decide_termination",
    "is_richly_acyclic",
    "is_weakly_acyclic",
    "narrowest_class",
    "oblivious_chase",
    "parse_atom",
    "parse_database",
    "parse_program",
    "parse_rule",
    "program_to_text",
    "restricted_chase",
    "rule_to_text",
    "run_chase",
    "semi_oblivious_chase",
    "standard_critical_instance",
]
