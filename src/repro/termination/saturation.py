"""Type saturation — the fixpoint core of the guarded decider (Thm 4).

For guarded Σ, the atoms derivable over a bag's terms depend only on
the bag's type.  Saturation computes, for every reachable type, the
full cloud of derivable patterns, accounting for

* *local* derivations — rule bodies mapping into the bag's cloud whose
  head atoms mention no existential variable land on the bag's own
  terms; and
* *up-propagation* — a child bag's subtree can derive atoms purely
  over terms the child inherited, which are therefore atoms over the
  parent's terms too.

The paper obtains the 2EXPTIME upper bound with an alternating
algorithm over this exact (doubly exponential) type space; alternation
over a finite space is equivalent to the memoized least fixpoint
computed here (see DESIGN.md, substitution ledger).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..chase.critical import (
    CRITICAL_CONSTANT,
    ONE_CONSTANT,
    ONE_PREDICATE,
    ZERO_CONSTANT,
    ZERO_PREDICATE,
)
from ..errors import BudgetExceededError, UnsupportedClassError
from ..model import (
    Constant,
    Instance,
    Predicate,
    Schema,
    TGD,
    Variable,
    program_constants,
    validate_program,
)
from .abstraction import (
    FRESH,
    AtomPattern,
    BagType,
    atom_to_pattern,
    cloud_index,
    naive_pattern_homomorphisms,
    pattern_homomorphisms,
)

DEFAULT_MAX_TYPES = 20_000

PATTERN_ENGINES = ("indexed", "naive")
"""Pattern-join engines: ``indexed`` runs bodies through the compiled
class-indexed join plans of :mod:`repro.termination.abstraction`;
``naive`` is the retained backtracking scan, kept selectable for
equivalence tests and as the benchmark baseline."""


class ChildEdge:
    """A bag-creating rule application, as a type-level transition.

    ``flow`` maps each *canonical* null class of the child to its
    source: a parent class id, or :data:`FRESH` for classes created by
    existential variables.  ``trigger_o`` / ``trigger_so`` are the
    parent classes read by the trigger under the oblivious /
    semi-oblivious identification policies.
    """

    __slots__ = ("source", "target", "rule", "rule_index", "flow",
                 "trigger_o", "trigger_so")

    def __init__(
        self,
        source: BagType,
        target: BagType,
        rule: TGD,
        rule_index: int,
        flow: Dict[int, int],
        trigger_o: FrozenSet[int],
        trigger_so: FrozenSet[int],
    ):
        self.source = source
        self.target = target
        self.rule = rule
        self.rule_index = rule_index
        self.flow = flow
        self.trigger_o = trigger_o
        self.trigger_so = trigger_so

    def trigger_classes(self, variant: str) -> FrozenSet[int]:
        """The parent classes the trigger reads under ``variant``.

        The restricted chase identifies triggers obliviously, so it
        shares the oblivious trigger footprint.
        """
        from ..chase.triggers import ChaseVariant

        if variant == ChaseVariant.SEMI_OBLIVIOUS:
            return self.trigger_so
        return self.trigger_o

    def dedup_key(self) -> Tuple:
        return (
            self.rule_index,
            self.target,
            tuple(sorted(self.flow.items())),
            self.trigger_o,
            self.trigger_so,
        )

    def __repr__(self) -> str:
        label = self.rule.label or f"rule{self.rule_index}"
        return f"ChildEdge({label}: {self.source!r} -> {self.target!r})"


class TypeAnalysis:
    """Saturated type space of a guarded program over its critical
    instance (plain or *standard*, per Theorem 4)."""

    def __init__(
        self,
        rules: Sequence[TGD],
        standard: bool = False,
        max_types: int = DEFAULT_MAX_TYPES,
        database: Optional[Instance] = None,
        pattern_engine: str = "indexed",
    ):
        """Analyse ``rules`` over the critical instance (default), the
        *standard* critical instance (``standard=True``), or a concrete
        ``database`` root — the latter turns saturation into the
        guarded atom-entailment engine of :mod:`repro.entailment`.

        ``pattern_engine`` selects how rule bodies are joined against
        clouds (see :data:`PATTERN_ENGINES`); both engines compute the
        same assignment sets."""
        rules = list(rules)
        validate_program(rules)
        for rule in rules:
            if not rule.is_guarded():
                raise UnsupportedClassError(
                    f"type analysis requires guarded rules; offending: {rule}"
                )
        if standard and database is not None:
            raise ValueError("standard and database roots are exclusive")
        if pattern_engine not in PATTERN_ENGINES:
            raise ValueError(
                f"unknown pattern engine {pattern_engine!r}; "
                f"expected one of {PATTERN_ENGINES}"
            )
        self.rules = rules
        self.standard = standard
        self.database = database
        self.max_types = max_types
        self.pattern_engine = pattern_engine
        self._pattern_homs = (
            pattern_homomorphisms
            if pattern_engine == "indexed"
            else naive_pattern_homomorphisms
        )
        # How many body-vs-cloud joins saturation executed — surfaced
        # through TransitionGraph.stats() for certificates/benchmarks.
        self.pattern_joins = 0
        constants: Set[Constant] = set(program_constants(rules))
        schema = Schema.from_rules(rules)
        if database is not None:
            constants |= set(database.constants())
            if database.nulls():
                raise ValueError("the root database must be null-free")
            schema = schema.merge(database.schema())
        else:
            constants.add(CRITICAL_CONSTANT)
        if standard:
            constants |= {ZERO_CONSTANT, ONE_CONSTANT}
            schema = schema.merge(Schema([ZERO_PREDICATE, ONE_PREDICATE]))
        self.schema = schema
        self.constants: Tuple[Constant, ...] = tuple(sorted(constants))
        self.constant_class: Dict[Constant, int] = {
            c: i for i, c in enumerate(self.constants)
        }
        self.num_constants = len(self.constants)
        self.root = self._root_type()
        # Saturated cloud per creation type; grows monotonically.
        self.table: Dict[BagType, FrozenSet[AtomPattern]] = {}
        self._saturated = False

    # -- construction ---------------------------------------------------

    def _root_type(self) -> BagType:
        """The root bag: the critical instance (all facts over the
        constants) or the supplied database."""
        cloud: List[AtomPattern] = []
        if self.database is not None:
            for fact in self.database:
                cloud.append(
                    (
                        fact.predicate,
                        tuple(self.constant_class[t] for t in fact.terms),
                    )
                )
            return BagType(self.num_constants, 0, cloud)
        for pred in self.schema:
            for combo in itertools.product(
                range(self.num_constants), repeat=pred.arity
            ):
                cloud.append((pred, tuple(combo)))
        return BagType(self.num_constants, 0, cloud)

    def saturate(self) -> None:
        """Run the global least fixpoint; idempotent."""
        if self._saturated:
            return
        self.table[self.root] = self.root.cloud
        changed = True
        while changed:
            changed = False
            for bag_type in list(self.table):
                types_before = len(self.table)
                new_cloud = self._saturate_one(bag_type)
                if new_cloud != self.table[bag_type]:
                    self.table[bag_type] = new_cloud
                    changed = True
                if len(self.table) != types_before:
                    # Newly discovered child types need their own pass.
                    changed = True
        self._saturated = True

    def _register(self, bag_type: BagType) -> None:
        if bag_type not in self.table:
            if len(self.table) >= self.max_types:
                raise BudgetExceededError(
                    f"type budget exhausted ({self.max_types} types); the "
                    "guarded procedure is 2EXPTIME-complete — raise "
                    "max_types if this input is expected to be this large"
                )
            self.table[bag_type] = bag_type.cloud

    def _snapshot(self, cloud: FrozenSet[AtomPattern]):
        """The pattern-join input for the configured engine: the
        class-indexed form (built once, cached) for ``indexed``, the
        raw frozenset for ``naive``."""
        if self.pattern_engine == "indexed":
            return cloud_index(cloud)
        return cloud

    def _saturate_one(self, bag_type: BagType) -> FrozenSet[AtomPattern]:
        """One saturation pass for a single type, against the current
        global table.  Registers newly discovered child types."""
        cloud: Set[AtomPattern] = set(self.table[bag_type])
        while True:
            before = len(cloud)
            # One snapshot per fixpoint iteration: every rule joins
            # against the iteration-start cloud (additions made while a
            # rule's assignments are enumerated become visible next
            # iteration, never mid-enumeration).
            snapshot = self._snapshot(frozenset(cloud))
            for rule_index, rule in enumerate(self.rules):
                self.pattern_joins += 1
                for assignment in self._pattern_homs(
                    rule.body, snapshot, self.constant_class
                ):
                    self._apply_local(rule, assignment, cloud)
                    if rule.existential_variables:
                        edge = self._make_child(
                            bag_type, cloud, rule, rule_index, assignment
                        )
                        self._register(edge.target)
                        self._lift_child_atoms(edge, cloud)
            if len(cloud) == before:
                return frozenset(cloud)

    def _apply_local(
        self,
        rule: TGD,
        assignment: Dict[Variable, int],
        cloud: Set[AtomPattern],
    ) -> None:
        """Add head atoms free of existential variables to ``cloud``."""
        for atom in rule.head:
            if atom.variables() & rule.existential_variables:
                continue
            cloud.add(
                atom_to_pattern(atom, assignment, self.constant_class)
            )

    def _make_child(
        self,
        parent: BagType,
        parent_cloud: Iterable[AtomPattern],
        rule: TGD,
        rule_index: int,
        assignment: Dict[Variable, int],
    ) -> ChildEdge:
        """The type-level child bag created by applying ``rule`` under
        ``assignment`` to a bag whose cloud currently is
        ``parent_cloud`` (iterated once; a live set is fine)."""
        g = self.num_constants
        inherited = sorted(
            {assignment[v] for v in rule.frontier if assignment[v] >= g}
        )
        inherit_map = {old: g + i for i, old in enumerate(inherited)}
        existentials = sorted(rule.existential_variables)
        child_assignment: Dict[Variable, int] = {}
        for var in rule.frontier:
            cls = assignment[var]
            child_assignment[var] = inherit_map.get(cls, cls)
        flow_raw: List[int] = list(inherited)
        for offset, var in enumerate(existentials):
            child_assignment[var] = g + len(inherited) + offset
            flow_raw.append(FRESH)
        raw_cloud: Set[AtomPattern] = set()
        for atom in rule.head:
            raw_cloud.add(
                atom_to_pattern(atom, child_assignment, self.constant_class)
            )
        # Inherit every parent atom lying entirely over inherited terms.
        inherited_set = set(inherit_map)
        for pred, classes in parent_cloud:
            if all(c < g or c in inherited_set for c in classes):
                raw_cloud.add(
                    (pred, tuple(inherit_map.get(c, c) for c in classes))
                )
        child = BagType(g, len(flow_raw), raw_cloud)
        flow: Dict[int, int] = {}
        for i, source in enumerate(flow_raw):
            flow[child.canonical_map[i]] = source
        trigger_o = frozenset(assignment[v] for v in rule.body_variables)
        trigger_so = frozenset(assignment[v] for v in rule.frontier)
        return ChildEdge(
            parent, child, rule, rule_index, flow, trigger_o, trigger_so
        )

    def _lift_child_atoms(
        self, edge: ChildEdge, cloud: Set[AtomPattern]
    ) -> None:
        """Up-propagation: atoms of the child's saturated cloud lying
        entirely over inherited (or constant) classes are atoms over
        the parent's terms."""
        child_cloud = self.table.get(edge.target, edge.target.cloud)
        g = self.num_constants
        back = {
            child_cls: parent_cls
            for child_cls, parent_cls in edge.flow.items()
            if parent_cls != FRESH
        }
        for pred, classes in child_cloud:
            mapped: List[int] = []
            ok = True
            for c in classes:
                if c < g:
                    mapped.append(c)
                else:
                    source = back.get(c)
                    if source is None:
                        ok = False
                        break
                    mapped.append(source)
            if ok:
                cloud.add((pred, tuple(mapped)))

    # -- post-saturation queries ----------------------------------------

    def saturated_cloud(self, bag_type: BagType) -> FrozenSet[AtomPattern]:
        """The saturated cloud of ``bag_type`` (must be registered)."""
        self.saturate()
        return self.table[bag_type]

    def child_edges(self, bag_type: BagType) -> List[ChildEdge]:
        """All deduplicated bag-creating transitions out of a type,
        computed against its *saturated* cloud."""
        self.saturate()
        cloud = self.table[bag_type]
        snapshot = self._snapshot(cloud)
        seen: Set[Tuple] = set()
        edges: List[ChildEdge] = []
        for rule_index, rule in enumerate(self.rules):
            if not rule.existential_variables:
                continue
            self.pattern_joins += 1
            for assignment in self._pattern_homs(
                rule.body, snapshot, self.constant_class
            ):
                edge = self._make_child(
                    bag_type, cloud, rule, rule_index, assignment
                )
                key = edge.dedup_key()
                if key not in seen:
                    seen.add(key)
                    edges.append(edge)
        return edges

    def type_count(self) -> int:
        """How many types saturation discovered."""
        self.saturate()
        return len(self.table)
