"""Type saturation — the fixpoint core of the guarded decider (Thm 4).

For guarded Σ, the atoms derivable over a bag's terms depend only on
the bag's type.  Saturation computes, for every reachable type, the
full cloud of derivable patterns, accounting for

* *local* derivations — rule bodies mapping into the bag's cloud whose
  head atoms mention no existential variable land on the bag's own
  terms; and
* *up-propagation* — a child bag's subtree can derive atoms purely
  over terms the child inherited, which are therefore atoms over the
  parent's terms too.

The paper obtains the 2EXPTIME upper bound with an alternating
algorithm over this exact (doubly exponential) type space; alternation
over a finite space is equivalent to the memoized least fixpoint
computed here (see DESIGN.md, substitution ledger).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..chase.critical import (
    CRITICAL_CONSTANT,
    ONE_CONSTANT,
    ONE_PREDICATE,
    ZERO_CONSTANT,
    ZERO_PREDICATE,
)
from ..chase.scheduler import SchedulerSpec, resolve_scheduler
from ..errors import BudgetExceededError, UnsupportedClassError
from ..model import (
    Constant,
    Instance,
    Schema,
    TGD,
    Variable,
    program_constants,
    validate_program,
)
from .abstraction import (
    FRESH,
    AtomPattern,
    BagType,
    atom_to_pattern,
    cloud_index,
    naive_pattern_homomorphisms,
    pattern_homomorphisms,
)

DEFAULT_MAX_TYPES = 20_000

PATTERN_ENGINES = ("indexed", "naive")
"""Pattern-join engines: ``indexed`` runs bodies through the compiled
class-indexed join plans of :mod:`repro.termination.abstraction`;
``naive`` is the retained backtracking scan, kept selectable for
equivalence tests and as the benchmark baseline."""


class ChildEdge:
    """A bag-creating rule application, as a type-level transition.

    ``flow`` maps each *canonical* null class of the child to its
    source: a parent class id, or :data:`FRESH` for classes created by
    existential variables.  ``trigger_o`` / ``trigger_so`` are the
    parent classes read by the trigger under the oblivious /
    semi-oblivious identification policies.
    """

    __slots__ = ("source", "target", "rule", "rule_index", "flow",
                 "trigger_o", "trigger_so")

    def __init__(
        self,
        source: BagType,
        target: BagType,
        rule: TGD,
        rule_index: int,
        flow: Dict[int, int],
        trigger_o: FrozenSet[int],
        trigger_so: FrozenSet[int],
    ):
        self.source = source
        self.target = target
        self.rule = rule
        self.rule_index = rule_index
        self.flow = flow
        self.trigger_o = trigger_o
        self.trigger_so = trigger_so

    def trigger_classes(self, variant: str) -> FrozenSet[int]:
        """The parent classes the trigger reads under ``variant``.

        The restricted chase identifies triggers obliviously, so it
        shares the oblivious trigger footprint.
        """
        from ..chase.triggers import ChaseVariant

        if variant == ChaseVariant.SEMI_OBLIVIOUS:
            return self.trigger_so
        return self.trigger_o

    def dedup_key(self) -> Tuple:
        return (
            self.rule_index,
            self.target,
            tuple(sorted(self.flow.items())),
            self.trigger_o,
            self.trigger_so,
        )

    def __repr__(self) -> str:
        label = self.rule.label or f"rule{self.rule_index}"
        return f"ChildEdge({label}: {self.source!r} -> {self.target!r})"


class TypeAnalysis:
    """Saturated type space of a guarded program over its critical
    instance (plain or *standard*, per Theorem 4)."""

    def __init__(
        self,
        rules: Sequence[TGD],
        standard: bool = False,
        max_types: int = DEFAULT_MAX_TYPES,
        database: Optional[Instance] = None,
        pattern_engine: str = "indexed",
        order_policy: str = "cost",
        scheduler: SchedulerSpec = None,
        workers: Optional[int] = None,
        budget=None,
    ):
        """Analyse ``rules`` over the critical instance (default), the
        *standard* critical instance (``standard=True``), or a concrete
        ``database`` root — the latter turns saturation into the
        guarded atom-entailment engine of :mod:`repro.entailment`.

        ``pattern_engine`` selects how rule bodies are joined against
        clouds (see :data:`PATTERN_ENGINES`); both engines compute the
        same assignment sets.  ``order_policy`` selects the planner's
        join ordering for the ``indexed`` engine
        (:data:`repro.query.planner.ORDER_POLICIES`; ``cost`` plans
        from the cloud's columnar statistics, ``heuristic`` is the
        retained PR 1 ordering — assignment sets are identical).

        ``scheduler`` / ``workers`` batch the body-vs-cloud joins of
        each saturation pass across rules
        (:mod:`repro.chase.scheduler`): the joins of one pass all read
        the same immutable cloud snapshot, so they are executor-
        independent, and their results are applied serially in rule
        order — the saturated table, discovered types, and edge order
        are identical under every executor.  Call :meth:`close` (or
        use ``decide_guarded``, which does) to release pools created
        here."""
        rules = list(rules)
        validate_program(rules)
        for rule in rules:
            if not rule.is_guarded():
                raise UnsupportedClassError(
                    f"type analysis requires guarded rules; offending: {rule}"
                )
        if standard and database is not None:
            raise ValueError("standard and database roots are exclusive")
        if pattern_engine not in PATTERN_ENGINES:
            raise ValueError(
                f"unknown pattern engine {pattern_engine!r}; "
                f"expected one of {PATTERN_ENGINES}"
            )
        self.rules = rules
        self.standard = standard
        self.database = database
        self.max_types = max_types
        if order_policy not in ("cost", "heuristic"):
            raise ValueError(f"unknown order policy {order_policy!r}")
        self.pattern_engine = pattern_engine
        self.order_policy = order_policy
        if pattern_engine == "indexed":
            def _homs(body, snapshot, constant_class):
                return pattern_homomorphisms(
                    body, snapshot, constant_class, policy=order_policy
                )

            self._pattern_homs = _homs
        else:
            self._pattern_homs = naive_pattern_homomorphisms
        # How many body-vs-cloud joins saturation executed — surfaced
        # through TransitionGraph.stats() for certificates/benchmarks.
        self.pattern_joins = 0
        # ``budget`` governs saturation (deadline / memory ceiling /
        # cancellation on top of ``max_types``); checked once per
        # fixpoint pass over a bag type.
        self.budget = budget
        constants: Set[Constant] = set(program_constants(rules))
        schema = Schema.from_rules(rules)
        if database is not None:
            constants |= set(database.constants())
            if database.nulls():
                raise ValueError("the root database must be null-free")
            schema = schema.merge(database.schema())
        else:
            constants.add(CRITICAL_CONSTANT)
        if standard:
            constants |= {ZERO_CONSTANT, ONE_CONSTANT}
            schema = schema.merge(Schema([ZERO_PREDICATE, ONE_PREDICATE]))
        self.schema = schema
        self.constants: Tuple[Constant, ...] = tuple(sorted(constants))
        self.constant_class: Dict[Constant, int] = {
            c: i for i, c in enumerate(self.constants)
        }
        self.num_constants = len(self.constants)
        self.root = self._root_type()
        # Saturated cloud per creation type; grows monotonically.
        self.table: Dict[BagType, FrozenSet[AtomPattern]] = {}
        self._saturated = False
        # The scheduler (and its worker pool) is resolved *last*: every
        # validation above may raise, and a pool spawned before a raise
        # would be stranded — the caller never gets an object to close.
        self._scheduler, self._owns_scheduler = resolve_scheduler(
            scheduler, workers
        )

    def close(self) -> None:
        """Release any executor pools this analysis created."""
        if self._owns_scheduler:
            self._scheduler.close()

    # -- construction ---------------------------------------------------

    def _root_type(self) -> BagType:
        """The root bag: the critical instance (all facts over the
        constants) or the supplied database."""
        cloud: List[AtomPattern] = []
        if self.database is not None:
            for fact in self.database:
                cloud.append(
                    (
                        fact.predicate,
                        tuple(self.constant_class[t] for t in fact.terms),
                    )
                )
            return BagType(self.num_constants, 0, cloud)
        for pred in self.schema:
            for combo in itertools.product(
                range(self.num_constants), repeat=pred.arity
            ):
                cloud.append((pred, tuple(combo)))
        return BagType(self.num_constants, 0, cloud)

    def saturate(self) -> None:
        """Run the global least fixpoint; idempotent.

        Raises :class:`~repro.errors.BudgetExceededError` when the type
        space outgrows ``max_types`` or the attached ``budget`` trips
        (deadline, memory, cancellation); the table is left in a
        consistent (if unsaturated) state either way.
        """
        if self._saturated:
            return
        budget = self.budget
        if budget is not None:
            budget.start()
        self.table[self.root] = self.root.cloud
        changed = True
        while changed:
            changed = False
            for bag_type in list(self.table):
                if budget is not None:
                    budget.raise_if_exceeded(facts=len(self.table))
                types_before = len(self.table)
                new_cloud = self._saturate_one(bag_type)
                if new_cloud != self.table[bag_type]:
                    self.table[bag_type] = new_cloud
                    changed = True
                if len(self.table) != types_before:
                    # Newly discovered child types need their own pass.
                    changed = True
            if budget is not None:
                budget.note_round()
        self._saturated = True

    def _register(self, bag_type: BagType) -> None:
        if bag_type not in self.table:
            if len(self.table) >= self.max_types:
                raise BudgetExceededError(
                    f"type budget exhausted ({self.max_types} types); the "
                    "guarded procedure is 2EXPTIME-complete — raise "
                    "max_types if this input is expected to be this large",
                    stop_reason="step_budget",
                    stats={"types": len(self.table)},
                )
            self.table[bag_type] = bag_type.cloud

    def _snapshot(self, cloud: FrozenSet[AtomPattern]):
        """The pattern-join input for the configured engine: the
        class-indexed form (built once, cached) for ``indexed``, the
        raw frozenset for ``naive``."""
        if self.pattern_engine == "indexed":
            return cloud_index(cloud)
        return cloud

    def _joined_assignments(
        self,
        indexed_rules: Sequence[Tuple[int, TGD]],
        cloud: FrozenSet[AtomPattern],
    ) -> List[List[Dict[Variable, int]]]:
        """Body-vs-cloud assignments for each listed rule, in listing
        order — one batched join pass over an immutable cloud.

        The joins are pure reads of the snapshot, so the configured
        scheduler may run them in any interleaving; results are
        returned (and applied by the callers) in rule order, keeping
        saturation byte-identical across executors.
        """
        self.pattern_joins += len(indexed_rules)
        scheduler = self._scheduler
        if scheduler.kind == "process" and len(indexed_rules) > 1:
            payloads = [
                (
                    [rule.body for _, rule in chunk],
                    cloud,
                    self.constant_class,
                    self.pattern_engine,
                    self.order_policy,
                )
                for chunk in _chunk_rules(
                    list(indexed_rules), scheduler.workers
                )
            ]
            out: List[List[Dict[Variable, int]]] = []
            for chunk_result in scheduler.map(
                _pattern_join_remote, payloads
            ):
                out.extend(chunk_result)
            return out
        snapshot = self._snapshot(cloud)
        homs = self._pattern_homs
        constant_class = self.constant_class
        return scheduler.map(
            lambda pair: list(homs(pair[1].body, snapshot, constant_class)),
            list(indexed_rules),
        )

    def _saturate_one(self, bag_type: BagType) -> FrozenSet[AtomPattern]:
        """One saturation pass for a single type, against the current
        global table.  Registers newly discovered child types."""
        cloud: Set[AtomPattern] = set(self.table[bag_type])
        indexed_rules = list(enumerate(self.rules))
        while True:
            before = len(cloud)
            # One snapshot per fixpoint iteration: every rule joins
            # against the iteration-start cloud (additions made while a
            # rule's assignments are enumerated become visible next
            # iteration, never mid-enumeration).  The joins read only
            # that snapshot, so the scheduler may batch them across
            # rules; the mutating apply pass below stays serial in
            # rule-major assignment order — exactly the serial engine's
            # sequence.
            assignment_lists = self._joined_assignments(
                indexed_rules, frozenset(cloud)
            )
            for (rule_index, rule), assignments in zip(
                indexed_rules, assignment_lists
            ):
                for assignment in assignments:
                    self._apply_local(rule, assignment, cloud)
                    if rule.existential_variables:
                        edge = self._make_child(
                            bag_type, cloud, rule, rule_index, assignment
                        )
                        self._register(edge.target)
                        self._lift_child_atoms(edge, cloud)
            if len(cloud) == before:
                return frozenset(cloud)

    def _apply_local(
        self,
        rule: TGD,
        assignment: Dict[Variable, int],
        cloud: Set[AtomPattern],
    ) -> None:
        """Add head atoms free of existential variables to ``cloud``."""
        for atom in rule.head:
            if atom.variables() & rule.existential_variables:
                continue
            cloud.add(
                atom_to_pattern(atom, assignment, self.constant_class)
            )

    def _make_child(
        self,
        parent: BagType,
        parent_cloud: Iterable[AtomPattern],
        rule: TGD,
        rule_index: int,
        assignment: Dict[Variable, int],
    ) -> ChildEdge:
        """The type-level child bag created by applying ``rule`` under
        ``assignment`` to a bag whose cloud currently is
        ``parent_cloud`` (iterated once; a live set is fine)."""
        g = self.num_constants
        inherited = sorted(
            {assignment[v] for v in rule.frontier if assignment[v] >= g}
        )
        inherit_map = {old: g + i for i, old in enumerate(inherited)}
        existentials = sorted(rule.existential_variables)
        child_assignment: Dict[Variable, int] = {}
        for var in rule.frontier:
            cls = assignment[var]
            child_assignment[var] = inherit_map.get(cls, cls)
        flow_raw: List[int] = list(inherited)
        for offset, var in enumerate(existentials):
            child_assignment[var] = g + len(inherited) + offset
            flow_raw.append(FRESH)
        raw_cloud: Set[AtomPattern] = set()
        for atom in rule.head:
            raw_cloud.add(
                atom_to_pattern(atom, child_assignment, self.constant_class)
            )
        # Inherit every parent atom lying entirely over inherited terms.
        inherited_set = set(inherit_map)
        for pred, classes in parent_cloud:
            if all(c < g or c in inherited_set for c in classes):
                raw_cloud.add(
                    (pred, tuple(inherit_map.get(c, c) for c in classes))
                )
        child = BagType(g, len(flow_raw), raw_cloud)
        flow: Dict[int, int] = {}
        for i, source in enumerate(flow_raw):
            flow[child.canonical_map[i]] = source
        trigger_o = frozenset(assignment[v] for v in rule.body_variables)
        trigger_so = frozenset(assignment[v] for v in rule.frontier)
        return ChildEdge(
            parent, child, rule, rule_index, flow, trigger_o, trigger_so
        )

    def _lift_child_atoms(
        self, edge: ChildEdge, cloud: Set[AtomPattern]
    ) -> None:
        """Up-propagation: atoms of the child's saturated cloud lying
        entirely over inherited (or constant) classes are atoms over
        the parent's terms."""
        child_cloud = self.table.get(edge.target, edge.target.cloud)
        g = self.num_constants
        back = {
            child_cls: parent_cls
            for child_cls, parent_cls in edge.flow.items()
            if parent_cls != FRESH
        }
        for pred, classes in child_cloud:
            mapped: List[int] = []
            ok = True
            for c in classes:
                if c < g:
                    mapped.append(c)
                else:
                    source = back.get(c)
                    if source is None:
                        ok = False
                        break
                    mapped.append(source)
            if ok:
                cloud.add((pred, tuple(mapped)))

    # -- post-saturation queries ----------------------------------------

    def saturated_cloud(self, bag_type: BagType) -> FrozenSet[AtomPattern]:
        """The saturated cloud of ``bag_type`` (must be registered)."""
        self.saturate()
        return self.table[bag_type]

    def child_edges(self, bag_type: BagType) -> List[ChildEdge]:
        """All deduplicated bag-creating transitions out of a type,
        computed against its *saturated* cloud."""
        self.saturate()
        cloud = self.table[bag_type]
        creating = [
            (rule_index, rule)
            for rule_index, rule in enumerate(self.rules)
            if rule.existential_variables
        ]
        if not creating:
            return []
        assignment_lists = self._joined_assignments(creating, cloud)
        seen: Set[Tuple] = set()
        edges: List[ChildEdge] = []
        for (rule_index, rule), assignments in zip(
            creating, assignment_lists
        ):
            for assignment in assignments:
                edge = self._make_child(
                    bag_type, cloud, rule, rule_index, assignment
                )
                key = edge.dedup_key()
                if key not in seen:
                    seen.add(key)
                    edges.append(edge)
        return edges

    def type_count(self) -> int:
        """How many types saturation discovered."""
        self.saturate()
        return len(self.table)


# -- process-executor plumbing ---------------------------------------------


def _chunk_rules(
    indexed_rules: List[Tuple[int, TGD]], chunks: int
) -> List[List[Tuple[int, TGD]]]:
    """Contiguous, order-preserving near-equal runs of rules."""
    chunks = max(1, min(chunks, len(indexed_rules)))
    size, extra = divmod(len(indexed_rules), chunks)
    out: List[List[Tuple[int, TGD]]] = []
    start = 0
    for i in range(chunks):
        stop = start + size + (1 if i < extra else 0)
        out.append(indexed_rules[start:stop])
        start = stop
    return out


def _pattern_join_remote(payload) -> List[List[Dict[Variable, int]]]:
    """Worker-side pattern joins for one chunk of rule bodies.

    Module-level for picklability.  The cloud ships as its raw
    frozenset (patterns are ``(Predicate, class-tuple)`` pairs, which
    re-intern on arrival); the worker builds its own class index, which
    amortizes over the whole chunk.
    """
    bodies, cloud, constant_class, engine, order_policy = payload
    if engine == "indexed":
        snapshot = cloud_index(cloud)
        return [
            list(pattern_homomorphisms(
                body, snapshot, constant_class, policy=order_policy
            ))
            for body in bodies
        ]
    return [
        list(naive_pattern_homomorphisms(body, cloud, constant_class))
        for body in bodies
    ]
