"""Per-database chase termination for guarded rules.

The paper (§1) recalls that (semi-)oblivious chase termination is
undecidable *even when the database is known* — for unrestricted TGDs.
For guarded Σ the Theorem 4 machinery decides it: root the type
analysis at the concrete database instead of the critical instance and
run the same pumping search.

This is strictly finer than the all-instance question: Example 1's
``person(X) → ∃Y hasFather(X,Y), person(Y)`` diverges on any database
containing a person, yet terminates instantly on a database with no
``person`` facts.
"""

from __future__ import annotations

from typing import Sequence

from ..chase.triggers import ChaseVariant
from ..classes import is_guarded
from ..errors import UnsupportedClassError
from ..model import Instance, TGD
from .pumping import find_pumping_witness
from .saturation import DEFAULT_MAX_TYPES, TypeAnalysis
from .transitions import TransitionGraph
from .verdict import TerminationVerdict


def decide_termination_on(
    rules: Sequence[TGD],
    database: Instance,
    variant: str = ChaseVariant.SEMI_OBLIVIOUS,
    max_types: int = DEFAULT_MAX_TYPES,
) -> TerminationVerdict:
    """Decide whether the ``variant`` chase of guarded ``rules``
    terminates on this specific ``database``."""
    rules = list(rules)
    if not is_guarded(rules):
        raise UnsupportedClassError(
            "per-database termination is undecidable for unrestricted "
            "TGDs; this procedure requires guarded rules"
        )
    if variant not in (ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS):
        raise UnsupportedClassError(
            f"per-database termination is analysed for the oblivious and "
            f"semi-oblivious chase, not {variant!r}"
        )
    analysis = TypeAnalysis(rules, database=database, max_types=max_types)
    graph = TransitionGraph(analysis)
    stats = graph.stats()
    witness = find_pumping_witness(graph, variant)
    if witness is not None:
        return TerminationVerdict(
            False, variant, "instance_type_graph", witness, stats
        )
    return TerminationVerdict(
        True, variant, "instance_type_graph", None, stats
    )
