"""Pumpable-cycle detection on the type-transition graph.

The semantic criterion (DESIGN.md §3.2–3.3): the (semi-)oblivious
chase of the critical instance is infinite iff the transition graph
admits an infinite walk every one of whose steps fires a *new* trigger.
An edge can repeat forever only if, each round, its trigger image
contains a *renewing* null — one re-created at bounded distance by an
existential on the walk itself; triggers whose images are eventually
constant re-fire an already-applied trigger, which the chase refuses.

The search runs per strongly connected component:

1. **Alive-edge fixpoint** — start with every intra-SCC edge; compute
   the classes renewable through alive edges (least fixpoint seeded by
   FRESH flow entries); kill edges whose trigger reads no renewable
   class; repeat until stable.  Every edge of the limit set of a real
   infinite walk survives this pruning, so an empty/acyclic result is
   a sound termination certificate.
2. **Exact walk verification** — a candidate cyclic walk is verified
   by tracing, for every step, the backward value flow of the trigger
   classes around the (infinitely repeated) walk: the step is live iff
   some trigger class reaches a FRESH source in finitely many steps.
   A fully live walk manufactures a round-fresh null in every trigger
   image; since nulls are globally unique, every round's triggers are
   distinct from all previous ones, on this path and on every other
   branch — an airtight non-termination witness.

Candidates: the shortest alive cycle, plus closed walks covering the
whole alive sub-SCC (compositions of cycles are needed in general —
two individually non-pumpable loops can sustain each other; see
``tests/test_pumping.py::test_mutually_sustaining_loops``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .abstraction import FRESH, BagType
from .saturation import ChildEdge
from .transitions import TransitionGraph


class PumpingWitness:
    """A cyclic walk witnessing non-termination.

    ``verified`` reports whether the exact per-walk flow analysis
    succeeded on this walk.  The alive-edge fixpoint alone already
    implies the existence of a pumpable composition; verification
    pins a concrete one (it succeeds on every input the test-suite and
    benchmarks exercise).
    """

    __slots__ = ("walk", "variant", "verified")

    def __init__(self, walk: Sequence[ChildEdge], variant: str, verified: bool):
        self.walk = list(walk)
        self.variant = variant
        self.verified = verified

    def rules(self) -> List:
        """The rules fired around the witness walk, in order."""
        return [edge.rule for edge in self.walk]

    def describe(self) -> str:
        """A printable summary of the witness."""
        steps = " ; ".join(
            edge.rule.label or f"rule{edge.rule_index}" for edge in self.walk
        )
        status = "verified" if self.verified else "fixpoint-only"
        return (
            f"non-termination witness ({self.variant}, {status}): "
            f"pump [{steps}]"
        )

    def __repr__(self) -> str:
        return f"PumpingWitness({self.describe()})"


def renewable_classes(
    edges: Sequence[ChildEdge],
) -> Dict[BagType, Set[int]]:
    """Least fixpoint of renewal through ``edges``: a class is
    renewable at a node if some edge flows FRESH into it, or flows a
    renewable class of the edge's source into it."""
    renewable: Dict[BagType, Set[int]] = {}
    changed = True
    while changed:
        changed = False
        for edge in edges:
            source_classes = renewable.get(edge.source, set())
            target_classes = renewable.setdefault(edge.target, set())
            for child_cls, src in edge.flow.items():
                if child_cls in target_classes:
                    continue
                if src == FRESH or src in source_classes:
                    target_classes.add(child_cls)
                    changed = True
    return renewable


def alive_edge_fixpoint(
    edges: Sequence[ChildEdge], variant: str
) -> List[ChildEdge]:
    """Iteratively remove edges whose trigger reads no renewable class
    until stable.  The surviving edges over-approximate the limit set
    of any infinite chase walk within the component."""
    alive = list(edges)
    while True:
        renewal = renewable_classes(alive)
        kept = [
            edge
            for edge in alive
            if edge.trigger_classes(variant) & renewal.get(edge.source, set())
        ]
        if len(kept) == len(alive):
            return kept
        alive = kept


def verify_cyclic_walk(
    walk: Sequence[ChildEdge], variant: str, num_constants: int
) -> bool:
    """Exact pumpability of a type-consistent cyclic walk.

    Position ``i`` is ``walk[i].source``; the walk must close up
    (``walk[i].target == walk[(i+1) % m].source``).  Returns True iff
    every step's trigger reads a class whose backward value flow around
    the repeated walk reaches a FRESH source.
    """
    m = len(walk)
    if m == 0:
        return False
    for i in range(m):
        if walk[i].target != walk[(i + 1) % m].source:
            raise ValueError("walk is not a closed, type-consistent cycle")

    def reaches_fresh(position: int, cls: int) -> bool:
        seen: Set[Tuple[int, int]] = set()
        pos, cur = position, cls
        while True:
            if cur < num_constants:
                return False
            if (pos, cur) in seen:
                return False
            seen.add((pos, cur))
            incoming = walk[(pos - 1) % m]
            src = incoming.flow.get(cur)
            if src is None:
                # A class of this bag that the incoming edge did not
                # create — impossible for type-consistent walks.
                return False
            if src == FRESH:
                return True
            pos = (pos - 1) % m
            cur = src

    for i, edge in enumerate(walk):
        trigger = edge.trigger_classes(variant)
        if not any(
            reaches_fresh(i, cls) for cls in trigger if cls >= num_constants
        ):
            return False
    return True


def _find_cycle(edges: Sequence[ChildEdge]) -> Optional[List[ChildEdge]]:
    """A shortest cycle among ``edges`` (BFS per edge), or ``None``."""
    out: Dict[BagType, List[ChildEdge]] = {}
    for edge in edges:
        out.setdefault(edge.source, []).append(edge)
    best: Optional[List[ChildEdge]] = None
    for edge in edges:
        if edge.target == edge.source:
            return [edge]
        path = _shortest_edge_path(out, edge.target, edge.source)
        if path is not None and (best is None or len(path) + 1 < len(best)):
            best = [edge] + path
    return best


def _shortest_edge_path(
    out: Dict[BagType, List[ChildEdge]],
    source: BagType,
    target: BagType,
) -> Optional[List[ChildEdge]]:
    if source == target:
        return []
    parents: Dict[BagType, ChildEdge] = {}
    seen: Set[BagType] = {source}
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        for edge in out.get(node, ()):
            child = edge.target
            if child == target:
                path = [edge]
                back = node
                while back != source:
                    prev = parents[back]
                    path.append(prev)
                    back = prev.source
                path.reverse()
                return path
            if child not in seen:
                seen.add(child)
                parents[child] = edge
                queue.append(child)
    return None


def _covering_walks(
    edges: Sequence[ChildEdge], anchor: BagType
) -> List[List[ChildEdge]]:
    """Closed walks from ``anchor`` covering every edge at least once.

    Two edge orderings are produced (forward and reversed greedy),
    since pumpability of a composition can depend on the interleaving.
    """
    walks: List[List[ChildEdge]] = []
    for ordering in (list(edges), list(reversed(edges))):
        out: Dict[BagType, List[ChildEdge]] = {}
        for edge in ordering:
            out.setdefault(edge.source, []).append(edge)
        uncovered: Set[int] = set(range(len(ordering)))
        index_of = {id(edge): i for i, edge in enumerate(ordering)}
        walk: List[ChildEdge] = []
        current = anchor
        ok = True
        while uncovered:
            direct = next(
                (
                    edge
                    for edge in out.get(current, ())
                    if index_of[id(edge)] in uncovered
                ),
                None,
            )
            if direct is not None:
                walk.append(direct)
                uncovered.discard(index_of[id(direct)])
                current = direct.target
                continue
            hop: Optional[List[ChildEdge]] = None
            for target_idx in list(uncovered):
                candidate = ordering[target_idx]
                path = _shortest_edge_path(out, current, candidate.source)
                if path is not None:
                    hop = path + [candidate]
                    uncovered.discard(target_idx)
                    break
            if hop is None:
                ok = False
                break
            for edge in hop:
                uncovered.discard(index_of.get(id(edge), -1))
            walk.extend(hop)
            current = hop[-1].target
        if not ok:
            continue
        closing = _shortest_edge_path(out, current, anchor)
        if closing is None:
            continue
        walk.extend(closing)
        if walk:
            walks.append(walk)
    return walks


def find_pumping_witness(
    graph: TransitionGraph, variant: str
) -> Optional[PumpingWitness]:
    """Search every SCC for a pumpable cyclic walk.

    Returns a verified witness when possible; a fixpoint-only witness
    when the alive subgraph is cyclic but no enumerated candidate
    passed exact verification; ``None`` when every SCC's alive
    subgraph is acyclic (the termination case).
    """
    num_constants = graph.analysis.num_constants
    fallback: Optional[PumpingWitness] = None
    for component in graph.strongly_connected_components():
        internal = [
            edge
            for node in component
            for edge in graph.out_edges(node)
            if edge.target in component
        ]
        if not internal:
            continue
        alive = alive_edge_fixpoint(internal, variant)
        if not alive:
            continue
        cycle = _find_cycle(alive)
        if cycle is None:
            continue
        if verify_cyclic_walk(cycle, variant, num_constants):
            return PumpingWitness(cycle, variant, verified=True)
        anchor = cycle[0].source
        for candidate in _covering_walks(alive, anchor):
            if verify_cyclic_walk(candidate, variant, num_constants):
                return PumpingWitness(candidate, variant, verified=True)
        if fallback is None:
            fallback = PumpingWitness(cycle, variant, verified=False)
    return fallback
