"""Model-faithful acyclicity (MFA) — the strongest of the classic
sufficient conditions, via the Skolem chase.

Cuenca Grau et al. (KR 2012 — the paper's citation [8]) replace each
existential variable z of rule σ by a Skolem function ``f_{σ,z}`` over
the rule's frontier.  The Skolem chase of the critical instance then
either reaches a fixpoint — Σ is MFA, and the semi-oblivious chase
terminates on every database — or produces a *cyclic* term in which
some ``f_{σ,z}`` is nested inside itself, in which case MFA fails
(though Σ may still terminate: MFA is sufficient, not exact).

The Skolem chase *is* the semi-oblivious chase with memoised witnesses
(two triggers agreeing on the frontier build the same Skolem terms),
which is why MFA under-approximates CT_so specifically.

Hierarchy validated by the test-suite and measured by the E11 ablation
benchmark:  WA ⊆ JA ⊆ MFA ⊆ CT_so.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..chase.critical import critical_instance
from ..errors import BudgetExceededError
from ..model import (
    Atom,
    Constant,
    Instance,
    TGD,
    Term,
    Variable,
    homomorphisms,
    validate_program,
)

DEFAULT_MFA_STEPS = 20_000


class SkolemTerm(Constant):
    """``f_{σ,z}(args...)`` encoded as a structured constant.

    Subclassing :class:`Constant` lets Skolem terms live in ordinary
    instances; equality/hash go through the structured name, so two
    triggers with equal frontier images build identical terms — the
    semi-oblivious identification, for free.
    """

    __slots__ = ("symbol", "args")

    def __init__(self, symbol: Tuple[int, str], args: Tuple[Term, ...]):
        super().__init__(("skolem", symbol, args))
        self.symbol = symbol
        self.args = args

    def __str__(self) -> str:
        rule_index, var = self.symbol
        inner = ", ".join(str(a) for a in self.args)
        return f"f{rule_index}_{var}({inner})"

    def contains_symbol(self, symbol: Tuple[int, str]) -> bool:
        """Does ``symbol`` occur anywhere inside this term's arguments?"""
        for arg in self.args:
            if isinstance(arg, SkolemTerm):
                if arg.symbol == symbol or arg.contains_symbol(symbol):
                    return True
        return False

    def is_cyclic(self) -> bool:
        """True iff this term's own symbol occurs nested inside it."""
        return self.contains_symbol(self.symbol)

    def depth(self) -> int:
        """Nesting depth (1 for a term over base constants)."""
        inner = [a.depth() for a in self.args if isinstance(a, SkolemTerm)]
        return 1 + max(inner, default=0)


def skolem_chase(
    database: Instance,
    rules: Sequence[TGD],
    max_steps: int = DEFAULT_MFA_STEPS,
) -> Tuple[Instance, Optional[SkolemTerm], bool]:
    """Run the Skolem chase.

    Returns ``(instance, first_cyclic_term, reached_fixpoint)``; the
    run stops at the first cyclic term (MFA is already refuted), at a
    fixpoint, or on budget (then both flags are falsy and the caller
    should raise).
    """
    rules = list(rules)
    validate_program(rules)
    instance = Instance(database)
    steps = 0
    frontier: List[Atom] = list(instance)
    while frontier:
        new_round: List[Atom] = []
        seen_assignments: Set[Tuple] = set()
        for index, rule in enumerate(rules):
            frontier_sorted = rule.frontier_sorted
            for assignment in homomorphisms(rule.body, instance):
                key = (
                    index,
                    tuple(
                        (v.name, assignment[v]) for v in frontier_sorted
                    ),
                )
                if key in seen_assignments:
                    continue
                seen_assignments.add(key)
                mapping: Dict[Term, Term] = {
                    v: assignment[v] for v in rule.frontier
                }
                for var in rule.existentials_sorted:
                    term = SkolemTerm(
                        (index, var.name),
                        tuple(
                            assignment[v] for v in frontier_sorted
                        ),
                    )
                    if term.is_cyclic():
                        return instance, term, False
                    mapping[var] = term
                for atom in rule.head:
                    fact = atom.substitute(mapping)
                    if instance.add(fact):
                        new_round.append(fact)
                        steps += 1
                        if steps >= max_steps:
                            return instance, None, False
        frontier = new_round
    return instance, None, True


def is_mfa(
    rules: Sequence[TGD], max_steps: int = DEFAULT_MFA_STEPS
) -> bool:
    """Model-faithful acyclicity of Σ (checked over the critical
    instance).  Raises :class:`BudgetExceededError` if the Skolem
    chase neither cycles nor saturates within ``max_steps`` facts —
    which cannot happen for the classes this library targets but keeps
    the function total."""
    rules = list(rules)
    if not rules:
        return True
    database = critical_instance(rules)
    _, cyclic, fixpoint = skolem_chase(database, rules, max_steps)
    if cyclic is not None:
        return False
    if fixpoint:
        return True
    raise BudgetExceededError(
        f"the Skolem chase neither cycled nor saturated within "
        f"{max_steps} facts; raise max_steps"
    )


def mfa_witness(
    rules: Sequence[TGD], max_steps: int = DEFAULT_MFA_STEPS
) -> Optional[SkolemTerm]:
    """The first cyclic Skolem term, or ``None`` when Σ is MFA."""
    rules = list(rules)
    if not rules:
        return None
    _, cyclic, _ = skolem_chase(critical_instance(rules), rules, max_steps)
    return cyclic
