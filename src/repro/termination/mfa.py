"""Model-faithful acyclicity (MFA) — the strongest of the classic
sufficient conditions, via the Skolem chase.

Cuenca Grau et al. (KR 2012 — the paper's citation [8]) replace each
existential variable z of rule σ by a Skolem function ``f_{σ,z}`` over
the rule's frontier.  The Skolem chase of the critical instance then
either reaches a fixpoint — Σ is MFA, and the semi-oblivious chase
terminates on every database — or produces a *cyclic* term in which
some ``f_{σ,z}`` is nested inside itself, in which case MFA fails
(though Σ may still terminate: MFA is sufficient, not exact).

The Skolem chase *is* the semi-oblivious chase with memoised witnesses
(two triggers agreeing on the frontier build the same Skolem terms),
which is why MFA under-approximates CT_so specifically.

Evaluation runs on the shared semi-naive round engine
(:class:`repro.chase.delta.DeltaEngine`): each round's triggers are
discovered from the previous round's delta via compiled pivot-seeded
join plans and **materialized before any fact is added** — the
pre-delta implementation mutated the instance while the body
homomorphisms were still being enumerated, so facts added by one
firing could leak into later join levels of the same enumeration.  The
``(rule, frontier-image)`` fired-key set persists across rounds, so a
historical trigger is never re-keyed and its Skolem terms never
rebuilt.

Hierarchy validated by the test-suite and measured by the E11 ablation
benchmark:  WA ⊆ JA ⊆ MFA ⊆ CT_so.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from ..chase.critical import critical_instance
from ..chase.delta import DeltaEngine
from ..chase.scheduler import SchedulerSpec, resolve_scheduler
from ..chase.triggers import ChaseVariant, _head_template
from ..errors import BudgetExceededError
from ..model import (
    Constant,
    Instance,
    TGD,
    Term,
    validate_program,
)
from ..runtime.budget import Budget

DEFAULT_MFA_STEPS = 20_000


class SkolemTerm(Constant):
    """``f_{σ,z}(args...)`` encoded as a structured constant.

    Subclassing :class:`Constant` lets Skolem terms live in ordinary
    instances; equality/hash go through the structured name, so two
    triggers with equal frontier images build identical terms — the
    semi-oblivious identification, for free.

    Terms are immutable and built bottom-up, so the nesting depth and
    the set of Skolem symbols occurring inside the arguments are
    computed once at construction from the (already computed) caches of
    the argument terms.  This keeps :meth:`contains_symbol`,
    :meth:`is_cyclic` and :meth:`depth` O(1) and recursion-free — the
    recursive originals blew the interpreter's recursion limit on terms
    nested a few hundred levels deep, well inside the step budget.
    """

    __slots__ = ("symbol", "args", "_depth", "_nested_symbols")

    def __init__(self, symbol: Tuple[int, str], args: Tuple[Term, ...]):
        super().__init__(("skolem", symbol, args))
        self.symbol = symbol
        self.args = args
        depth = 1
        nested: Set[Tuple[int, str]] = set()
        for arg in args:
            if isinstance(arg, SkolemTerm):
                if arg._depth >= depth:
                    depth = arg._depth + 1
                nested.add(arg.symbol)
                nested |= arg._nested_symbols
        self._depth = depth
        self._nested_symbols = frozenset(nested)

    def __str__(self) -> str:
        rule_index, var = self.symbol
        inner = ", ".join(str(a) for a in self.args)
        return f"f{rule_index}_{var}({inner})"

    def __reduce__(self):
        # Override Constant's interned reduction: rebuild as a
        # SkolemTerm (recursing through args) so depth/cycle caches and
        # the cached hash are recomputed on the receiving interpreter.
        return (self.__class__, (self.symbol, self.args))

    def contains_symbol(self, symbol: Tuple[int, str]) -> bool:
        """Does ``symbol`` occur anywhere inside this term's arguments?"""
        return symbol in self._nested_symbols

    def is_cyclic(self) -> bool:
        """True iff this term's own symbol occurs nested inside it."""
        return self.symbol in self._nested_symbols

    def depth(self) -> int:
        """Nesting depth (1 for a term over base constants)."""
        return self._depth


def _witness_key(term: SkolemTerm) -> Tuple:
    """A total, recursion-free order on Skolem terms, used to pick the
    canonical (least) cyclic witness of a round."""
    encoding: List[Tuple] = []
    stack: List[Term] = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, SkolemTerm):
            encoding.append(("f", t.symbol))
            stack.extend(reversed(t.args))
        else:
            encoding.append(("c", str(t)))
    return (term.depth(), tuple(encoding))


def skolem_chase(
    database: Instance,
    rules: Sequence[TGD],
    max_steps: int = DEFAULT_MFA_STEPS,
    scheduler: SchedulerSpec = None,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> Tuple[Instance, Optional[SkolemTerm], bool]:
    """Run the Skolem chase.

    Returns ``(instance, first_cyclic_term, reached_fixpoint)``; the
    run stops at the first round producing a cyclic term (MFA is
    already refuted), at a fixpoint, or on budget (then both flags are
    falsy and the caller should raise).

    ``budget`` adds deadline/memory/cancellation governance on top of
    ``max_steps``; it is checked at round boundaries and every few
    fact additions.  A tripped budget stops the run exactly like step
    exhaustion (both flags falsy, the instance round-consistent) and
    records its reason in ``budget.stop_reason``.

    The witness is canonical: rounds are well-defined units (each
    round's triggers are materialized against the round-start instance
    before any fact is added), so the set of cyclic terms a round
    produces does not depend on intra-round enumeration order, and the
    least such term of the earliest cyclic round is returned.  Once a
    round turns up a cyclic term, the remaining triggers of that round
    are only scanned for further witnesses, not applied.

    ``scheduler`` / ``workers`` batch the per-round trigger discovery
    (:mod:`repro.chase.scheduler`); this is the CPU-bound saturation
    run the ``process`` executor exists for.  The instance, witness,
    and fixpoint flag are identical under every executor.
    """
    rules = list(rules)
    validate_program(rules)
    instance = Instance(database)
    round_scheduler, owns_scheduler = resolve_scheduler(scheduler, workers)
    if budget is not None:
        budget.start()
    engine = DeltaEngine(
        rules,
        instance,
        key=lambda trigger: trigger.key(ChaseVariant.SEMI_OBLIVIOUS),
        scheduler=round_scheduler,
        variant=ChaseVariant.SEMI_OBLIVIOUS,
        budget=budget,
    )
    try:
        return _run_skolem_rounds(engine, instance, max_steps, budget)
    finally:
        if owns_scheduler:
            round_scheduler.close()


def _run_skolem_rounds(
    engine: DeltaEngine,
    instance: Instance,
    max_steps: int,
    budget: Optional[Budget] = None,
) -> Tuple[Instance, Optional[SkolemTerm], bool]:
    steps = 0
    decode = instance.symbols.obj
    term_id = instance.term_id
    add_row = instance.add_row
    while True:
        if budget is not None:
            if budget.check(facts=len(instance)) is not None:
                return instance, None, False
        try:
            triggers = engine.next_round()
        except BudgetExceededError:
            # Discovery is read-only; the instance is the round-start
            # state and budget.stop_reason records why we stopped.
            return instance, None, False
        if not triggers:
            return instance, None, True
        cyclic: List[SkolemTerm] = []
        for trigger in triggers:
            rule = trigger.rule
            # Triggers arrive in interned form; only the frontier image
            # is decoded — Skolem terms are built over real Terms, then
            # interned back so head rows stay int-level.
            ids = trigger.ids(instance)
            skolem_args = tuple(
                decode(ids[i]) for i in rule.frontier_body_indices
            )
            terms: List[SkolemTerm] = []
            for var in rule.existentials_sorted:
                term = SkolemTerm((trigger.rule_index, var.name), skolem_args)
                if term.is_cyclic():
                    cyclic.append(term)
                terms.append(term)
            if cyclic:
                # Witness-scan mode: keep checking the round's remaining
                # triggers for cyclic terms, but stop growing the
                # instance.
                continue
            template = _head_template(instance, rule, trigger.rule_index)
            exist_ids = [term_id(t) for t in terms]
            for pid, _, build in template.atoms:
                ordinal = add_row(pid, build(ids, exist_ids))
                if ordinal is not None:
                    engine.notify((ordinal,))
                    steps += 1
                    if steps >= max_steps:
                        return instance, None, False
                    if (
                        budget is not None
                        and not steps % 64
                        and budget.check(facts=len(instance)) is not None
                    ):
                        return instance, None, False
        if cyclic:
            return instance, min(cyclic, key=_witness_key), False
        if budget is not None:
            budget.note_round()


def is_mfa(
    rules: Sequence[TGD],
    max_steps: int = DEFAULT_MFA_STEPS,
    scheduler: SchedulerSpec = None,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> bool:
    """Model-faithful acyclicity of Σ (checked over the critical
    instance).  Raises :class:`BudgetExceededError` if the Skolem
    chase neither cycles nor saturates within ``max_steps`` facts (or
    within ``budget``) — the MFA verdict is then *unknown*, and the
    error's ``stop_reason``/``stats`` say which limit tripped."""
    rules = list(rules)
    if not rules:
        return True
    database = critical_instance(rules)
    _, cyclic, fixpoint = skolem_chase(
        database, rules, max_steps, scheduler=scheduler, workers=workers,
        budget=budget,
    )
    if cyclic is not None:
        return False
    if fixpoint:
        return True
    if budget is not None and budget.stop_reason is not None:
        raise BudgetExceededError(
            f"the Skolem chase stopped on its resource budget "
            f"({budget.stop_reason}) before cycling or saturating; "
            f"the MFA verdict is unknown",
            stop_reason=budget.stop_reason,
            stats=budget.stats(),
        )
    raise BudgetExceededError(
        f"the Skolem chase neither cycled nor saturated within "
        f"{max_steps} facts; raise max_steps",
        stop_reason="step_budget",
    )


def mfa_witness(
    rules: Sequence[TGD],
    max_steps: int = DEFAULT_MFA_STEPS,
    scheduler: SchedulerSpec = None,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> Optional[SkolemTerm]:
    """The first cyclic Skolem term, or ``None`` when Σ is MFA."""
    rules = list(rules)
    if not rules:
        return None
    _, cyclic, _ = skolem_chase(
        critical_instance(rules), rules, max_steps,
        scheduler=scheduler, workers=workers, budget=budget,
    )
    return cyclic
