"""One-call termination reports: the full picture for a rule set.

Bundles the class recognizers, the sufficient-condition zoo, and both
exact deciders into a single structured report — the programmatic
equivalent of the E11 ablation row for one program, used by the CLI's
``check --full``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..chase.triggers import ChaseVariant
from ..classes import classify, narrowest_class
from ..errors import UnsupportedClassError
from ..graphs import (
    is_jointly_acyclic,
    is_richly_acyclic,
    is_weakly_acyclic,
)
from ..model import TGD
from .decider import decide_termination
from .mfa import is_mfa
from .verdict import TerminationVerdict


class TerminationReport:
    """Everything the library can say about one rule set."""

    __slots__ = (
        "rules",
        "classes",
        "narrowest",
        "conditions",
        "oblivious",
        "semi_oblivious",
    )

    def __init__(
        self,
        rules: Sequence[TGD],
        classes: Dict[str, bool],
        narrowest: str,
        conditions: Dict[str, Optional[bool]],
        oblivious: Optional[TerminationVerdict],
        semi_oblivious: Optional[TerminationVerdict],
    ):
        self.rules = list(rules)
        self.classes = classes
        self.narrowest = narrowest
        self.conditions = conditions
        self.oblivious = oblivious
        self.semi_oblivious = semi_oblivious

    def render(self) -> str:
        """A multi-line human-readable report."""
        lines = [f"rules: {len(self.rules)}",
                 f"narrowest class: {self.narrowest}"]
        lines.append("sufficient conditions:")
        for name in ("rich_acyclicity", "weak_acyclicity",
                     "joint_acyclicity", "mfa"):
            value = self.conditions.get(name)
            rendered = "n/a" if value is None else ("yes" if value else "no")
            lines.append(f"  {name}: {rendered}")
        for label, verdict in (
            ("oblivious", self.oblivious),
            ("semi_oblivious", self.semi_oblivious),
        ):
            if verdict is None:
                lines.append(f"{label}: undecided (rules not guarded)")
            else:
                outcome = (
                    "terminates on every database"
                    if verdict.terminating
                    else "diverges on some database"
                )
                lines.append(f"{label}: {outcome} [{verdict.method}]")
        return "\n".join(lines)


def termination_report(
    rules: Sequence[TGD],
    mfa_budget: int = 20_000,
) -> TerminationReport:
    """Build a :class:`TerminationReport` for ``rules``.

    The exact verdicts are ``None`` when the rules fall outside the
    guarded classes (undecidable territory); the zoo conditions are
    always computed (MFA may be ``None`` on budget exhaustion).
    """
    rules = list(rules)
    conditions: Dict[str, Optional[bool]] = {
        "rich_acyclicity": is_richly_acyclic(rules),
        "weak_acyclicity": is_weakly_acyclic(rules),
        "joint_acyclicity": is_jointly_acyclic(rules),
    }
    try:
        conditions["mfa"] = is_mfa(rules, max_steps=mfa_budget)
    except Exception:
        conditions["mfa"] = None
    verdicts = {}
    for variant in (ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS):
        try:
            verdicts[variant] = decide_termination(rules, variant=variant)
        except UnsupportedClassError:
            verdicts[variant] = None
    return TerminationReport(
        rules,
        classify(rules),
        narrowest_class(rules),
        conditions,
        verdicts[ChaseVariant.OBLIVIOUS],
        verdicts[ChaseVariant.SEMI_OBLIVIOUS],
    )
