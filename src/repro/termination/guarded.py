"""Theorem 4 — the termination decision procedure for guarded TGDs.

The pipeline is: type saturation over the critical instance
(:mod:`~repro.termination.saturation`), the type-transition graph
(:mod:`~repro.termination.transitions`), and pumpable-cycle detection
(:mod:`~repro.termination.pumping`).  ``standard=True`` runs the
analysis over the paper's *standard* critical instance (constants 0
and 1 available through the unary ``zero``/``one`` predicates); the
upper bound holds either way, matching the paper's remark that only
the lower bounds need standardness.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..chase.scheduler import SchedulerSpec
from ..chase.triggers import ChaseVariant
from ..classes import is_guarded
from ..errors import UnsupportedClassError
from ..model import TGD
from .pumping import find_pumping_witness
from .saturation import DEFAULT_MAX_TYPES, TypeAnalysis
from .transitions import TransitionGraph
from .verdict import TerminationVerdict


def decide_guarded(
    rules: Sequence[TGD],
    variant: str,
    standard: bool = False,
    max_types: int = DEFAULT_MAX_TYPES,
    pattern_engine: str = "indexed",
    order_policy: str = "cost",
    scheduler: SchedulerSpec = None,
    workers: Optional[int] = None,
    budget=None,
) -> TerminationVerdict:
    """Decide ``Σ ∈ CT_variant`` for guarded Σ (Theorem 4).

    Raises :class:`~repro.errors.UnsupportedClassError` on non-guarded
    input and :class:`~repro.errors.BudgetExceededError` if the type
    space outgrows ``max_types`` (the procedure is 2EXPTIME-complete)
    or the optional ``budget`` (a
    :class:`repro.runtime.budget.Budget`) trips — the verdict is then
    *unknown*; the error's ``stop_reason`` names the limit.

    ``pattern_engine`` selects the body-vs-cloud join implementation
    used by saturation (see
    :data:`~repro.termination.saturation.PATTERN_ENGINES`); the default
    compiled class-indexed plans and the retained ``"naive"`` scan
    produce the same verdict — the latter exists for equivalence tests
    and as the benchmark baseline.  ``order_policy`` selects the
    planner's join ordering for the indexed engine
    (:data:`repro.query.planner.ORDER_POLICIES`).

    ``scheduler`` / ``workers`` batch saturation's cloud joins across
    rules (:mod:`repro.chase.scheduler`); the verdict, witness, and
    stats are identical under every executor.  Pools created here are
    closed before returning.
    """
    rules = list(rules)
    if not is_guarded(rules):
        raise UnsupportedClassError(
            "decide_guarded requires guarded TGDs; use decide_termination "
            "with allow_oracle=True for unrestricted sets"
        )
    if variant not in (ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS):
        raise UnsupportedClassError(
            f"Theorem 4 covers the oblivious and semi-oblivious chase, "
            f"not {variant!r}"
        )
    analysis = TypeAnalysis(
        rules,
        standard=standard,
        max_types=max_types,
        pattern_engine=pattern_engine,
        order_policy=order_policy,
        scheduler=scheduler,
        workers=workers,
        budget=budget,
    )
    try:
        graph = TransitionGraph(analysis)
        stats = graph.stats()
        witness = find_pumping_witness(graph, variant)
    finally:
        analysis.close()
    if witness is not None:
        return TerminationVerdict(
            False, variant, "guarded_type_graph", witness, stats
        )
    return TerminationVerdict(True, variant, "guarded_type_graph", None, stats)
