"""Termination verdicts with checkable certificates."""

from __future__ import annotations

from typing import Dict, Optional


class TerminationVerdict:
    """The answer of a termination decision procedure.

    Attributes
    ----------
    terminating:
        Whether Σ belongs to CT (all-instance termination) for the
        chosen chase ``variant``.
    variant:
        ``"oblivious"`` or ``"semi_oblivious"`` (the paper's scope);
        the §4 restricted-chase analysis reports ``"restricted"``.
    method:
        Which procedure produced the verdict — e.g.
        ``"rich_acyclicity"``, ``"weak_acyclicity"``,
        ``"guarded_type_graph"``, ``"critical_chase_oracle"``.
    witness:
        A certificate object: a
        :class:`~repro.graphs.dependency.DangerousCycle`, a
        :class:`~repro.termination.pumping.PumpingWitness`, a chase
        result, or ``None`` for purely syntactic positives.
    stats:
        Procedure statistics (type counts, graph sizes, steps).
    """

    __slots__ = ("terminating", "variant", "method", "witness", "stats")

    def __init__(
        self,
        terminating: bool,
        variant: str,
        method: str,
        witness: Optional[object] = None,
        stats: Optional[Dict[str, int]] = None,
    ):
        self.terminating = terminating
        self.variant = variant
        self.method = method
        self.witness = witness
        self.stats = dict(stats or {})

    def __bool__(self) -> bool:
        return self.terminating

    def __repr__(self) -> str:
        outcome = "terminating" if self.terminating else "non-terminating"
        return (
            f"TerminationVerdict({outcome}, variant={self.variant}, "
            f"method={self.method})"
        )

    def explain(self) -> str:
        """A short human-readable explanation."""
        outcome = (
            "the chase terminates on every database"
            if self.terminating
            else "some database admits an infinite chase"
        )
        lines = [f"{self.variant} chase: {outcome} (method: {self.method})"]
        if self.witness is not None:
            describe = getattr(self.witness, "describe", None)
            lines.append(
                describe() if callable(describe) else repr(self.witness)
            )
        if self.stats:
            inner = ", ".join(f"{k}={v}" for k, v in sorted(self.stats.items()))
            lines.append(f"stats: {inner}")
        return "\n".join(lines)
