"""The front-door termination decider.

:func:`decide_termination` dispatches to the narrowest applicable
procedure:

* full programs — trivially terminating;
* simple linear — Theorem 1 (rich/weak acyclicity, NL);
* linear — Theorem 2 (critical acyclicity, PSPACE);
* guarded — Theorem 4 (type graph, 2EXPTIME);
* anything else — undecidable in general; with ``allow_oracle=True``
  the budgeted critical-chase oracle may still prove termination.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..chase.scheduler import SchedulerSpec
from ..chase.triggers import ChaseVariant
from ..classes import is_full, narrowest_class
from ..errors import UnsupportedClassError
from ..model import TGD, program_constants
from .guarded import decide_guarded
from .linear import decide_linear
from .oracle import DEFAULT_ORACLE_STEPS, critical_chase_terminates
from .saturation import DEFAULT_MAX_TYPES
from .sl import decide_simple_linear
from .verdict import TerminationVerdict


def decide_termination(
    rules: Sequence[TGD],
    variant: str = ChaseVariant.SEMI_OBLIVIOUS,
    standard: bool = False,
    method: str = "auto",
    max_types: int = DEFAULT_MAX_TYPES,
    allow_oracle: bool = False,
    oracle_steps: int = DEFAULT_ORACLE_STEPS,
    order_policy: str = "cost",
    scheduler: SchedulerSpec = None,
    workers: Optional[int] = None,
    budget=None,
) -> TerminationVerdict:
    """Decide all-instance ``variant``-chase termination for ``rules``.

    Parameters
    ----------
    variant:
        ``"oblivious"`` or ``"semi_oblivious"``.
    standard:
        Analyse over the paper's *standard* databases (adds the 0/1
        constants); only meaningful for the guarded procedure.
    method:
        Force a procedure: ``"auto"``, ``"simple_linear"``,
        ``"linear"``, ``"guarded"``, or ``"oracle"``.
    allow_oracle:
        For non-guarded Σ, permit the (incomplete) budgeted oracle
        instead of raising :class:`UnsupportedClassError`.
    order_policy:
        Join-order policy for the guarded procedure's pattern joins
        (:data:`repro.query.planner.ORDER_POLICIES`); verdicts are
        policy-independent.
    scheduler, workers:
        Round executor for the procedures that run (bounded) chases —
        currently the guarded type-graph saturation (see
        :mod:`repro.chase.scheduler`).  ``"serial"`` (default),
        ``"threaded"``, ``"process"``, or a ready
        :class:`~repro.chase.scheduler.RoundScheduler`.  Verdicts are
        executor-independent; the NL/PSPACE graph procedures ignore
        the knob.
    budget:
        Optional :class:`repro.runtime.budget.Budget` governing the
        guarded saturation (deadline, memory ceiling, cancellation);
        a tripped budget raises
        :class:`~repro.errors.BudgetExceededError` with the stop
        reason — the verdict is then unknown.  The NL/PSPACE graph
        procedures finish far below any sensible budget and ignore
        the knob.
    """
    rules = list(rules)
    if variant not in (ChaseVariant.OBLIVIOUS, ChaseVariant.SEMI_OBLIVIOUS):
        raise UnsupportedClassError(
            f"all-instance termination is studied for the oblivious and "
            f"semi-oblivious chase; got {variant!r}"
        )
    if method == "simple_linear":
        return decide_simple_linear(rules, variant)
    if method == "linear":
        return decide_linear(rules, variant, max_types=max_types)
    if method == "guarded":
        return decide_guarded(
            rules, variant, standard=standard, max_types=max_types,
            order_policy=order_policy,
            scheduler=scheduler, workers=workers, budget=budget,
        )
    if method == "oracle":
        return _oracle_or_raise(rules, variant, standard, oracle_steps)
    if method != "auto":
        raise ValueError(f"unknown method {method!r}")

    if not rules or is_full(rules):
        # No existential variables: every chase variant terminates on
        # every database (only finitely many facts over the active
        # domain exist).
        return TerminationVerdict(True, variant, "full_program", None, {})
    cls = narrowest_class(rules)
    if cls == "simple_linear" and program_constants(rules):
        # The Theorem 1 characterizations are for constant-free TGDs:
        # weak/rich acyclicity cannot see that a rule constant blocks a
        # dangerous cycle (e.g. p(a, X) -> ∃Z q(X, Z), q(X, Z) ->
        # p(X, Z) terminates although its dependency graph is cyclic).
        # Constant-bearing programs go to the exact critical decider.
        cls = "linear"
    if cls == "simple_linear":
        return decide_simple_linear(rules, variant)
    if cls == "linear":
        return decide_linear(rules, variant, max_types=max_types)
    if cls == "guarded":
        return decide_guarded(
            rules, variant, standard=standard, max_types=max_types,
            order_policy=order_policy,
            scheduler=scheduler, workers=workers, budget=budget,
        )
    if allow_oracle:
        return _oracle_or_raise(rules, variant, standard, oracle_steps)
    raise UnsupportedClassError(
        "all-instance chase termination is undecidable for unrestricted "
        "TGDs (Gogacz & Marcinkowski); the paper's procedures require "
        "guardedness — pass allow_oracle=True for a best-effort check"
    )


def _oracle_or_raise(
    rules: Sequence[TGD], variant: str, standard: bool, oracle_steps: int
) -> TerminationVerdict:
    outcome = critical_chase_terminates(
        rules, variant, max_steps=oracle_steps, standard=standard
    )
    if outcome is None:
        raise UnsupportedClassError(
            f"the critical-chase oracle was inconclusive after "
            f"{oracle_steps} steps; no complete procedure applies to "
            "this rule set"
        )
    return TerminationVerdict(
        True,
        variant,
        "critical_chase_oracle",
        None,
        {"oracle_steps": oracle_steps},
    )
