"""The critical-chase oracle: budgeted ground truth.

Marnette's theorem reduces all-instance (semi-)oblivious termination
to termination on the critical instance.  Running the actual chase
there with a step budget gives a *semi*-decision procedure:

* the chase reaches a fixpoint  →  Σ ∈ CT (definitive);
* the budget is exhausted       →  unknown (``None``).

The oracle is deliberately independent of the abstract deciders — the
test-suite and several benchmarks cross-validate the two against each
other (DESIGN.md §6).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..chase import (
    critical_instance,
    run_chase,
    standard_critical_instance,
)
from ..model import TGD
from .verdict import TerminationVerdict

DEFAULT_ORACLE_STEPS = 5_000


def critical_chase_terminates(
    rules: Sequence[TGD],
    variant: str,
    max_steps: int = DEFAULT_ORACLE_STEPS,
    standard: bool = False,
) -> Optional[bool]:
    """``True`` if the variant chase of the critical instance reaches a
    fixpoint within ``max_steps`` applications, ``None`` if the budget
    runs out first (never ``False``: a budgeted run cannot prove
    non-termination)."""
    rules = list(rules)
    if standard:
        database = standard_critical_instance(rules)
    else:
        database = critical_instance(rules)
    result = run_chase(database, rules, variant, max_steps=max_steps)
    return True if result.terminated else None


def oracle_verdict(
    rules: Sequence[TGD],
    variant: str,
    max_steps: int = DEFAULT_ORACLE_STEPS,
    standard: bool = False,
) -> Optional[TerminationVerdict]:
    """A :class:`TerminationVerdict` when the oracle is conclusive."""
    outcome = critical_chase_terminates(rules, variant, max_steps, standard)
    if outcome is None:
        return None
    return TerminationVerdict(
        True,
        variant,
        "critical_chase_oracle",
        None,
        {"max_steps": max_steps},
    )
