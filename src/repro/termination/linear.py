"""Theorem 2 — critical acyclicity for (non-simple) linear TGDs.

For linear TGDs with repeated body variables, a dangerous cycle in the
(extended) dependency graph need not be realizable by an actual chase
derivation — the canonical counterexample, from the paper's discussion,
is ``p(X,X) -> exists Z . p(X,Z)``, which is not weakly acyclic but
whose chase always terminates (the generated atom ``p(*,z)`` can never
re-trigger the rule, whose body demands equal arguments).

The paper refines rich/weak acyclicity into *critical* rich/weak
acyclicity so that, for linear Σ::

    Σ ∈ CT_o  ⇔  Σ ∈ LCriticalRA        Σ ∈ CT_so ⇔  Σ ∈ LCriticalWA

This module exposes the two classes as deciders.  They are computed by
the bag-type machinery of Theorem 4 specialised to linear rules — which
is exactly the semantics the critical-* conditions characterize: the
abstract chase of the critical instance, with equality patterns among
positions tracked precisely (the refinement plain WA/RA lacks).
"""

from __future__ import annotations

from typing import Sequence

from ..chase.triggers import ChaseVariant
from ..classes import is_linear
from ..errors import UnsupportedClassError
from ..model import TGD
from .guarded import DEFAULT_MAX_TYPES, decide_guarded
from .verdict import TerminationVerdict


def decide_linear(
    rules: Sequence[TGD],
    variant: str,
    max_types: int = DEFAULT_MAX_TYPES,
) -> TerminationVerdict:
    """Decide ``Σ ∈ CT_variant`` for linear Σ (Theorem 2)."""
    rules = list(rules)
    if not is_linear(rules):
        raise UnsupportedClassError(
            "decide_linear requires linear TGDs (single-atom bodies)"
        )
    verdict = decide_guarded(rules, variant, max_types=max_types)
    method = (
        "critical_rich_acyclicity"
        if variant == ChaseVariant.OBLIVIOUS
        else "critical_weak_acyclicity"
    )
    return TerminationVerdict(
        verdict.terminating, variant, method, verdict.witness, verdict.stats
    )


def is_critically_richly_acyclic(
    rules: Sequence[TGD], max_types: int = DEFAULT_MAX_TYPES
) -> bool:
    """Membership in LCriticalRA — equivalently CT_o ∩ L (Theorem 2)."""
    return decide_linear(rules, ChaseVariant.OBLIVIOUS, max_types).terminating


def is_critically_weakly_acyclic(
    rules: Sequence[TGD], max_types: int = DEFAULT_MAX_TYPES
) -> bool:
    """Membership in LCriticalWA — equivalently CT_so ∩ L (Theorem 2)."""
    return decide_linear(
        rules, ChaseVariant.SEMI_OBLIVIOUS, max_types
    ).terminating
