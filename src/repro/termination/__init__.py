"""The paper's termination deciders and their machinery."""

from .abstraction import (
    FRESH,
    AtomPattern,
    BagType,
    PatternCloud,
    naive_pattern_homomorphisms,
    pattern_homomorphisms,
)
from .decider import decide_termination
from .guarded import decide_guarded
from .instance_level import decide_termination_on
from .mfa import (
    DEFAULT_MFA_STEPS,
    SkolemTerm,
    is_mfa,
    mfa_witness,
    skolem_chase,
)
from .linear import (
    decide_linear,
    is_critically_richly_acyclic,
    is_critically_weakly_acyclic,
)
from .oracle import (
    DEFAULT_ORACLE_STEPS,
    critical_chase_terminates,
    oracle_verdict,
)
from .pumping import (
    PumpingWitness,
    alive_edge_fixpoint,
    find_pumping_witness,
    renewable_classes,
    verify_cyclic_walk,
)
from .replay import ReplayResult, confirm_witness
from .report import TerminationReport, termination_report
from .restricted_sh import (
    decide_restricted_single_head,
    restricted_rule_graph,
)
from .saturation import DEFAULT_MAX_TYPES, ChildEdge, TypeAnalysis
from .sl import decide_simple_linear
from .transitions import TransitionGraph
from .verdict import TerminationVerdict

__all__ = [
    "AtomPattern",
    "BagType",
    "ChildEdge",
    "DEFAULT_MAX_TYPES",
    "DEFAULT_MFA_STEPS",
    "DEFAULT_ORACLE_STEPS",
    "FRESH",
    "PatternCloud",
    "SkolemTerm",
    "PumpingWitness",
    "ReplayResult",
    "TerminationReport",
    "TerminationVerdict",
    "TransitionGraph",
    "TypeAnalysis",
    "alive_edge_fixpoint",
    "confirm_witness",
    "critical_chase_terminates",
    "decide_guarded",
    "decide_linear",
    "decide_restricted_single_head",
    "decide_simple_linear",
    "decide_termination",
    "decide_termination_on",
    "find_pumping_witness",
    "is_mfa",
    "mfa_witness",
    "naive_pattern_homomorphisms",
    "pattern_homomorphisms",
    "skolem_chase",
    "is_critically_richly_acyclic",
    "is_critically_weakly_acyclic",
    "oracle_verdict",
    "renewable_classes",
    "restricted_rule_graph",
    "termination_report",
    "verify_cyclic_walk",
]
