"""Theorem 1 — termination for simple linear TGDs.

For Σ ∈ SL the paper characterizes termination *syntactically*:

* ``Σ ∈ CT_o  ⇔  Σ is richly acyclic``   (extended dependency graph)
* ``Σ ∈ CT_so ⇔  Σ is weakly acyclic``   (dependency graph)

so the decision is a reachability test on a polynomial-size graph —
the source of the NL upper bound of Theorem 3(1).

The characterization is for **constant-free** TGDs (the usual setting
of the acyclicity literature): a rule constant can block a dangerous
cycle that the dependency graph, which only sees positions, still
reports.  The top-level :func:`~repro.termination.decide_termination`
therefore routes constant-bearing SL programs to the exact critical
decider instead; calling this function on them yields the (sound but
possibly incomplete) syntactic verdict.
"""

from __future__ import annotations

from typing import Sequence

from ..chase.triggers import ChaseVariant
from ..classes import is_simple_linear
from ..errors import UnsupportedClassError
from ..graphs import (
    dependency_graph,
    extended_dependency_graph,
    find_dangerous_cycle,
)
from ..model import TGD
from .verdict import TerminationVerdict


def decide_simple_linear(
    rules: Sequence[TGD], variant: str
) -> TerminationVerdict:
    """Decide ``Σ ∈ CT_variant`` for simple linear Σ via Theorem 1."""
    rules = list(rules)
    if not is_simple_linear(rules):
        raise UnsupportedClassError(
            "decide_simple_linear requires simple linear TGDs "
            "(single-atom bodies without repeated variables)"
        )
    if variant == ChaseVariant.OBLIVIOUS:
        graph = extended_dependency_graph(rules)
        method = "rich_acyclicity"
    elif variant == ChaseVariant.SEMI_OBLIVIOUS:
        graph = dependency_graph(rules)
        method = "weak_acyclicity"
    else:
        raise UnsupportedClassError(
            f"Theorem 1 covers the oblivious and semi-oblivious chase, "
            f"not {variant!r}"
        )
    cycle = find_dangerous_cycle(graph)
    stats = {"positions": len(graph), "edges": sum(1 for _ in graph.edges())}
    if cycle is None:
        return TerminationVerdict(True, variant, method, None, stats)
    return TerminationVerdict(False, variant, method, cycle, stats)
