"""The type-transition graph of the guarded chase.

Nodes are saturated bag types reachable from the critical instance's
root bag; edges are bag-creating rule applications
(:class:`~repro.termination.saturation.ChildEdge`).  Non-termination
analysis (see :mod:`repro.termination.pumping`) happens on this finite
graph.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

from .abstraction import BagType
from .saturation import ChildEdge, TypeAnalysis


class TransitionGraph:
    """Reachable saturated types + bag-creating transitions."""

    def __init__(self, analysis: TypeAnalysis):
        self.analysis = analysis
        self.root = analysis.root
        self.nodes: List[BagType] = []
        self.edges: List[ChildEdge] = []
        self._out: Dict[BagType, List[ChildEdge]] = {}
        self._build()

    def _build(self) -> None:
        self.analysis.saturate()
        seen: Set[BagType] = {self.root}
        queue: deque = deque([self.root])
        order: List[BagType] = []
        while queue:
            bag_type = queue.popleft()
            order.append(bag_type)
            out = self.analysis.child_edges(bag_type)
            self._out[bag_type] = out
            for edge in out:
                self.edges.append(edge)
                if edge.target not in seen:
                    seen.add(edge.target)
                    queue.append(edge.target)
        self.nodes = order

    def out_edges(self, bag_type: BagType) -> Sequence[ChildEdge]:
        """Transitions out of ``bag_type``."""
        return self._out.get(bag_type, ())

    def __len__(self) -> int:
        return len(self.nodes)

    # -- structure -------------------------------------------------------

    def strongly_connected_components(self) -> List[Set[BagType]]:
        """Tarjan over the transition graph (iterative)."""
        index: Dict[BagType, int] = {}
        lowlink: Dict[BagType, int] = {}
        on_stack: Set[BagType] = set()
        stack: List[BagType] = []
        components: List[Set[BagType]] = []
        counter = 0
        for root in self.nodes:
            if root in index:
                continue
            work: List[Tuple[BagType, int]] = [(root, 0)]
            while work:
                node, edge_idx = work.pop()
                if edge_idx == 0:
                    index[node] = counter
                    lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                out = self._out.get(node, [])
                for i in range(edge_idx, len(out)):
                    child = out[i].target
                    if child not in index:
                        work.append((node, i + 1))
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if recurse:
                    continue
                if lowlink[node] == index[node]:
                    component: Set[BagType] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return components

    def stats(self) -> Dict[str, int]:
        """Size statistics for certificates and benchmarks.

        ``pattern_joins`` counts the body-vs-cloud joins the underlying
        analysis executed (saturation + edge discovery) — the work the
        class-indexed pattern engine accelerates.
        """
        return {
            "types": len(self.nodes),
            "edges": len(self.edges),
            "table_types": len(self.analysis.table),
            "constants": self.analysis.num_constants,
            "pattern_joins": self.analysis.pattern_joins,
        }
