"""Empirical confirmation of non-termination witnesses.

A :class:`~repro.termination.pumping.PumpingWitness` asserts that the
rules along its walk fire *unboundedly often* on the critical
instance.  :func:`confirm_witness` checks this concretely: it runs the
fair budgeted chase and verifies that every rule of the walk fires at
least ``rounds`` times with pairwise-distinct trigger keys, doubling
the budget until confirmation or a cap.

This closes the loop between the abstract analysis and the real
engine: the test-suite confirms every witness the deciders emit on the
curated suites, and ``decide_guarded`` users can do the same on
demand.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

from ..chase import critical_instance, run_chase, standard_critical_instance
from ..model import TGD
from .pumping import PumpingWitness


class ReplayResult:
    """The outcome of a witness confirmation run."""

    __slots__ = ("confirmed", "rounds", "firings", "steps_used")

    def __init__(
        self,
        confirmed: bool,
        rounds: int,
        firings: Dict[int, int],
        steps_used: int,
    ):
        self.confirmed = confirmed
        self.rounds = rounds
        self.firings = firings
        self.steps_used = steps_used

    def __bool__(self) -> bool:
        return self.confirmed

    def __repr__(self) -> str:
        status = "confirmed" if self.confirmed else "NOT confirmed"
        return (
            f"ReplayResult({status}, rounds={self.rounds}, "
            f"steps={self.steps_used})"
        )


def confirm_witness(
    rules: Sequence[TGD],
    witness: PumpingWitness,
    rounds: int = 3,
    standard: bool = False,
    max_steps_cap: int = 50_000,
) -> ReplayResult:
    """Confirm ``witness`` against the concrete chase.

    Returns a confirmed :class:`ReplayResult` once every rule on the
    witness walk has fired ``rounds`` distinct triggers in the fair
    chase of the critical instance.  An unconfirmed result means the
    budget cap was reached first — or, if the chase *terminated*, that
    the witness is refuted (which no emitted witness should ever be;
    the test-suite asserts this).
    """
    rules = list(rules)
    walk_rule_indices: Set[int] = {
        edge.rule_index for edge in witness.walk
    }
    if standard:
        database = standard_critical_instance(rules)
    else:
        database = critical_instance(rules)
    budget = 256
    while True:
        result = run_chase(
            database, rules, witness.variant, max_steps=budget
        )
        firings: Dict[int, int] = {idx: 0 for idx in walk_rule_indices}
        for step in result.steps:
            idx = step.trigger.rule_index
            if idx in firings:
                firings[idx] += 1
        if all(count >= rounds for count in firings.values()):
            return ReplayResult(True, rounds, firings, result.step_count)
        if result.terminated:
            # Fixpoint reached without enough firings: the witness
            # rules cannot fire unboundedly — refutation.
            return ReplayResult(False, rounds, firings, result.step_count)
        if budget >= max_steps_cap:
            return ReplayResult(False, rounds, firings, result.step_count)
        budget = min(budget * 2, max_steps_cap)
