"""Abstract bags: the finite state space of the guarded chase.

Guardedness makes the chase *tree-like*: every rule body maps into the
atoms over a single guard image's terms, so the chase of the critical
instance can be organised as a tree of **bags**.  A bag consists of

* its *terms* — the global constants (the critical domain) plus the
  labelled nulls the bag was created with; and
* its *cloud* — every atom over those terms present in the (fair,
  saturated) chase.

Because fresh nulls are interchangeable, a bag is characterised up to
isomorphism by its **type**: how many null terms it has and which atom
*patterns* (atoms over term classes) its cloud contains.  Types form a
finite space — exponential in the schema, which is precisely where the
2EXPTIME upper bound of Theorem 4 comes from.

Class-id convention: classes ``0 .. num_constants-1`` are the global
constants (fixed for a given program); classes ``num_constants ..``
are the bag's nulls.
"""

from __future__ import annotations

import itertools
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..model import Atom, Constant, Instance, Predicate, Variable
from ..model.joinplan import resolve_exec
from ..query.planner import order_for

# An atom over term classes: (predicate, class ids).
AtomPattern = Tuple[Predicate, Tuple[int, ...]]

FRESH = -1
"""Flow marker: a child class created for an existential variable."""

_MAX_EXACT_CANON = 7
"""Largest null count for which canonicalization tries all permutations."""


def pattern_to_str(pattern: AtomPattern, num_constants: int,
                   constants: Sequence[Constant]) -> str:
    """Human-readable rendering of a pattern, e.g. ``p(*, n1)``."""
    pred, classes = pattern
    parts = []
    for cls in classes:
        if cls < num_constants:
            parts.append(str(constants[cls]))
        else:
            parts.append(f"n{cls - num_constants + 1}")
    return f"{pred.name}({', '.join(parts)})"


class BagType:
    """A canonicalized bag type: null count + cloud of atom patterns.

    Construction canonicalizes: null classes are renumbered so that
    isomorphic bags compare equal.  ``canonical_map`` records how the
    raw class ids passed in map to canonical ids, so callers can
    translate flow information.
    """

    __slots__ = ("num_constants", "num_nulls", "cloud", "canonical_map", "_hash")

    def __init__(
        self,
        num_constants: int,
        num_nulls: int,
        cloud: Iterable[AtomPattern],
    ):
        self.num_constants = num_constants
        self.num_nulls = num_nulls
        raw_cloud = frozenset(cloud)
        canon_cloud, mapping = _canonicalize(num_constants, num_nulls, raw_cloud)
        self.cloud = canon_cloud
        self.canonical_map = mapping
        self._hash = hash((num_constants, num_nulls, self.cloud))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BagType)
            and self.num_constants == other.num_constants
            and self.num_nulls == other.num_nulls
            and self.cloud == other.cloud
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"BagType(nulls={self.num_nulls}, cloud=<{len(self.cloud)} patterns>)"
        )

    @property
    def num_classes(self) -> int:
        """Total classes: constants + nulls."""
        return self.num_constants + self.num_nulls

    def null_classes(self) -> Tuple[int, ...]:
        """The class ids of this bag's nulls."""
        return tuple(range(self.num_constants, self.num_classes))

    def describe(self, constants: Sequence[Constant]) -> str:
        """A stable multi-line rendering for certificates and debugging."""
        lines = [
            pattern_to_str(p, self.num_constants, constants)
            for p in self.cloud
        ]
        return "{" + ", ".join(sorted(lines)) + "}"


def _canonicalize(
    num_constants: int,
    num_nulls: int,
    cloud: FrozenSet[AtomPattern],
) -> Tuple[FrozenSet[AtomPattern], Tuple[int, ...]]:
    """Renumber null classes to a canonical form.

    Returns ``(canonical_cloud, mapping)`` where ``mapping[i]`` is the
    canonical id of raw null class ``num_constants + i``.

    For small null counts every permutation is tried and the
    lexicographically least encoding wins — exact canonicalization.
    Beyond :data:`_MAX_EXACT_CANON` nulls, a signature-refinement
    heuristic is used; it is deterministic (equal bags stay equal) but
    may distinguish some isomorphic bags, which only costs memoization
    hits, never correctness.
    """
    if num_nulls == 0:
        return cloud, ()
    null_ids = list(range(num_constants, num_constants + num_nulls))
    if num_nulls <= _MAX_EXACT_CANON:
        best: Optional[Tuple] = None
        best_cloud: FrozenSet[AtomPattern] = cloud
        best_perm: Tuple[int, ...] = tuple(null_ids)
        for perm in itertools.permutations(null_ids):
            relabel = {old: new for old, new in zip(null_ids, perm)}
            new_cloud = frozenset(
                (pred, tuple(relabel.get(c, c) for c in classes))
                for pred, classes in cloud
            )
            encoding = tuple(
                sorted((pred.name, pred.arity, classes) for pred, classes in new_cloud)
            )
            if best is None or encoding < best:
                best = encoding
                best_cloud = new_cloud
                best_perm = perm
        return best_cloud, best_perm
    # Heuristic: order nulls by an occurrence signature, ties by id.
    signature: Dict[int, Tuple] = {}
    for null in null_ids:
        occurrences = sorted(
            (pred.name, pred.arity, pos)
            for pred, classes in cloud
            for pos, c in enumerate(classes)
            if c == null
        )
        signature[null] = tuple(occurrences)
    ordered = sorted(null_ids, key=lambda n: (signature[n], n))
    relabel = {
        old: num_constants + rank for rank, old in enumerate(ordered)
    }
    new_cloud = frozenset(
        (pred, tuple(relabel.get(c, c) for c in classes))
        for pred, classes in cloud
    )
    mapping = tuple(relabel[n] for n in null_ids)
    return new_cloud, mapping


def atom_to_pattern(
    atom: Atom,
    assignment: Dict[Variable, int],
    constant_class: Dict[Constant, int],
) -> AtomPattern:
    """Translate a rule atom to a pattern under a variable→class map."""
    classes: List[int] = []
    for term in atom.terms:
        if isinstance(term, Variable):
            classes.append(assignment[term])
        elif isinstance(term, Constant):
            classes.append(constant_class[term])
        else:
            raise ValueError(f"nulls cannot appear in rule atoms: {atom}")
    return (atom.predicate, tuple(classes))


# -- the pattern-level join engine -----------------------------------------
#
# Patterns are just atoms over ints, so pattern-level joins can run on
# the same compiled, index-probing machinery as fact-level ones
# (:mod:`repro.model.joinplan`): each class id is interned as a ground
# *class term*, a cloud becomes an ordinary :class:`Instance` over
# class terms, and a rule body becomes a conjunction whose constants
# are rewritten to their constant-class terms.  The pre-index
# backtracking scan is retained as
# :func:`naive_pattern_homomorphisms`, the reference implementation
# the equivalence tests and the benchmark baseline run against.

_CLASS_TERMS: List[Constant] = []


def class_term(cls: int) -> Constant:
    """The interned ground term standing for class id ``cls``."""
    while cls >= len(_CLASS_TERMS):
        _CLASS_TERMS.append(Constant(("cls", len(_CLASS_TERMS))))
    return _CLASS_TERMS[cls]


def _pattern_sort_key(pattern: AtomPattern) -> Tuple:
    pred, classes = pattern
    return (pred.name, pred.arity, classes)


class PatternCloud:
    """A class-indexed bag cloud: the patterns materialized as ground
    atoms over class terms inside an :class:`Instance`, so pattern
    joins probe term-level indexes instead of scanning per atom.

    Patterns are inserted in a canonical sorted order — frozenset
    iteration order is hash-randomized across processes, sorted
    insertion is not — keeping enumeration deterministic run to run.
    """

    __slots__ = ("patterns", "instance", "_tid_class")

    def __init__(self, patterns: Iterable[AtomPattern]):
        self.patterns: FrozenSet[AtomPattern] = frozenset(patterns)
        self.instance = Instance()
        for pred, classes in sorted(self.patterns, key=_pattern_sort_key):
            self.instance.add(
                Atom(pred, [class_term(c) for c in classes])
            )
        # term id (in self.instance's id space) -> class int, decoded
        # lazily: pattern joins emit class ids without materializing
        # class terms per match.
        self._tid_class: Dict[int, int] = {}

    def class_of(self, tid: int) -> int:
        """The class int a term id of this cloud's instance stands for."""
        cls = self._tid_class.get(tid)
        if cls is None:
            cls = self._tid_class[tid] = self.instance.term_of(tid).name[1]
        return cls

    def __len__(self) -> int:
        return len(self.patterns)


_CLOUD_CACHE: Dict[FrozenSet[AtomPattern], PatternCloud] = {}
_CLOUD_CACHE_CAP = 64
"""Saturation asks for the same cloud once per rule per fixpoint
iteration; the cache turns those repeats into one index build.  Capped
because clouds can be large and mostly do not repeat across types."""


def cloud_index(cloud: FrozenSet[AtomPattern]) -> PatternCloud:
    """The (cached) class-indexed form of ``cloud``."""
    index = _CLOUD_CACHE.get(cloud)
    if index is None:
        if len(_CLOUD_CACHE) >= _CLOUD_CACHE_CAP:
            _CLOUD_CACHE.clear()
        index = PatternCloud(cloud)
        _CLOUD_CACHE[cloud] = index
    return index


_BODY_CACHE: Dict[Tuple, Optional[Tuple[Atom, ...]]] = {}
_BODY_CACHE_CAP = 1024
"""Saturation joins the same (rule body, constant-class map) pair once
per rule per fixpoint iteration; caching the rewrite spares the
per-join atom reconstruction and re-hashing."""


def _pattern_body(
    body: Sequence[Atom], constant_class: Dict[Constant, int]
) -> Optional[Tuple[Atom, ...]]:
    """``body`` with constants rewritten to their constant-class terms,
    or ``None`` when some constant has no class (then no assignment can
    exist)."""
    key = (tuple(body), tuple(sorted(constant_class.items())))
    if key in _BODY_CACHE:
        return _BODY_CACHE[key]
    out: Optional[List[Atom]] = []
    for atom in key[0]:
        terms: List = []
        for term in atom.terms:
            if isinstance(term, Variable):
                terms.append(term)
            elif isinstance(term, Constant) and term in constant_class:
                terms.append(class_term(constant_class[term]))
            else:
                terms = None
                break
        if terms is None:
            out = None
            break
        out.append(Atom(atom.predicate, terms))
    result = tuple(out) if out is not None else None
    if len(_BODY_CACHE) >= _BODY_CACHE_CAP:
        _BODY_CACHE.clear()
    _BODY_CACHE[key] = result
    return result


def pattern_homomorphisms(
    body: Sequence[Atom],
    cloud: Union[FrozenSet[AtomPattern], PatternCloud],
    constant_class: Dict[Constant, int],
    policy: str = "cost",
) -> Iterator[Dict[Variable, int]]:
    """All assignments of the body's variables to classes such that
    every body atom maps to a cloud pattern.

    The pattern-level analogue of
    :func:`repro.model.homomorphism.homomorphisms`; rule constants must
    land on their own constant class.  ``cloud`` may be a raw frozenset
    of patterns or an already-built :class:`PatternCloud`; ``policy``
    selects the planner's join ordering (class-term posting lists are
    real columnar statistics, so ``cost`` ordering probes selective
    constant columns first).  Assignments are yielded in the chosen
    plan's deterministic order (which differs from the naive
    reference's order — callers treat the result as a set), and the
    whole join runs in id space: class ints are decoded through the
    cloud's memo, never by materializing per-match Term objects.
    """
    index = cloud if isinstance(cloud, PatternCloud) else cloud_index(cloud)
    pattern_body = _pattern_body(body, constant_class)
    if pattern_body is None:
        return
    instance = index.instance
    ordered = order_for(pattern_body, instance, policy=policy)
    exec_ = resolve_exec(instance, ordered)
    out = exec_.out
    class_of = index.class_of
    for match in exec_.run(instance, exec_.fresh_assign()):
        yield {var: class_of(match[slot]) for var, slot in out}


def naive_pattern_homomorphisms(
    body: Sequence[Atom],
    cloud: Union[FrozenSet[AtomPattern], PatternCloud],
    constant_class: Dict[Constant, int],
) -> Iterable[Dict[Variable, int]]:
    """The pre-index backtracking pattern matcher, retained as the
    reference implementation for equivalence tests and the benchmark
    baseline.  Yields the same assignments as
    :func:`pattern_homomorphisms` (possibly in a different order)."""
    if isinstance(cloud, PatternCloud):
        cloud = cloud.patterns
    by_predicate: Dict[Predicate, List[Tuple[int, ...]]] = {}
    for pred, classes in cloud:
        by_predicate.setdefault(pred, []).append(classes)
    for rows in by_predicate.values():
        rows.sort()
    ordered = sorted(
        body,
        key=lambda a: len(by_predicate.get(a.predicate, ())),
    )

    def extend(idx: int, assignment: Dict[Variable, int]):
        if idx == len(ordered):
            yield dict(assignment)
            return
        atom = ordered[idx]
        for classes in by_predicate.get(atom.predicate, ()):
            trial = dict(assignment)
            ok = True
            for term, cls in zip(atom.terms, classes):
                if isinstance(term, Variable):
                    bound = trial.get(term)
                    if bound is None:
                        trial[term] = cls
                    elif bound != cls:
                        ok = False
                        break
                elif isinstance(term, Constant):
                    if constant_class.get(term) != cls:
                        ok = False
                        break
                else:
                    ok = False
                    break
            if ok:
                yield from extend(idx + 1, trial)

    yield from extend(0, {})
