"""§4 (future work) — restricted-chase termination for single-head
linear TGDs.

The paper sketches a preliminary result: for single-head linear TGDs
in which each predicate appears in the head of at most one rule, the
fragment guaranteeing restricted-chase termination can be
characterized by "a careful extension of weak acyclicity", decidable
in polynomial time.  The full construction was left to future work;
this module is a documented **reconstruction** in that spirit:

* Build a *rule graph* with two kinds of edges σ → τ, both requiring
  that τ's body unifies with σ's head and that the restricted chase
  would not skip the resulting trigger (the demanded head must not be
  satisfied by the very atom that triggered it — the skip rule is what
  separates the restricted from the semi-oblivious chase):

  - a **fresh** edge when a null invented by σ lands in τ's body;
  - a **carry** edge when only frontier values flow (τ can relay nulls
    created upstream without inventing any).

* Σ diverges iff some cycle of (fresh ∪ carry) edges contains at least
  one fresh edge — the weak-acyclicity idea lifted from positions to
  rules, with the self-satisfaction pruning added.

The test runs in polynomial time (quadratically many edges, each
checked by unification).  ``tests/test_restricted_sh.py`` validates
the verdicts against budgeted restricted-chase runs on all-distinct
databases (note the restricted chase is *not* captured by the critical
instance: ``p(X,Y) → ∃Z p(X,Z)`` is satisfied outright on ``p(*,*)``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..classes import is_linear, is_single_head_per_predicate
from ..errors import UnsupportedClassError
from ..model import Atom, Constant, TGD, Term, Variable
from .verdict import TerminationVerdict


class _ExistentialMarker(Constant):
    """A placeholder constant standing for 'some null invented by σ'."""

    def __init__(self, name: str):
        super().__init__(f"?{name}")

    def __reduce__(self):
        # Constant's interned __reduce__ would demote a round-tripped
        # marker to a plain Constant, and the fresh/carry edge labels
        # classify by isinstance.
        return (_ExistentialMarker, (self.name[1:],))


def _head_with_markers(rule: TGD) -> Tuple[Atom, Dict[Term, Term]]:
    """The (single) head atom with existential variables replaced by
    distinguishable markers."""
    markers: Dict[Term, Term] = {
        v: _ExistentialMarker(v.name) for v in rule.existential_variables
    }
    return rule.head[0].substitute(markers), markers


def _matches(pattern: Atom, atom: Atom) -> Optional[Dict[Variable, Term]]:
    """Match a rule body ``pattern`` against a concrete-ish ``atom``
    (markers count as concrete values); returns the assignment."""
    if pattern.predicate != atom.predicate:
        return None
    assignment: Dict[Variable, Term] = {}
    for pat, val in zip(pattern.terms, atom.terms):
        if isinstance(pat, Variable):
            bound = assignment.get(pat)
            if bound is None:
                assignment[pat] = val
            elif bound != val:
                return None
        elif pat != val:
            return None
    return assignment


def _self_satisfied(
    producer_head: Atom, consumer: TGD, assignment: Dict[Variable, Term]
) -> bool:
    """Would the head ``consumer`` demands under ``assignment`` already
    be satisfied by the producing atom itself?

    The demanded head instantiates the consumer's frontier from
    ``assignment`` and leaves its existential positions free; it is
    satisfied by ``producer_head`` iff the two unify position-wise with
    the frontier values pinned.
    """
    demanded = consumer.head[0]
    if demanded.predicate != producer_head.predicate:
        return False
    existential_binding: Dict[Variable, Term] = {}
    for dem, got in zip(demanded.terms, producer_head.terms):
        if isinstance(dem, Variable):
            if dem in consumer.existential_variables:
                bound = existential_binding.get(dem)
                if bound is None:
                    existential_binding[dem] = got
                elif bound != got:
                    return False
            else:
                if assignment.get(dem) != got:
                    return False
        elif dem != got:
            return False
    return True


def _edge_kind(producer: TGD, consumer: TGD) -> Optional[str]:
    """``"fresh"``, ``"carry"``, or ``None``.

    Fresh: a null invented by ``producer`` reaches ``consumer``'s body
    and the restricted chase will not skip the trigger.  Carry: the
    trigger only relays the producer's frontier values (which may hold
    nulls created further upstream).
    """
    head, markers = _head_with_markers(producer)
    assignment = _matches(consumer.body[0], head)
    if assignment is None:
        return None
    if _self_satisfied(head, consumer, assignment):
        # The producing atom itself satisfies the demanded head: the
        # restricted chase skips this trigger outright.
        return None
    touches_fresh = any(
        isinstance(value, _ExistentialMarker) for value in assignment.values()
    )
    if touches_fresh:
        return "fresh"
    if any(
        isinstance(value, Variable) for value in assignment.values()
    ):
        # Frontier values flow through; they can carry upstream nulls.
        return "carry"
    return None


def restricted_rule_graph(
    rules: Sequence[TGD],
) -> Dict[int, Dict[int, str]]:
    """The labelled rule graph: ``graph[i][j]`` is ``"fresh"`` or
    ``"carry"`` when an edge from rule ``i`` to rule ``j`` exists."""
    adjacency: Dict[int, Dict[int, str]] = {
        i: {} for i in range(len(rules))
    }
    for i, producer in enumerate(rules):
        for j, consumer in enumerate(rules):
            kind = _edge_kind(producer, consumer)
            if kind is not None:
                adjacency[i][j] = kind
    return adjacency


def _fresh_cycle(
    adjacency: Dict[int, Dict[int, str]]
) -> Optional[List[int]]:
    """A cycle containing at least one fresh edge, as a node list
    ``[i, j, ..., i]``, or ``None``.

    For each fresh edge (i, j), search a path j ⇝ i through any edges;
    fresh-free cycles only shuffle existing facts and terminate.
    """
    from collections import deque

    for i, targets in adjacency.items():
        for j, kind in targets.items():
            if kind != "fresh":
                continue
            if j == i:
                return [i]
            parents: Dict[int, int] = {}
            seen = {j}
            queue: deque = deque([j])
            while queue:
                node = queue.popleft()
                if node == i:
                    # Reconstruct j -> ... -> i, then prepend the fresh
                    # edge's source: the cycle is i -> j -> ... -> (i).
                    trail = [i]
                    while trail[-1] != j:
                        trail.append(parents[trail[-1]])
                    trail.reverse()
                    return [i] + trail[:-1]
                for child in adjacency.get(node, {}):
                    if child not in seen:
                        seen.add(child)
                        parents[child] = node
                        queue.append(child)
    return None


def decide_restricted_single_head(
    rules: Sequence[TGD],
) -> TerminationVerdict:
    """Decide restricted-chase termination for single-head linear Σ
    (each predicate in the head of at most one rule), per the §4
    reconstruction."""
    rules = list(rules)
    if not is_linear(rules):
        raise UnsupportedClassError(
            "the §4 procedure requires linear TGDs"
        )
    if not is_single_head_per_predicate(rules):
        raise UnsupportedClassError(
            "the §4 procedure requires single-head rules with each "
            "predicate in the head of at most one rule"
        )
    adjacency = restricted_rule_graph(rules)
    cycle = _fresh_cycle(adjacency)
    stats = {
        "rules": len(rules),
        "edges": sum(len(v) for v in adjacency.values()),
    }
    if cycle is None:
        return TerminationVerdict(
            True, "restricted", "restricted_rule_graph", None, stats
        )
    witness = [rules[i] for i in cycle]
    return TerminationVerdict(
        False, "restricted", "restricted_rule_graph", witness, stats
    )
