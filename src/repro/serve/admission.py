"""Admission control: shed load instead of queueing without bound.

PR 8's server accepted every request the thread pool could hold; under
sustained overload that means unbounded latency growth and, for
ingest, an unbounded line of writers parked on the resident lock.  The
:class:`AdmissionController` is the service-wide gate every verb
passes through:

* **Concurrent-request gate.**  At most ``max_inflight`` requests are
  in flight service-wide; the next one is *shed* with HTTP 503 and a
  ``Retry-After`` computed from the recent request-latency EWMA — the
  client learns when capacity is likely back instead of timing out.
* **Bounded per-resident ingest queue.**  Ingests to one resident are
  serialized by its writer lock; at most ``max_ingest_queue`` may wait
  for it.  The next is shed with HTTP 429 (the resident exists and is
  healthy — the *caller* is sending faster than one chase can drain).

Shedding is deliberately cheap (one lock, two integer comparisons) and
happens before any parsing or budget work, so a saturated service
stays responsive: ``/health`` and ``/stats`` bypass admission
entirely and keep answering while requests shed.

``Retry-After`` heuristic: the EWMA of recent admitted-request
latencies, scaled by the current depth of the line
(``inflight / max_inflight`` for the service gate, queue length for an
ingest queue), floored at 1 second — i.e. "roughly one drain period".
The EWMA updates on every admitted request's completion (success or
failure), so a service saturated with slow queries quotes honestly
long retry hints.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Optional

from .service import Resident, ServiceError

#: EWMA smoothing factor for request latency (~last 10 requests).
_ALPHA = 0.2

#: How long after the last shed the service still reports
#: ``degraded`` (overload is bursty; health should not flap per
#: request).
DEGRADED_WINDOW_S = 10.0


class OverloadError(ServiceError):
    """A shed request: HTTP 429 (per-resident ingest queue full) or
    503 (service-wide gate), carrying the ``Retry-After`` hint."""

    def __init__(self, message: str, status: int, retry_after_s: float):
        super().__init__(message, status=status)
        self.retry_after_s = retry_after_s


class AdmissionController:
    """The service-wide gate (see module docstring).

    ``max_inflight`` bounds concurrently admitted requests (``None``
    disables the gate); ``max_ingest_queue`` bounds how many ingests
    may wait on one resident's writer lock.  ``clock`` is injectable
    for deterministic tests.
    """

    __slots__ = ("max_inflight", "max_ingest_queue", "_lock", "_clock",
                 "inflight", "accepted", "shed", "ingest_shed",
                 "_ewma_s", "_last_shed_at")

    def __init__(
        self,
        max_inflight: Optional[int] = 64,
        max_ingest_queue: int = 16,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_inflight is not None and max_inflight <= 0:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        if max_ingest_queue <= 0:
            raise ValueError(
                f"max_ingest_queue must be positive, got {max_ingest_queue}"
            )
        self.max_inflight = max_inflight
        self.max_ingest_queue = max_ingest_queue
        self._lock = threading.Lock()
        self._clock = clock
        self.inflight = 0
        self.accepted = 0
        self.shed = 0
        self.ingest_shed = 0
        self._ewma_s: Optional[float] = None
        self._last_shed_at: Optional[float] = None

    # -- the service-wide gate ----------------------------------------------

    def acquire(self) -> float:
        """Admit one request (returns its start time for
        :meth:`release`) or shed it with :class:`OverloadError` 503."""
        with self._lock:
            if (
                self.max_inflight is not None
                and self.inflight >= self.max_inflight
            ):
                self.shed += 1
                self._last_shed_at = self._clock()
                retry = self._retry_after_locked(self.inflight)
                raise OverloadError(
                    f"service at capacity ({self.inflight} requests in "
                    f"flight); retry in ~{retry:.1f}s",
                    status=503,
                    retry_after_s=retry,
                )
            self.inflight += 1
            self.accepted += 1
        return self._clock()

    def release(self, started_at: float) -> None:
        """Complete an admitted request; feeds the latency EWMA."""
        elapsed = max(0.0, self._clock() - started_at)
        with self._lock:
            self.inflight -= 1
            if self._ewma_s is None:
                self._ewma_s = elapsed
            else:
                self._ewma_s += _ALPHA * (elapsed - self._ewma_s)

    # -- the per-resident ingest queue ---------------------------------------

    def enter_ingest_queue(self, resident: Resident) -> None:
        """Join the line for ``resident``'s writer lock, or shed with
        :class:`OverloadError` 429 when the line is full."""
        with self._lock:
            if resident.ingest_waiting >= self.max_ingest_queue:
                self.ingest_shed += 1
                self._last_shed_at = self._clock()
                retry = self._retry_after_locked(
                    resident.ingest_waiting
                )
                raise OverloadError(
                    f"resident {resident.name!r} ingest queue is full "
                    f"({resident.ingest_waiting} waiting); retry in "
                    f"~{retry:.1f}s",
                    status=429,
                    retry_after_s=retry,
                )
            resident.ingest_waiting += 1

    def leave_ingest_queue(self, resident: Resident) -> None:
        with self._lock:
            resident.ingest_waiting -= 1

    # -- health / stats ------------------------------------------------------

    def _retry_after_locked(self, depth: int) -> float:
        base = self._ewma_s if self._ewma_s else 0.5
        return min(60.0, max(1.0, base * (depth + 1)))

    def retry_after_s(self) -> float:
        """The current ``Retry-After`` hint in seconds (≥ 1)."""
        with self._lock:
            return self._retry_after_locked(self.inflight)

    def retry_after_header(self, retry_s: Optional[float] = None) -> str:
        """``Retry-After`` is integer seconds on the wire."""
        if retry_s is None:
            retry_s = self.retry_after_s()
        return str(max(1, int(math.ceil(retry_s))))

    def overloaded_recently(self) -> bool:
        """True while the service is inside the post-shed degraded
        window — the ``/health`` signal that load is being shed."""
        last = self._last_shed_at
        return (
            last is not None
            and self._clock() - last < DEGRADED_WINDOW_S
        )

    def describe(self) -> dict:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "max_ingest_queue": self.max_ingest_queue,
                "inflight": self.inflight,
                "accepted": self.accepted,
                "shed": self.shed,
                "ingest_shed": self.ingest_shed,
                "latency_ewma_s": (
                    round(self._ewma_s, 6)
                    if self._ewma_s is not None else None
                ),
            }
