"""A stdlib-only asyncio HTTP front end over :class:`ChaseService`.

:class:`ChaseServer` speaks just enough HTTP/1.1 (request line, headers,
``Content-Length`` bodies, ``Connection: close``) to serve JSON without
any dependency beyond the standard library.  Endpoints:

===========  ======  ====================================================
path         method  body / effect
===========  ======  ====================================================
``/``        GET     endpoint index
``/health``  GET     liveness probe (also reports draining state)
``/stats``   GET     :meth:`ChaseService.status` — per-resident state
``/query``   POST    ``{"query": "...", "certain"?, "resident"?,
                     "policy"?, "kernel"?, "timeout_s"?}`` → answers
``/entail``  POST    ``{"atom": "p(a, b)", "resident"?, "timeout_s"?}``
                     → ground-atom entailment at the pinned watermark
``/facts``   POST    ``{"facts": "...text..." | ["p(a, b)", ...],
                     "resident"?, "timeout_s"?, "max_steps"?,
                     "ingest_id"?}`` → incremental maintenance (chase
                     resumed from the delta), then a fresh snapshot is
                     published; ``ingest_id`` is the idempotency key a
                     safe retry reuses
===========  ======  ====================================================

Service calls run on the event loop's default thread-pool executor, so
slow queries and ingest legs never stall the accept loop; concurrency
control is the service's own (snapshot-pinned reads, per-resident
single-writer ingest lock, admission gate).  Error mapping:
:class:`ServiceError` → its status, parse/validation errors → 400, a
tripped request budget (:class:`~repro.errors.BudgetExceededError`) →
503 with the stop reason, unknown path → 404.  A shed request
(:class:`~repro.serve.admission.OverloadError`) maps to 429/503 with a
``Retry-After`` header and a ``retry_after_s`` payload field.

``/health`` and ``/stats`` deliberately bypass the admission gate and
(for ``/health``) the executor pool: they are computed inline on the
event loop from cheap attribute reads, so a fully saturated service
still answers its probes.

:class:`BackgroundServer` runs a server on a daemon thread with a
ready/stop handshake — the shape tests, examples, and the benchmark
harness use; the CLI's foreground path calls :meth:`ChaseServer.run`.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional, Tuple

from ..errors import BudgetExceededError, ReproError
from .admission import OverloadError
from .service import ChaseService, ServiceError

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 64 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_INDEX = {
    "endpoints": {
        "GET /health": "liveness probe (ok | degraded | quarantined)",
        "GET /stats": "per-resident chase state and counters",
        "POST /query": "conjunctive query over the pinned snapshot",
        "POST /entail": "ground-atom entailment",
        "POST /facts": (
            "ingest base facts; incremental maintenance "
            "(idempotent via ingest_id)"
        ),
    },
}

_Headers = Tuple[Tuple[str, str], ...]


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ChaseServer:
    """One listening socket over one :class:`ChaseService`.

    ``port=0`` binds an ephemeral port; the bound address is available
    as :attr:`address` once :meth:`start` returns (the CLI prints it so
    scripted clients — e.g. ``ci/check_serve.py`` — can parse it).
    """

    def __init__(
        self,
        service: ChaseService,
        host: str = "127.0.0.1",
        port: int = 8080,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — meaningful after :meth:`start`
        (resolves ``port=0`` to the kernel-assigned port)."""
        if self._server is not None and self._server.sockets:
            sock = self._server.sockets[0]
            name = sock.getsockname()
            return (name[0], name[1])
        return (self.host, self.port)

    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port
            )
            self.host, self.port = self.address

    async def stop(self) -> None:
        """Stop accepting, cancel in-flight request budgets, close."""
        self.service.shutdown()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_until(self, stop: "asyncio.Event") -> None:
        """Run until ``stop`` is set, then shut down cleanly."""
        await self.start()
        try:
            await stop.wait()
        finally:
            await self.stop()

    def run(self) -> None:
        """Foreground loop for the CLI: serve until SIGINT/SIGTERM
        (handled on the loop where the platform allows — a clean exit,
        not a traceback), then stop cleanly."""

        async def _main() -> None:
            import signal

            await self.start()
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, stop.set)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-Unix / non-main-thread: Ctrl-C unwinds
            print(
                f"% serving on http://{self.host}:{self.port}",
                flush=True,
            )
            try:
                await stop.wait()
            finally:
                await self.stop()

        asyncio.run(_main())

    # -- request handling ----------------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        headers: _Headers = ()
        try:
            status, payload, headers = await self._respond(reader)
        except Exception as exc:  # pragma: no cover - handler backstop
            status, payload = 500, {"error": f"internal error: {exc}"}
        body = json.dumps(payload, indent=2).encode() + b"\n"
        extra = "".join(f"{key}: {value}\r\n" for key, value in headers)
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n"
        ).encode()
        try:
            writer.write(head + body)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # client went away
            pass

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, dict, _Headers]:
        try:
            method, path, body = await self._read_request(reader)
        except _HttpError as exc:
            return exc.status, {"error": str(exc)}, ()
        except (asyncio.IncompleteReadError, ConnectionError):
            return 400, {"error": "truncated request"}, ()
        try:
            status, payload = await self._route(method, path, body)
            return status, payload, ()
        except _HttpError as exc:
            return exc.status, {"error": str(exc)}, ()
        except OverloadError as exc:
            # A shed request: tell the client when to come back, both
            # on the wire (Retry-After, integer seconds) and in the
            # payload (fractional, for programmatic backoff).
            header = self.service.admission.retry_after_header(
                exc.retry_after_s
            )
            return (
                exc.status,
                {
                    "error": str(exc),
                    "retry_after_s": round(exc.retry_after_s, 3),
                },
                (("Retry-After", header),),
            )
        except ServiceError as exc:
            return exc.status, {"error": str(exc)}, ()
        except BudgetExceededError as exc:
            return 503, {
                "error": str(exc),
                "stop_reason": exc.stop_reason,
            }, ()
        except (ReproError, ValueError, TypeError) as exc:
            return 400, {"error": str(exc)}, ()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "request head too large")
        if len(head) > _MAX_HEADER_BYTES:
            raise _HttpError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        length = 0
        for line in lines[1:]:
            if ":" not in line:
                continue
            key, _, value = line.partition(":")
            if key.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length")
        if length < 0 or length > _MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, body

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, dict]:
        if path == "/" or path == "/index":
            self._require(method, "GET")
            return 200, _INDEX
        if path == "/health":
            # Inline on the event loop — cheap attribute reads only —
            # so the probe answers even when the executor pool and the
            # admission gate are saturated.
            self._require(method, "GET")
            return 200, self.service.health()
        if path == "/stats":
            self._require(method, "GET")
            return 200, await self._call(self.service.status)
        if path == "/query":
            self._require(method, "POST")
            payload = self._json(body)
            text = self._field(payload, "query")
            out = await self._call(
                self.service.query,
                text,
                resident=payload.get("resident"),
                certain=bool(payload.get("certain", False)),
                policy=payload.get("policy", "cost"),
                kernel=payload.get("kernel"),
                timeout_s=payload.get("timeout_s"),
            )
            return 200, out
        if path == "/entail":
            self._require(method, "POST")
            payload = self._json(body)
            text = self._field(payload, "atom")
            out = await self._call(
                self.service.entail,
                text,
                resident=payload.get("resident"),
                timeout_s=payload.get("timeout_s"),
            )
            return 200, out
        if path == "/facts":
            self._require(method, "POST")
            payload = self._json(body)
            facts = payload.get("facts")
            if not isinstance(facts, (str, list)):
                raise _HttpError(
                    400, "'facts' must be a string or a list of strings"
                )
            ingest_id = payload.get("ingest_id")
            if ingest_id is not None and (
                not isinstance(ingest_id, str) or not ingest_id.strip()
            ):
                raise _HttpError(
                    400, "'ingest_id' must be a non-empty string"
                )
            out = await self._call(
                self.service.ingest,
                facts,
                resident=payload.get("resident"),
                timeout_s=payload.get("timeout_s"),
                max_steps=payload.get("max_steps"),
                ingest_id=ingest_id,
            )
            return 200, out
        raise _HttpError(404, f"no such endpoint: {path}")

    async def _call(self, fn, *args, **kwargs):
        """Run a (potentially slow) service call off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: fn(*args, **kwargs)
        )

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    @staticmethod
    def _json(body: bytes) -> dict:
        if not body:
            raise _HttpError(400, "empty body; send a JSON object")
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"bad JSON: {exc}")
        if not isinstance(payload, dict):
            raise _HttpError(400, "body must be a JSON object")
        return payload

    @staticmethod
    def _field(payload: dict, key: str) -> str:
        value = payload.get(key)
        if not isinstance(value, str) or not value.strip():
            raise _HttpError(400, f"missing or empty {key!r} field")
        return value


class BackgroundServer:
    """A :class:`ChaseServer` on a daemon thread, for tests and
    examples::

        with BackgroundServer(service, port=0) as server:
            host, port = server.address
            ...http.client against (host, port)...

    ``__enter__`` blocks until the socket is bound; ``__exit__`` (or
    :meth:`stop`) signals the loop, waits for clean shutdown, and
    joins the thread.
    """

    def __init__(
        self,
        service: ChaseService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.server = ChaseServer(service, host=host, port=port)
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise self._error
        if not self._ready.is_set():
            raise RuntimeError("server failed to start within 30s")
        return self

    def _run(self) -> None:
        async def _main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await self.server.start()
            except BaseException as exc:
                self._error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.server.serve_until(self._stop)

        asyncio.run(_main())

    def stop(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_background(
    service: ChaseService, host: str = "127.0.0.1", port: int = 0
) -> BackgroundServer:
    """Start a :class:`BackgroundServer` and return it once bound."""
    return BackgroundServer(service, host=host, port=port).start()
