"""Chase-as-a-service: the long-lived query server.

``python -m repro serve RULES.tgd --data DB.facts`` (or ``--db DIR``)
keeps one or more chased instances resident and serves conjunctive
queries, certain answers, and ground-atom entailment over HTTP, with a
``POST /facts`` ingest endpoint that maintains each instance
**incrementally** — new base facts are appended and the chase resumed
from the delta (:class:`~repro.chase.incremental.ChaseSession`), never
re-run from scratch.

The package splits transport from logic:

* :class:`~repro.serve.service.ChaseService` — the embeddable core: a
  registry of resident instances, watermark-snapshot reads, per-request
  :class:`~repro.runtime.budget.Budget` deadlines, and serialized
  incremental ingest.  Usable directly as a library (no sockets).
* :class:`~repro.serve.server.ChaseServer` — a stdlib-only ``asyncio``
  HTTP/1.1 front end over a service;
  :class:`~repro.serve.server.BackgroundServer` runs one on a daemon
  thread for tests, examples, and benchmarks.

* :class:`~repro.serve.admission.AdmissionController` — the overload
  gate: a service-wide concurrent-request bound plus a bounded
  per-resident ingest queue; excess load is shed with 429/503 and a
  ``Retry-After`` hint instead of queueing without bound.

Consistency model: every read request is pinned to the resident's
*published snapshot* — a row-count watermark view taken at the end of
the last completed extension leg — so concurrent readers never observe
a partially applied round, while the single writer appends the next
leg.  Durable residents additionally write every ingest delta to a
write-ahead journal (fsync before the chase runs), making
``POST /facts`` crash-recoverable and idempotent per ``ingest_id``.
See ``docs/ARCHITECTURE.md`` ("The server") for the full contract.
"""

from .admission import AdmissionController, OverloadError
from .server import BackgroundServer, ChaseServer, serve_background
from .service import ChaseService, Resident, ServiceError

__all__ = [
    "AdmissionController",
    "BackgroundServer",
    "ChaseServer",
    "ChaseService",
    "OverloadError",
    "Resident",
    "ServiceError",
    "serve_background",
]
