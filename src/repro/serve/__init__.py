"""Chase-as-a-service: the long-lived query server.

``python -m repro serve RULES.tgd --data DB.facts`` (or ``--db DIR``)
keeps one or more chased instances resident and serves conjunctive
queries, certain answers, and ground-atom entailment over HTTP, with a
``POST /facts`` ingest endpoint that maintains each instance
**incrementally** — new base facts are appended and the chase resumed
from the delta (:class:`~repro.chase.incremental.ChaseSession`), never
re-run from scratch.

The package splits transport from logic:

* :class:`~repro.serve.service.ChaseService` — the embeddable core: a
  registry of resident instances, watermark-snapshot reads, per-request
  :class:`~repro.runtime.budget.Budget` deadlines, and serialized
  incremental ingest.  Usable directly as a library (no sockets).
* :class:`~repro.serve.server.ChaseServer` — a stdlib-only ``asyncio``
  HTTP/1.1 front end over a service;
  :class:`~repro.serve.server.BackgroundServer` runs one on a daemon
  thread for tests, examples, and benchmarks.

Consistency model: every read request is pinned to the resident's
*published snapshot* — a row-count watermark view taken at the end of
the last completed extension leg — so concurrent readers never observe
a partially applied round, while the single writer appends the next
leg.  See ``docs/ARCHITECTURE.md`` ("The server") for the full
contract.
"""

from .server import BackgroundServer, ChaseServer, serve_background
from .service import ChaseService, Resident, ServiceError

__all__ = [
    "BackgroundServer",
    "ChaseServer",
    "ChaseService",
    "Resident",
    "ServiceError",
    "serve_background",
]
