"""The embeddable chase service: residents, snapshots, budgets, ingest.

:class:`ChaseService` is the transport-free core of ``repro serve`` —
a registry of named *residents* (chased instances kept in memory,
optionally checkpointing to durable stores) with four operations:

``query``
    Evaluate a conjunctive query (naive or certain answers, or a bare
    boolean conjunction) against the resident's **published snapshot**
    — a watermark view pinned once per request, so the answer set is
    computed over one consistent instance even while an ingest is
    appending the next extension leg.
``entail``
    Ground-atom entailment.  Over a terminated chase the resident is a
    universal model, so a constant-only atom is entailed iff it is
    *present* — one O(1) membership probe at the pinned watermark.
``ingest``
    Append new base facts and incrementally maintain the chase
    (:meth:`~repro.chase.incremental.ChaseSession.extend`), then
    publish a fresh snapshot.  Single-writer: ingests to one resident
    are serialized by a lock; readers are never blocked.  With a
    durable resident the delta is first made durable in the
    write-ahead ingest journal (:mod:`repro.storage.journal`), so a
    crash mid-leg loses nothing and a retried ``ingest_id`` is
    deduplicated (at-most-once effect, replayed response).
``status``
    Per-resident counters and chase state.

Every request passes the service's
:class:`~repro.serve.admission.AdmissionController` first — overload
is *shed* (HTTP 429/503 with a ``Retry-After`` hint) instead of queued
without bound — and runs under a fresh
:class:`~repro.runtime.budget.Budget` carrying the service's shared
:class:`~repro.runtime.budget.CancelToken`, so :meth:`shutdown`
cancels in-flight work cooperatively.

Failure containment: a budget-tripped ingest leg *republishes* the
session's round-consistent prefix (with its stop reason) so readers
see the true durable state; an ingest leg that fails for any
non-budget reason **quarantines** the resident — read-only at its
last published snapshot, refusing further ingests — instead of
poisoning the whole service.  ``/health`` reports the resulting
``ok | degraded | quarantined`` state.

Thread-safety contract: residents publish snapshots by plain attribute
assignment (atomic under the GIL) and snapshots never intern into the
shared symbol tables, so any number of reader threads may serve
requests while one ingest extends the instance — the GIL-safety
argument lives in :mod:`repro.storage.snapshot`.  Counters are guarded
by a per-resident lock so ``/stats`` is exact under concurrency.
"""

from __future__ import annotations

import contextlib
import threading
import uuid
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Union

from ..chase.incremental import ChaseSession
from ..errors import BudgetExceededError, ReproError
from ..model import Atom, Instance, Predicate
from ..model.instances import SnapshotInstance
from ..parser import atom_to_text, parse_atom, parse_fact, parse_query
from ..runtime import faults
from ..runtime.budget import Budget, CancelToken
from ..storage.journal import MAX_ACKS, IngestJournal

#: Resident health states (worst-wins at the service level).
HEALTH_OK = "ok"
HEALTH_DEGRADED = "degraded"
HEALTH_QUARANTINED = "quarantined"


class ServiceError(ReproError):
    """A request-level failure with an HTTP-ish status code (400 bad
    request, 404 unknown resident, 409 read-only resident, 429/503
    overload, ...)."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class Resident:
    """One served instance: a :class:`ChaseSession` (extendable) or a
    bare read-only :class:`Instance` (e.g. a reopened plain store),
    plus the published snapshot reads are pinned to."""

    __slots__ = ("name", "session", "instance", "snapshot", "lock",
                 "terminated", "stop_reason", "queries", "ingests",
                 "ingest_waiting", "quarantine_reason", "journal",
                 "_acks", "_count_lock")

    def __init__(
        self,
        name: str,
        session: Optional[ChaseSession] = None,
        instance: Optional[Instance] = None,
        terminated: Optional[bool] = None,
    ):
        if (session is None) == (instance is None):
            raise ValueError("pass a session or an instance, not both")
        self.name = name
        self.session = session
        self.instance = session.instance if session else instance
        #: The published consistent view; replaced wholesale (atomic
        #: attribute write) at the end of every ingest leg.
        self.snapshot: SnapshotInstance = self.instance.snapshot()
        #: Serializes ingest legs (the chase is single-writer).
        self.lock = threading.Lock()
        self.terminated = (
            session.terminated if session else terminated
        )
        self.stop_reason: Optional[str] = (
            session.stop_reason if session else None
        )
        self.queries = 0
        self.ingests = 0
        #: Ingests currently waiting on :attr:`lock` (bounded by the
        #: admission controller; mutated under its lock).
        self.ingest_waiting = 0
        self.quarantine_reason: Optional[str] = None
        #: The write-ahead ingest journal (durable residents only).
        self.journal: Optional[IngestJournal] = None
        #: ``ingest_id`` → recorded response: the in-memory idempotency
        #: window (seeded from the journal when one is attached).
        self._acks: "OrderedDict[str, dict]" = OrderedDict()
        #: Guards the counters so ``/stats`` is exact under concurrent
        #: readers (``+=`` is read-modify-write, not atomic).
        self._count_lock = threading.Lock()

    @property
    def read_only(self) -> bool:
        """True when the resident has no chase session to extend."""
        return self.session is None

    @property
    def health(self) -> str:
        """``quarantined`` after a failed ingest leg, ``degraded``
        while the last leg stopped short of fixpoint, else ``ok``."""
        if self.quarantine_reason is not None:
            return HEALTH_QUARANTINED
        if self.session is not None and self.stop_reason not in (
            None, "fixpoint"
        ):
            return HEALTH_DEGRADED
        return HEALTH_OK

    def quarantine(self, reason: str) -> None:
        """Freeze the resident read-only at its last published
        snapshot: queries keep answering, ingests refuse."""
        self.quarantine_reason = reason

    def note_query(self) -> None:
        with self._count_lock:
            self.queries += 1

    def note_ingest(self) -> None:
        with self._count_lock:
            self.ingests += 1

    # -- idempotency ---------------------------------------------------------

    def recorded_response(self, ingest_id: str) -> Optional[dict]:
        return self._acks.get(ingest_id)

    def record_response(self, ingest_id: str, response: dict) -> None:
        """Remember (and, when journaled, persist) the response a
        retried ``ingest_id`` replays.  Called under :attr:`lock`."""
        if self.journal is not None:
            self.journal.append_ack(ingest_id, response)
        self._acks[ingest_id] = response
        self._acks.move_to_end(ingest_id)
        while len(self._acks) > MAX_ACKS:
            self._acks.popitem(last=False)

    def describe(self) -> dict:
        out: Dict[str, object] = {
            "facts": self.snapshot.watermark,
            "read_only": self.read_only,
            "terminated": self.terminated,
            "health": self.health,
            "queries": self.queries,
            "ingests": self.ingests,
        }
        if self.quarantine_reason is not None:
            out["quarantine_reason"] = self.quarantine_reason
        session = self.session
        if session is not None:
            out["variant"] = session.variant
            out["steps"] = session.step_count
            out["stop_reason"] = self.stop_reason
        if self.journal is not None:
            out["journal"] = self.journal.describe()
        return out


FactsInput = Union[str, Iterable[str]]


class ChaseService:
    """The transport-free server core: named residents + four verbs.

    ``request_timeout_s`` caps every per-request deadline (a request
    may ask for less, never more); ``cancel`` is the shared
    cancellation token every request budget carries — default a fresh
    one, flipped by :meth:`shutdown`.  ``admission`` is the overload
    gate (a default :class:`~repro.serve.admission.AdmissionController`
    when omitted).  ``default_kernel`` is the execution tier queries
    run on when a request names none (see
    :data:`repro.query.kernels.KERNELS` — the CLI's ``--kernel``).
    """

    def __init__(
        self,
        request_timeout_s: Optional[float] = 30.0,
        cancel: Optional[CancelToken] = None,
        admission=None,
        default_kernel: str = "tuple",
    ):
        from .admission import AdmissionController
        from ..query.kernels import KERNELS

        if default_kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {default_kernel!r}; expected one of "
                f"{KERNELS}"
            )
        self.request_timeout_s = request_timeout_s
        self.cancel = cancel if cancel is not None else CancelToken()
        self.residents: Dict[str, Resident] = {}
        self.default_kernel = default_kernel
        self.admission = (
            admission if admission is not None else AdmissionController()
        )

    # -- registry ------------------------------------------------------------

    def add_session(
        self,
        name: str,
        session: ChaseSession,
        journal: Union[None, bool, str, IngestJournal] = None,
    ) -> Resident:
        """Register an extendable resident over a live chase session.

        ``journal`` attaches a write-ahead ingest journal: pass an
        :class:`~repro.storage.journal.IngestJournal`, a store
        directory path, or ``True`` to derive the directory from the
        session's checkpoint store.  Journaled deltas that were never
        acknowledged (the process died mid-ingest) are **replayed**
        through the session before the resident serves — see
        :meth:`recover`.
        """
        resident = self._register(Resident(name, session=session))
        if journal:
            if isinstance(journal, IngestJournal):
                resident.journal = journal
            else:
                store_dir = (
                    session.store_path if journal is True else journal
                )
                if store_dir is None:
                    raise ValueError(
                        "journal=True needs a session with a durable "
                        "checkpoint store"
                    )
                resident.journal = IngestJournal.attach(store_dir)
            resident._acks = OrderedDict(resident.journal.acked)
            self.recover(resident)
        return resident

    def add_readonly(
        self, name: str, instance: Instance,
        terminated: Optional[bool] = None,
    ) -> Resident:
        """Register a query-only resident (no ingest) over a bare
        instance — e.g. a store saved without chase state."""
        return self._register(
            Resident(name, instance=instance, terminated=terminated)
        )

    def _register(self, resident: Resident) -> Resident:
        if resident.name in self.residents:
            raise ValueError(f"duplicate resident {resident.name!r}")
        self.residents[resident.name] = resident
        return resident

    def _resident(self, name: Optional[str]) -> Resident:
        residents = self.residents
        if not residents:
            raise ServiceError("no residents are loaded", status=503)
        if name is None:
            if len(residents) == 1:
                return next(iter(residents.values()))
            default = residents.get("default")
            if default is not None:
                return default
            raise ServiceError(
                f"several residents are loaded "
                f"({', '.join(sorted(residents))}); "
                f"name one with 'resident'",
            )
        resident = residents.get(name)
        if resident is None:
            raise ServiceError(
                f"unknown resident {name!r} "
                f"(loaded: {', '.join(sorted(residents)) or 'none'})",
                status=404,
            )
        return resident

    # -- crash recovery ------------------------------------------------------

    def recover(self, resident: Resident) -> int:
        """Replay the resident's journaled-but-unacknowledged deltas
        (a previous process died between the WAL fsync and the chase
        checkpoint).  ``extend`` skips facts the interrupted leg
        already made durable, so replay is idempotent and the result
        is byte-identical to the uninterrupted run.  Returns the
        number of deltas replayed."""
        journal = resident.journal
        session = resident.session
        if journal is None or session is None or not journal.pending:
            return 0
        replayed = 0
        for ingest_id, facts in list(journal.pending.items()):
            with resident.lock:
                before = session.watermark
                steps_before = session.step_count
                try:
                    session.extend(facts)
                except Exception as exc:
                    resident.quarantine(
                        f"journal replay of {ingest_id!r} failed: {exc}"
                    )
                    break
                self._publish(resident)
                response = self._ingest_response(
                    resident, before, steps_before, None,
                    ingest_id=ingest_id,
                )
                resident.record_response(ingest_id, response)
                resident.note_ingest()
            replayed += 1
        return replayed

    # -- budgets / admission -------------------------------------------------

    def request_budget(self, timeout_s: Optional[float] = None) -> Budget:
        """A fresh, started budget for one request: the requested
        deadline capped by the service-wide limit, carrying the shared
        cancel token (so shutdown cancels in-flight requests)."""
        cap = self.request_timeout_s
        if timeout_s is None:
            timeout_s = cap
        elif timeout_s != timeout_s or timeout_s <= 0:  # NaN or <= 0
            raise ServiceError(
                f"timeout_s must be positive, got {timeout_s}"
            )
        elif cap is not None:
            timeout_s = min(timeout_s, cap)
        return Budget(timeout_s=timeout_s, cancel=self.cancel).start()

    @contextlib.contextmanager
    def _admitted(self):
        """One admitted request: acquire an admission slot (or shed),
        apply the serve-scoped fault plan, release + feed the latency
        EWMA on the way out."""
        started_at = self.admission.acquire()
        try:
            faults.serve_request_hook()
            yield
        finally:
            self.admission.release(started_at)

    # -- the verbs -----------------------------------------------------------

    def query(
        self,
        text: str,
        *,
        resident: Optional[str] = None,
        certain: bool = False,
        policy: str = "cost",
        kernel: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> dict:
        """Answer a conjunctive query over the resident's published
        snapshot.

        ``text`` is the CLI query syntax — ``"q(X) :- e(X, Y)"``, or a
        bare conjunction for a boolean query.  ``certain`` filters to
        null-free answers (the certain answers whenever the resident's
        chase terminated).  ``kernel`` picks the execution tier (see
        :data:`repro.query.kernels.KERNELS`; default: the service-wide
        default, normally ``"tuple"``).  Answers render as atom text
        over the query's answer predicate, exactly like ``repro
        query``.
        """
        from ..query.kernels import KERNELS

        with self._admitted():
            target = self._resident(resident)
            snapshot = target.snapshot  # pin once: the request's world
            if policy not in ("cost", "heuristic"):
                raise ServiceError(f"unknown planner policy {policy!r}")
            if kernel is None:
                kernel = self.default_kernel
            if kernel not in KERNELS:
                raise ServiceError(
                    f"unknown kernel {kernel!r}; expected one of "
                    f"{list(KERNELS)}"
                )
            try:
                query = parse_query(text)
            except (ReproError, ValueError) as exc:
                raise ServiceError(f"bad query: {exc}") from exc
            budget = self.request_budget(timeout_s)
            out: Dict[str, object] = {
                "resident": target.name,
                "watermark": snapshot.watermark,
                "certain": certain,
            }
            if target.terminated is False:
                out["warning"] = (
                    "the resident chase has not terminated; answers are "
                    "computed over a partial instance"
                )
            if query.is_boolean():
                out["boolean"] = query.holds_in(
                    snapshot, policy=policy, kernel=kernel, budget=budget
                )
            else:
                if certain:
                    answers = query.certain_answers(
                        snapshot, policy=policy, kernel=kernel,
                        budget=budget,
                    )
                else:
                    answers = list(
                        query.answers(
                            snapshot, policy=policy, kernel=kernel,
                            budget=budget,
                        )
                    )
                name = query.name
                out["answers"] = [
                    atom_to_text(Atom(Predicate(name, len(answer)), answer))
                    for answer in answers
                ]
                out["count"] = len(answers)
            out["elapsed_s"] = round(budget.elapsed_s(), 6)
            target.note_query()
            return out

    def entail(
        self,
        text: str,
        *,
        resident: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> dict:
        """Is a ground constant-only atom entailed by the resident's
        data and rules?

        Over a *terminated* chase the resident is a universal model,
        so entailment of a constant-only atom collapses to membership
        — one O(1) probe at the pinned watermark.  Over an unfinished
        chase, presence still implies entailment (the chase is sound);
        absence is reported with a warning (the model is partial).
        """
        with self._admitted():
            target = self._resident(resident)
            snapshot = target.snapshot
            try:
                atom = parse_atom(text)
            except (ReproError, ValueError) as exc:
                raise ServiceError(f"bad atom: {exc}") from exc
            if not atom.is_ground() or atom.nulls():
                raise ServiceError(
                    f"entailment takes a ground constant-only atom, "
                    f"got {atom}"
                )
            self.request_budget(timeout_s)  # validates; membership is O(1)
            entailed = atom in snapshot
            out: Dict[str, object] = {
                "resident": target.name,
                "watermark": snapshot.watermark,
                "atom": atom_to_text(atom),
                "entailed": entailed,
            }
            if not entailed and target.terminated is False:
                out["warning"] = (
                    "the resident chase has not terminated; a negative "
                    "entailment answer may be incomplete"
                )
            target.note_query()
            return out

    def ingest(
        self,
        facts: FactsInput,
        *,
        resident: Optional[str] = None,
        timeout_s: Optional[float] = None,
        max_steps: Optional[int] = None,
        ingest_id: Optional[str] = None,
    ) -> dict:
        """Append new base facts and incrementally maintain the chase.

        ``facts`` is database text (one ground atom per line) or an
        iterable of single-fact strings.  The resident's chase resumes
        from the delta only (semi-naive, persistent fired keys — see
        :mod:`repro.chase.incremental`); when it checkpoints, the
        delta and its derivations are durable at return.  A fresh
        snapshot is published on completion — readers keep their
        pinned watermarks throughout.  ``max_steps`` raises the
        session's total step cap.

        ``ingest_id`` is the client's idempotency key: a repeated id
        is applied **at most once** and answered with the recorded
        response of the first application (``"replayed": true``).
        Journaled residents fsync the parsed delta before the chase
        runs, so a crash anywhere after this call was acked — and even
        mid-leg before the ack — is recovered by journal replay at the
        next ``serve --db`` start.
        """
        with self._admitted():
            target = self._resident(resident)
            session = target.session
            if session is None:
                raise ServiceError(
                    f"resident {target.name!r} is read-only (no chase "
                    f"state); ingest needs a session-backed resident",
                    status=409,
                )
            if ingest_id is not None:
                # An already-acknowledged retry replays even on a
                # quarantined resident — the effect *did* happen.
                recorded = target.recorded_response(ingest_id)
                if recorded is not None:
                    return dict(recorded, replayed=True)
            if target.health == HEALTH_QUARANTINED:
                raise ServiceError(
                    f"resident {target.name!r} is quarantined read-only "
                    f"({target.quarantine_reason}); restart the server "
                    f"to recover it",
                    status=503,
                )
            if max_steps is not None and (
                not isinstance(max_steps, int) or max_steps <= 0
            ):
                raise ServiceError(
                    f"max_steps must be a positive integer, "
                    f"got {max_steps}"
                )
            try:
                if isinstance(facts, str):
                    parsed: List[Atom] = [
                        parse_fact(line)
                        for line in facts.splitlines()
                        if line.strip() and not line.lstrip().startswith("%")
                    ]
                else:
                    parsed = [parse_fact(text) for text in facts]
            except (ReproError, ValueError) as exc:
                raise ServiceError(f"bad fact: {exc}") from exc
            if not parsed:
                raise ServiceError("no facts to ingest")
            for fact in parsed:
                if not fact.is_ground() or fact.nulls():
                    raise ServiceError(
                        f"ingested facts must be ground and null-free, "
                        f"got {atom_to_text(fact)}"
                    )
            budget = self.request_budget(timeout_s)
            if target.journal is not None and ingest_id is None:
                # Journal replay needs a key even when the client sent
                # none; synthesize one (returned in the response).
                ingest_id = f"auto-{uuid.uuid4().hex}"
            self.admission.enter_ingest_queue(target)
            try:
                with target.lock:
                    if ingest_id is not None:
                        # Re-check under the lock: a concurrent retry
                        # of the same id may have just completed.
                        recorded = target.recorded_response(ingest_id)
                        if recorded is not None:
                            return dict(recorded, replayed=True)
                    if target.journal is not None:
                        # fsync-before-ack: the delta is durable before
                        # the chase sees it.
                        target.journal.append_delta(ingest_id, parsed)
                    # Chaos crash point: the window between WAL
                    # durability and the chase leg.
                    faults.serve_ingest_hook()
                    before = session.watermark
                    steps_before = session.step_count
                    try:
                        result = session.extend(
                            parsed, budget=budget, max_steps=max_steps,
                        )
                    except BudgetExceededError as exc:
                        # The leg stopped mid-flight on a budget: the
                        # session still holds a durable round-consistent
                        # prefix — republish it (with its stop reason)
                        # so readers see the true durable state instead
                        # of a stale pre-ingest snapshot.
                        target.snapshot = session.snapshot()
                        target.terminated = False
                        target.stop_reason = (
                            exc.stop_reason or session.stop_reason
                        )
                        raise
                    except Exception as exc:
                        # A non-budget mid-leg failure: the session's
                        # evaluation state can no longer be trusted.
                        # Quarantine the resident read-only at its last
                        # published snapshot; the journaled delta (no
                        # ack) replays after a restart.
                        target.quarantine(
                            f"ingest leg failed: {exc}"
                        )
                        raise ServiceError(
                            f"resident {target.name!r} quarantined: "
                            f"ingest leg failed ({exc}); reads continue "
                            f"at watermark {target.snapshot.watermark}",
                            status=503,
                        ) from exc
                    # Publish: one atomic attribute write; readers
                    # pinned to the old snapshot finish undisturbed,
                    # new requests see the maintained instance.
                    self._publish(target)
                    target.note_ingest()
                    response = self._ingest_response(
                        target, before, steps_before, budget,
                        ingest_id=ingest_id,
                    )
                    del result
                    if ingest_id is not None:
                        target.record_response(ingest_id, response)
                    return response
            finally:
                self.admission.leave_ingest_queue(target)

    def _publish(self, target: Resident) -> None:
        session = target.session
        target.snapshot = session.snapshot()
        target.terminated = session.terminated
        target.stop_reason = session.stop_reason

    @staticmethod
    def _ingest_response(
        target: Resident, before: int, steps_before: int,
        budget: Optional[Budget], ingest_id: Optional[str],
    ) -> dict:
        session = target.session
        response = {
            "resident": target.name,
            "watermark": target.snapshot.watermark,
            "new_facts": target.snapshot.watermark - before,
            "new_steps": session.step_count - steps_before,
            "terminated": session.terminated,
            "stop_reason": session.stop_reason,
            "elapsed_s": (
                round(budget.elapsed_s(), 6) if budget is not None else 0.0
            ),
        }
        if ingest_id is not None:
            response["ingest_id"] = ingest_id
        return response

    # -- introspection / lifecycle -------------------------------------------

    def health(self) -> dict:
        """The cheap liveness/readiness summary (no parsing, no
        snapshot work — safe to compute even under full overload):
        service status is the *worst* resident state, degraded further
        while admission is actively shedding."""
        residents: Dict[str, str] = {
            name: resident.health
            for name, resident in self.residents.items()
        }
        status = HEALTH_OK
        if HEALTH_DEGRADED in residents.values():
            status = HEALTH_DEGRADED
        if self.admission.overloaded_recently():
            status = HEALTH_DEGRADED
        if HEALTH_QUARANTINED in residents.values():
            status = HEALTH_QUARANTINED
        draining = self.cancel.cancelled()
        out: Dict[str, object] = {
            "ok": status == HEALTH_OK and not draining,
            "status": status,
            "draining": draining,
            "residents": residents,
        }
        if status != HEALTH_OK:
            out["retry_after_s"] = round(
                self.admission.retry_after_s(), 3
            )
        return out

    def status(self) -> dict:
        """Service-level summary: one entry per resident."""
        return {
            "residents": {
                name: resident.describe()
                for name, resident in self.residents.items()
            },
            "request_timeout_s": self.request_timeout_s,
            "admission": self.admission.describe(),
            "shutting_down": self.cancel.cancelled(),
        }

    def shutdown(self) -> None:
        """Cooperatively cancel in-flight requests (their budgets share
        the service token) and mark the service as stopping."""
        self.cancel.cancel()

    def close(self) -> None:
        """Shut down and release every session's executor."""
        self.shutdown()
        for resident in self.residents.values():
            if resident.session is not None:
                resident.session.close()
