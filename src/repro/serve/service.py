"""The embeddable chase service: residents, snapshots, budgets, ingest.

:class:`ChaseService` is the transport-free core of ``repro serve`` —
a registry of named *residents* (chased instances kept in memory,
optionally checkpointing to durable stores) with four operations:

``query``
    Evaluate a conjunctive query (naive or certain answers, or a bare
    boolean conjunction) against the resident's **published snapshot**
    — a watermark view pinned once per request, so the answer set is
    computed over one consistent instance even while an ingest is
    appending the next extension leg.
``entail``
    Ground-atom entailment.  Over a terminated chase the resident is a
    universal model, so a constant-only atom is entailed iff it is
    *present* — one O(1) membership probe at the pinned watermark.
``ingest``
    Append new base facts and incrementally maintain the chase
    (:meth:`~repro.chase.incremental.ChaseSession.extend`), then
    publish a fresh snapshot.  Single-writer: ingests to one resident
    are serialized by a lock; readers are never blocked.
``status``
    Per-resident counters and chase state.

Every operation takes an optional per-request ``timeout_s``, capped by
the service-wide ``request_timeout_s``, and runs under a fresh
:class:`~repro.runtime.budget.Budget` carrying the service's shared
:class:`~repro.runtime.budget.CancelToken` — so :meth:`shutdown`
cancels in-flight work cooperatively, and a deadline-tripped request
raises :class:`~repro.errors.BudgetExceededError` (the HTTP layer maps
it to 503) without poisoning the resident.

Thread-safety contract: residents publish snapshots by plain attribute
assignment (atomic under the GIL) and snapshots never intern into the
shared symbol tables, so any number of reader threads may serve
requests while one ingest extends the instance — the GIL-safety
argument lives in :mod:`repro.storage.snapshot`.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Union

from ..chase.incremental import ChaseSession
from ..errors import ReproError
from ..model import Atom, Instance, Predicate
from ..model.instances import SnapshotInstance
from ..parser import atom_to_text, parse_atom, parse_fact, parse_query
from ..runtime.budget import Budget, CancelToken


class ServiceError(ReproError):
    """A request-level failure with an HTTP-ish status code (400 bad
    request, 404 unknown resident, 409 read-only resident, ...)."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class Resident:
    """One served instance: a :class:`ChaseSession` (extendable) or a
    bare read-only :class:`Instance` (e.g. a reopened plain store),
    plus the published snapshot reads are pinned to."""

    __slots__ = ("name", "session", "instance", "snapshot", "lock",
                 "terminated", "queries", "ingests")

    def __init__(
        self,
        name: str,
        session: Optional[ChaseSession] = None,
        instance: Optional[Instance] = None,
        terminated: Optional[bool] = None,
    ):
        if (session is None) == (instance is None):
            raise ValueError("pass a session or an instance, not both")
        self.name = name
        self.session = session
        self.instance = session.instance if session else instance
        #: The published consistent view; replaced wholesale (atomic
        #: attribute write) at the end of every ingest leg.
        self.snapshot: SnapshotInstance = self.instance.snapshot()
        #: Serializes ingest legs (the chase is single-writer).
        self.lock = threading.Lock()
        self.terminated = (
            session.terminated if session else terminated
        )
        self.queries = 0
        self.ingests = 0

    @property
    def read_only(self) -> bool:
        """True when the resident has no chase session to extend."""
        return self.session is None

    def describe(self) -> dict:
        out: Dict[str, object] = {
            "facts": self.snapshot.watermark,
            "read_only": self.read_only,
            "terminated": self.terminated,
            "queries": self.queries,
            "ingests": self.ingests,
        }
        session = self.session
        if session is not None:
            out["variant"] = session.variant
            out["steps"] = session.step_count
            out["stop_reason"] = session.stop_reason
        return out


FactsInput = Union[str, Iterable[str]]


class ChaseService:
    """The transport-free server core: named residents + four verbs.

    ``request_timeout_s`` caps every per-request deadline (a request
    may ask for less, never more); ``cancel`` is the shared
    cancellation token every request budget carries — default a fresh
    one, flipped by :meth:`shutdown`.
    """

    def __init__(
        self,
        request_timeout_s: Optional[float] = 30.0,
        cancel: Optional[CancelToken] = None,
    ):
        self.request_timeout_s = request_timeout_s
        self.cancel = cancel if cancel is not None else CancelToken()
        self.residents: Dict[str, Resident] = {}

    # -- registry ------------------------------------------------------------

    def add_session(self, name: str, session: ChaseSession) -> Resident:
        """Register an extendable resident over a live chase session."""
        return self._register(Resident(name, session=session))

    def add_readonly(
        self, name: str, instance: Instance,
        terminated: Optional[bool] = None,
    ) -> Resident:
        """Register a query-only resident (no ingest) over a bare
        instance — e.g. a store saved without chase state."""
        return self._register(
            Resident(name, instance=instance, terminated=terminated)
        )

    def _register(self, resident: Resident) -> Resident:
        if resident.name in self.residents:
            raise ValueError(f"duplicate resident {resident.name!r}")
        self.residents[resident.name] = resident
        return resident

    def _resident(self, name: Optional[str]) -> Resident:
        residents = self.residents
        if not residents:
            raise ServiceError("no residents are loaded", status=503)
        if name is None:
            if len(residents) == 1:
                return next(iter(residents.values()))
            default = residents.get("default")
            if default is not None:
                return default
            raise ServiceError(
                f"several residents are loaded "
                f"({', '.join(sorted(residents))}); "
                f"name one with 'resident'",
            )
        resident = residents.get(name)
        if resident is None:
            raise ServiceError(
                f"unknown resident {name!r} "
                f"(loaded: {', '.join(sorted(residents)) or 'none'})",
                status=404,
            )
        return resident

    # -- budgets -------------------------------------------------------------

    def request_budget(self, timeout_s: Optional[float] = None) -> Budget:
        """A fresh, started budget for one request: the requested
        deadline capped by the service-wide limit, carrying the shared
        cancel token (so shutdown cancels in-flight requests)."""
        cap = self.request_timeout_s
        if timeout_s is None:
            timeout_s = cap
        elif timeout_s <= 0:
            raise ServiceError(
                f"timeout_s must be positive, got {timeout_s}"
            )
        elif cap is not None:
            timeout_s = min(timeout_s, cap)
        return Budget(timeout_s=timeout_s, cancel=self.cancel).start()

    # -- the verbs -----------------------------------------------------------

    def query(
        self,
        text: str,
        *,
        resident: Optional[str] = None,
        certain: bool = False,
        policy: str = "cost",
        timeout_s: Optional[float] = None,
    ) -> dict:
        """Answer a conjunctive query over the resident's published
        snapshot.

        ``text`` is the CLI query syntax — ``"q(X) :- e(X, Y)"``, or a
        bare conjunction for a boolean query.  ``certain`` filters to
        null-free answers (the certain answers whenever the resident's
        chase terminated).  Answers render as atom text over the
        query's answer predicate, exactly like ``repro query``.
        """
        target = self._resident(resident)
        snapshot = target.snapshot  # pin once: the request's world
        if policy not in ("cost", "heuristic"):
            raise ServiceError(f"unknown planner policy {policy!r}")
        try:
            query = parse_query(text)
        except (ReproError, ValueError) as exc:
            raise ServiceError(f"bad query: {exc}") from exc
        budget = self.request_budget(timeout_s)
        out: Dict[str, object] = {
            "resident": target.name,
            "watermark": snapshot.watermark,
            "certain": certain,
        }
        if target.terminated is False:
            out["warning"] = (
                "the resident chase has not terminated; answers are "
                "computed over a partial instance"
            )
        if query.is_boolean():
            out["boolean"] = query.holds_in(
                snapshot, policy=policy, budget=budget
            )
        else:
            if certain:
                answers = query.certain_answers(
                    snapshot, policy=policy, budget=budget
                )
            else:
                answers = list(
                    query.answers(snapshot, policy=policy, budget=budget)
                )
            name = query.name
            out["answers"] = [
                atom_to_text(Atom(Predicate(name, len(answer)), answer))
                for answer in answers
            ]
            out["count"] = len(answers)
        out["elapsed_s"] = round(budget.elapsed_s(), 6)
        target.queries += 1
        return out

    def entail(
        self,
        text: str,
        *,
        resident: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> dict:
        """Is a ground constant-only atom entailed by the resident's
        data and rules?

        Over a *terminated* chase the resident is a universal model,
        so entailment of a constant-only atom collapses to membership
        — one O(1) probe at the pinned watermark.  Over an unfinished
        chase, presence still implies entailment (the chase is sound);
        absence is reported with a warning (the model is partial).
        """
        target = self._resident(resident)
        snapshot = target.snapshot
        try:
            atom = parse_atom(text)
        except (ReproError, ValueError) as exc:
            raise ServiceError(f"bad atom: {exc}") from exc
        if not atom.is_ground() or atom.nulls():
            raise ServiceError(
                f"entailment takes a ground constant-only atom, "
                f"got {atom}"
            )
        self.request_budget(timeout_s)  # validates; membership is O(1)
        entailed = atom in snapshot
        out: Dict[str, object] = {
            "resident": target.name,
            "watermark": snapshot.watermark,
            "atom": atom_to_text(atom),
            "entailed": entailed,
        }
        if not entailed and target.terminated is False:
            out["warning"] = (
                "the resident chase has not terminated; a negative "
                "entailment answer may be incomplete"
            )
        target.queries += 1
        return out

    def ingest(
        self,
        facts: FactsInput,
        *,
        resident: Optional[str] = None,
        timeout_s: Optional[float] = None,
        max_steps: Optional[int] = None,
    ) -> dict:
        """Append new base facts and incrementally maintain the chase.

        ``facts`` is database text (one ground atom per line) or an
        iterable of single-fact strings.  The resident's chase resumes
        from the delta only (semi-naive, persistent fired keys — see
        :mod:`repro.chase.incremental`); when it checkpoints, the
        delta and its derivations are durable at return.  A fresh
        snapshot is published on completion — readers keep their
        pinned watermarks throughout.  ``max_steps`` raises the
        session's total step cap.
        """
        target = self._resident(resident)
        if target.session is None:
            raise ServiceError(
                f"resident {target.name!r} is read-only (no chase "
                f"state); ingest needs a session-backed resident",
                status=409,
            )
        try:
            if isinstance(facts, str):
                parsed: List[Atom] = [
                    parse_fact(line)
                    for line in facts.splitlines()
                    if line.strip() and not line.lstrip().startswith("%")
                ]
            else:
                parsed = [parse_fact(text) for text in facts]
        except (ReproError, ValueError) as exc:
            raise ServiceError(f"bad fact: {exc}") from exc
        if not parsed:
            raise ServiceError("no facts to ingest")
        budget = self.request_budget(timeout_s)
        session = target.session
        with target.lock:
            before = session.watermark
            steps_before = session.step_count
            try:
                result = session.extend(
                    parsed, budget=budget, max_steps=max_steps,
                )
            except (ValueError,) as exc:
                raise ServiceError(f"bad delta: {exc}") from exc
            # Publish: one atomic attribute write; readers pinned to
            # the old snapshot finish undisturbed, new requests see
            # the maintained instance.
            target.snapshot = session.snapshot()
            target.terminated = session.terminated
            target.ingests += 1
        return {
            "resident": target.name,
            "watermark": target.snapshot.watermark,
            "new_facts": target.snapshot.watermark - before,
            "new_steps": session.step_count - steps_before,
            "terminated": session.terminated,
            "stop_reason": session.stop_reason,
            "elapsed_s": round(budget.elapsed_s(), 6),
        }

    # -- introspection / lifecycle -------------------------------------------

    def status(self) -> dict:
        """Service-level summary: one entry per resident."""
        return {
            "residents": {
                name: resident.describe()
                for name, resident in self.residents.items()
            },
            "request_timeout_s": self.request_timeout_s,
            "shutting_down": self.cancel.cancelled(),
        }

    def shutdown(self) -> None:
        """Cooperatively cancel in-flight requests (their budgets share
        the service token) and mark the service as stopping."""
        self.cancel.cancel()

    def close(self) -> None:
        """Shut down and release every session's executor."""
        self.shutdown()
        for resident in self.residents.values():
            if resident.session is not None:
                resident.session.close()
