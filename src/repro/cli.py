"""Command-line interface.

::

    python -m repro classify  RULES.tgd
    python -m repro check     RULES.tgd  [--variant so|o] [--standard]
                              [--workers N] [--scheduler serial|threaded|process]
                              [--timeout S] [--max-memory-mb M] [--max-rounds N]
    python -m repro chase     RULES.tgd DB.facts [--variant o|so|r] [--max-steps N]
                              [--workers N] [--scheduler serial|threaded|process]
                              [--planner cost|heuristic]
                              [--timeout S] [--max-memory-mb M] [--max-rounds N]
                              [--save DIR [--overwrite] [--checkpoint-every N]]
    python -m repro chase     --resume DIR [--max-steps N] [--no-save]
                              [--workers N] [--scheduler serial|threaded|process]
                              [--timeout S] [--max-memory-mb M] [--max-rounds N]
    python -m repro query     RULES.tgd DB.facts "q(X) :- body(X, Y)"
                              [--certain] [--variant o|so|r] [--max-steps N]
                              [--planner cost|heuristic]
                              [--timeout S] [--max-memory-mb M] [--max-rounds N]
    python -m repro query     --db DIR "q(X) :- body(X, Y)" [--certain]
    python -m repro inspect   DIR
    python -m repro critical  RULES.tgd [--standard]
    python -m repro entail    RULES.tgd DB.facts "atom(a, b)"
    python -m repro dot       RULES.tgd [--graph dep|extdep|joint|types]
    python -m repro serve     RULES.tgd DB.facts [--variant o|so|r]
                              [--host H] [--port P] [--request-timeout S]
                              [--save DIR [--overwrite]] [--max-steps N]
                              [--planner cost|heuristic]
                              [--workers N] [--scheduler serial|threaded|process]
    python -m repro serve     --db DIR [--host H] [--port P]
                              [--request-timeout S]

The full flag-by-flag reference, including every file format and the
consolidated stop-reason/exit-code table, is ``docs/CLI.md``.

Rule files use the library syntax (``p(X) -> exists Z . q(X, Z)``);
database files hold one ground atom per line.  ``query`` chases the
database to a (universal, when the chase terminates) model and
evaluates a conjunctive query over it through the cost-based planner
(:mod:`repro.query`): naive answers by default, null-free certain
answers with ``--certain``.

``--workers N`` batches each chase/saturation round over a worker pool
(``N`` workers; see :mod:`repro.chase.scheduler`).  The executor
defaults to ``threaded`` when ``--workers`` is given and can be forced
with ``--scheduler`` (``process`` pays per-round pickling in exchange
for real CPU parallelism on saturation-heavy runs).  Results are
byte-identical across executors — batching never changes a chase
result or a verdict, only how the round's join work is executed.

``--timeout``, ``--max-memory-mb``, and ``--max-rounds`` govern the
run through a :class:`repro.runtime.budget.Budget`; a tripped limit
stops the run between trigger applications, prints what was computed,
and exits with the stop reason's code (see :data:`EXIT_CODES`).
Ctrl-C is cooperative cancellation: the governed commands catch
SIGINT, finish the current step, and report a round-consistent partial
result with exit code 6 instead of a traceback.

``chase --save DIR`` checkpoints the run into a durable fact store
(:mod:`repro.storage`) at every round boundary and at the stop.  Any
non-zero stop — ``step_budget`` (1), ``deadline`` (4), ``memory`` (5),
``cancelled`` (6) — leaves a resumable store: ``chase --resume DIR``
continues from exactly where the run stopped (raise ``--max-steps`` /
the budget flags to make progress) and produces a byte-identical
result to the uninterrupted run.  A store whose run reached
``fixpoint`` (0) resumes to an immediate no-op.  ``query --db DIR``
answers over a saved store without re-chasing, and ``inspect DIR``
summarizes one from its manifest alone (no row data is read).

``serve`` chases once, keeps the instance resident, and answers
queries, certain answers, and entailment over HTTP while ``POST
/facts`` ingests new base facts with **incremental maintenance** — the
chase resumes from the delta (:mod:`repro.chase.incremental`) instead
of re-running.  With ``--db DIR`` it serves a checkpointed store
(extendable; ingest legs keep checkpointing into the directory) or a
plain saved store (read-only).  Durable residents journal every
ingest delta (``ingest.wal``, fsync before the chase) so a crashed
server replays unacknowledged ingests at the next start and a retried
``ingest_id`` is applied at most once; ``--max-inflight`` /
``--max-ingest-queue`` bound load, shedding the excess with 429/503 +
``Retry-After``.  See :mod:`repro.serve`.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Optional, Sequence

from .chase import (
    SCHEDULER_KINDS,
    ChaseVariant,
    critical_instance,
    resume_chase,
    run_chase,
    standard_critical_instance,
)
from .classes import classify, narrowest_class
from .entailment import entails_atom
from .errors import BudgetExceededError, ReproError
from .parser import (
    atom_to_text,
    instance_to_text,
    parse_atom,
    parse_database,
    parse_program,
    parse_query,
)
from .runtime import Budget
from .termination import decide_termination

#: Exit code per stop reason (2 stays the usage/input-error code; 3 is
#: the fallback for budget stops without a structured reason, e.g. the
#: guarded decider's type-space cap reported before PR 6).
EXIT_CODES = {
    "fixpoint": 0,
    "step_budget": 1,
    "deadline": 4,
    "memory": 5,
    "cancelled": 6,
    "executor_degraded": 7,
}
_BUDGET_EXIT_FALLBACK = 3

#: Human-readable status per stop reason (the chase/query summary line).
_STATUS = {
    "fixpoint": "fixpoint",
    "step_budget": "budget exhausted",
    "deadline": "deadline exceeded",
    "memory": "memory ceiling exceeded",
    "cancelled": "cancelled",
    "executor_degraded": "executor degraded",
}

_VARIANTS = {
    "o": ChaseVariant.OBLIVIOUS,
    "oblivious": ChaseVariant.OBLIVIOUS,
    "so": ChaseVariant.SEMI_OBLIVIOUS,
    "semi_oblivious": ChaseVariant.SEMI_OBLIVIOUS,
    "r": ChaseVariant.RESTRICTED,
    "restricted": ChaseVariant.RESTRICTED,
}


def _load_rules(path: str):
    with open(path) as handle:
        return parse_program(handle.read())


def _load_database(path: str):
    with open(path) as handle:
        return parse_database(handle.read())


def _scheduler_args(args):
    """Map the ``--workers`` / ``--scheduler`` flags to the library's
    ``scheduler=`` / ``workers=`` knobs.  The library already gives
    ``workers`` alone the threaded executor; ``--scheduler`` forces a
    specific one."""
    return {"scheduler": args.scheduler, "workers": args.workers or None}


def _budget_from(args) -> Budget:
    """The run's :class:`Budget` from the governance flags.  Always
    built — a limit-free budget still carries the cancel token the
    SIGINT handler flips, which is what makes Ctrl-C graceful."""
    return Budget(
        timeout_s=args.timeout,
        max_memory_mb=args.max_memory_mb,
        max_rounds=args.max_rounds,
    )


@contextlib.contextmanager
def _sigint_cancels(budget: Budget):
    """Route SIGINT to the budget's cancel token for the duration:
    the governed run stops at its next budget check and reports
    ``cancelled`` instead of unwinding mid-round."""
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.getsignal(signal.SIGINT)

    def _cancel(signum, frame):
        budget.cancel.cancel()

    signal.signal(signal.SIGINT, _cancel)
    try:
        yield
    finally:
        signal.signal(signal.SIGINT, previous)


def _warn_degraded(resource: dict) -> None:
    executor = resource.get("executor")
    if executor and executor.get("degraded"):
        print(
            "% warning: process executor degraded to serial after "
            f"{executor.get('pool_failures', 0)} pool failure(s); "
            "the result is complete and identical to a serial run",
            file=sys.stderr,
        )


def _cmd_classify(args) -> int:
    rules = _load_rules(args.rules)
    report = classify(rules)
    print(f"rules: {len(rules)}")
    print(f"narrowest class: {narrowest_class(rules)}")
    for name, value in sorted(report.items()):
        print(f"  {name}: {'yes' if value else 'no'}")
    return 0


def _cmd_check(args) -> int:
    rules = _load_rules(args.rules)
    if args.full:
        from .termination import termination_report

        report = termination_report(rules)
        print(report.render())
        verdict = (
            report.semi_oblivious
            if args.variant in ("so", "semi_oblivious")
            else report.oblivious
        )
        if verdict is None:
            return 2
        return 0 if verdict.terminating else 1
    variant = _VARIANTS[args.variant]
    budget = _budget_from(args)
    with _sigint_cancels(budget):
        verdict = decide_termination(
            rules,
            variant=variant,
            standard=args.standard,
            allow_oracle=args.allow_oracle,
            order_policy=args.planner,
            budget=budget,
            **_scheduler_args(args),
        )
    print(verdict.explain())
    return 0 if verdict.terminating else 1


def _chase_summary(variant: str, result) -> None:
    status = _STATUS.get(result.stop_reason, result.stop_reason)
    print(f"% {variant} chase: {status} after {result.step_count} steps, "
          f"{len(result.instance)} facts")
    _warn_degraded(result.resource)


def _cmd_chase(args) -> int:
    budget = _budget_from(args)
    if args.resume is not None:
        if args.save is not None:
            raise ValueError(
                "--resume continues its own store; --save is for "
                "fresh runs"
            )
        rules = _load_rules(args.rules) if args.rules else None
        # A bare --resume must make progress after a step_budget stop,
        # so the CLI applies its own fresh-run default rather than
        # replaying the checkpointed (possibly exhausted) cap.
        max_steps = args.max_steps if args.max_steps is not None else 10_000
        with _sigint_cancels(budget):
            result = resume_chase(
                args.resume, rules,
                max_steps=max_steps, budget=budget,
                save=not args.no_save,
                checkpoint_every=args.checkpoint_every,
                **_scheduler_args(args),
            )
        _chase_summary(result.variant, result)
        print(instance_to_text(result.instance))
        return EXIT_CODES.get(result.stop_reason, 1)
    if not args.rules or not args.database:
        raise ValueError("chase needs RULES and DB (or --resume DIR)")
    rules = _load_rules(args.rules)
    database = _load_database(args.database)
    variant = _VARIANTS[args.variant]
    max_steps = args.max_steps if args.max_steps is not None else 10_000
    with _sigint_cancels(budget):
        result = run_chase(
            database, rules, variant, max_steps=max_steps,
            planner=args.planner, kernel=args.kernel, budget=budget,
            save=args.save, overwrite=args.overwrite,
            checkpoint_every=args.checkpoint_every,
            **_scheduler_args(args),
        )
    _chase_summary(variant, result)
    if args.save is not None and result.stop_reason != "fixpoint":
        print(f"% resumable: repro chase --resume {args.save}",
              file=sys.stderr)
    print(instance_to_text(result.instance))
    return EXIT_CODES.get(result.stop_reason, 1)


def _query_over_store(args, budget) -> int:
    """``query --db DIR``: answer over a saved store, no re-chase."""
    from .model import Atom, Predicate
    from .storage import open_instance

    query = parse_query(args.query)
    instance = open_instance(args.db)
    terminated = None
    try:
        from .chase import load_state

        terminated = load_state(args.db, instance.store)["terminated"]
    except (ReproError, ValueError, OSError):
        pass  # a plain Instance.save() store carries no chase state
    print(f"% store {args.db}: {len(instance)} facts")
    if args.certain and terminated is False:
        print(
            "% warning: the saved chase did not terminate — the store "
            "is not a universal model; certain answers may be "
            "incomplete",
            file=sys.stderr,
        )
    if query.is_boolean():
        holds = query.holds_in(
            instance, policy=args.planner,
            kernel=args.kernel, budget=budget,
        )
        print("true" if holds else "false")
        return 0
    name = query.name
    if args.certain:
        answers = query.certain_answers(
            instance, policy=args.planner,
            kernel=args.kernel, budget=budget,
        )
    else:
        answers = query.answers(
            instance, policy=args.planner,
            kernel=args.kernel, budget=budget,
        )
    count = 0
    for answer in answers:
        count += 1
        print(atom_to_text(Atom(Predicate(name, len(answer)), answer)))
    print(f"% {count} {'certain ' if args.certain else ''}answers")
    return 0


def _cmd_query(args) -> int:
    from .model import Atom, Predicate

    budget = _budget_from(args)
    inputs = args.inputs
    if args.db is not None:
        if len(inputs) != 1:
            raise ValueError("with --db, pass just the query")
        args.query = inputs[0]
        with _sigint_cancels(budget):
            return _query_over_store(args, budget)
    if len(inputs) != 3:
        raise ValueError(
            "query needs RULES DB QUERY (or --db DIR QUERY)"
        )
    args.rules, args.database, args.query = inputs
    rules = _load_rules(args.rules)
    database = _load_database(args.database)
    query = parse_query(args.query)
    variant = _VARIANTS[args.variant]
    with _sigint_cancels(budget):
        result = run_chase(
            database, rules, variant, max_steps=args.max_steps,
            planner=args.planner, kernel=args.kernel, budget=budget,
            **_scheduler_args(args),
        )
        _chase_summary(variant, result)
        if args.certain and not result.terminated:
            print(
                "% warning: chase budget exhausted — the instance is not a "
                "universal model; certain answers may be incomplete",
                file=sys.stderr,
            )
        exit_code = EXIT_CODES.get(result.stop_reason, 1)
        if query.is_boolean():
            holds = query.holds_in(
                result.instance, policy=args.planner,
                kernel=args.kernel, budget=budget,
            )
            print("true" if holds else "false")
            return exit_code
        # Answers print as atoms over the query's answer predicate.
        name = query.name
        if args.certain:
            answers = query.certain_answers(
                result.instance, policy=args.planner,
                kernel=args.kernel, budget=budget,
            )
        else:
            answers = query.answers(
                result.instance, policy=args.planner,
                kernel=args.kernel, budget=budget,
            )
        count = 0
        for answer in answers:
            count += 1
            print(atom_to_text(Atom(Predicate(name, len(answer)), answer)))
    print(f"% {count} {'certain ' if args.certain else ''}answers")
    return exit_code


def _cmd_inspect(args) -> int:
    """Summarize a saved store from its manifest and chase header
    alone — O(1) in the number of facts, no row segment is read."""
    import pickle

    from .storage import CHASE_STATE, read_manifest

    manifest = read_manifest(args.store)
    print(f"store: {args.store}")
    print(f"  facts: {manifest['facts']}")
    print(f"  symbols: {manifest['symbols']}")
    print(f"  predicates: {manifest['preds']}")
    print(f"  domain: {manifest['domain']}")
    rows = {
        pid: meta["rows"]
        for pid, meta in manifest["predicates"].items()
    }
    nonempty = sum(1 for n in rows.values() if n)
    print(f"  nonempty relations: {nonempty}")
    header_path = f"{args.store}/{CHASE_STATE}"
    import os

    if not os.path.exists(header_path):
        print("  chase state: none (plain instance store)")
        return 0
    with open(header_path, "rb") as handle:
        state = pickle.load(handle)
    status = (
        "terminated" if state["terminated"]
        else f"stopped: {_STATUS.get(state['stop_reason'], state['stop_reason'])}"
    )
    print(f"  chase: {state['variant']}, {status}")
    print(f"  steps: {state['n_steps']} (max_steps {state['max_steps']})")
    print(f"  rounds: {state['rounds']}")
    print(f"  rules: {len(state['rules'])}")
    print(f"  frontier: {len(state['frontier'])} fact(s) undiscovered")
    print(f"  pending: {len(state['pending'])} trigger(s) unapplied")
    if not state["terminated"]:
        print(f"  resumable: repro chase --resume {args.store}")
    return 0


def _cmd_critical(args) -> int:
    rules = _load_rules(args.rules)
    if args.standard:
        database = standard_critical_instance(rules)
    else:
        database = critical_instance(rules)
    print(instance_to_text(database))
    return 0


def _cmd_entail(args) -> int:
    rules = _load_rules(args.rules)
    database = _load_database(args.database)
    atom = parse_atom(args.atom)
    entailed = entails_atom(rules, database, atom)
    print("entailed" if entailed else "not entailed")
    return 0 if entailed else 1


def _cmd_dot(args) -> int:
    rules = _load_rules(args.rules)
    from .graphs import dependency_graph, extended_dependency_graph
    from .graphs.dot import (
        dependency_graph_to_dot,
        joint_graph_to_dot,
        transition_graph_to_dot,
    )

    if args.graph == "dep":
        print(dependency_graph_to_dot(dependency_graph(rules)))
    elif args.graph == "extdep":
        print(dependency_graph_to_dot(
            extended_dependency_graph(rules), title="extended"
        ))
    elif args.graph == "joint":
        from .graphs.joint import existential_dependency_graph

        print(joint_graph_to_dot(existential_dependency_graph(rules)))
    else:
        from .termination import TransitionGraph, TypeAnalysis

        graph = TransitionGraph(TypeAnalysis(rules))
        print(transition_graph_to_dot(graph))
    return 0


def _cmd_serve(args) -> int:
    """Chase once (or reopen a store), then serve it over HTTP with
    incremental ingest.  Ctrl-C is the normal shutdown path and exits
    0 — in-flight requests are cancelled cooperatively through the
    service's shared token."""
    from .chase.incremental import ChaseSession
    from .serve import AdmissionController, ChaseServer, ChaseService

    budget = _budget_from(args)
    admission = AdmissionController(
        max_inflight=args.max_inflight,
        max_ingest_queue=args.max_ingest_queue,
    )
    service = ChaseService(
        request_timeout_s=args.request_timeout, admission=admission,
        default_kernel=args.kernel,
    )
    session = None
    if args.db is not None:
        if args.rules or args.database:
            raise ValueError("--db serves a saved store; drop RULES/DB")
        import os

        from .storage import CHASE_STATE, open_instance

        if os.path.exists(os.path.join(args.db, CHASE_STATE)):
            session = ChaseSession.resume(
                args.db, budget=budget, max_steps=args.max_steps,
                **_scheduler_args(args)
            )
            resident = service.add_session(
                "default", session, journal=True
            )
            _chase_summary(session.variant, session.result)
            journal = resident.journal
            if journal is not None and journal.torn_bytes:
                print(f"% journal: truncated {journal.torn_bytes} torn "
                      f"tail bytes")
            if journal is not None and resident.ingests:
                # A fresh resident's ingest count is exactly the
                # number of journal-replayed deltas.
                print(f"% journal: replayed {resident.ingests} "
                      f"unacknowledged ingest delta(s)")
        else:
            # A plain Instance.save() store: queryable, not extendable.
            instance = open_instance(args.db)
            service.add_readonly("default", instance)
            print(f"% store {args.db}: {len(instance)} facts "
                  f"(read-only: no chase state)")
    else:
        if not args.rules or not args.database:
            raise ValueError("serve needs RULES and DB (or --db DIR)")
        rules = _load_rules(args.rules)
        database = _load_database(args.database)
        variant = _VARIANTS[args.variant]
        max_steps = (
            args.max_steps if args.max_steps is not None else 10_000
        )
        with _sigint_cancels(budget):
            session = ChaseSession.start(
                database, rules, variant=variant, max_steps=max_steps,
                planner=args.planner, kernel=args.kernel, budget=budget,
                save=args.save, overwrite=args.overwrite,
                **_scheduler_args(args),
            )
        service.add_session(
            "default", session, journal=bool(args.save)
        )
        _chase_summary(variant, session.result)
        if budget.stop_reason == "cancelled":
            service.close()
            return EXIT_CODES["cancelled"]
    server = ChaseServer(service, host=args.host, port=args.port)
    try:
        server.run()
    except KeyboardInterrupt:
        print("% server stopped", file=sys.stderr)
    finally:
        service.close()
    return 0


def _add_scheduler_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="batch each round over N workers (results are identical "
             "to a serial run; default: serial)")
    parser.add_argument(
        "--scheduler", choices=SCHEDULER_KINDS, default=None,
        help="round executor; defaults to 'threaded' when --workers "
             "is given")


def _add_planner_flag(
    parser: argparse.ArgumentParser, default: str
) -> None:
    parser.add_argument(
        "--planner", choices=("cost", "heuristic"), default=default,
        help="join-order policy (repro.query.planner); 'cost' plans "
             "from columnar statistics, 'heuristic' is the fixed "
             f"syntactic ordering (default: {default})")


def _add_kernel_flag(
    parser: argparse.ArgumentParser, default: str = "tuple"
) -> None:
    parser.add_argument(
        "--kernel", choices=("tuple", "vector", "wcoj", "auto"),
        default=default,
        help="join execution tier (repro.query.kernels): 'tuple' is "
             "one-binding-at-a-time, 'vector' runs columnar batch "
             "hash joins, 'wcoj' the leapfrog worst-case-optimal "
             "join, 'auto' picks per query/round from the statistics "
             f"(default: {default})")


def _add_budget_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="wall-clock deadline in seconds; on expiry the run stops "
             "at the next step boundary and exits with code 4")
    parser.add_argument(
        "--max-memory-mb", type=float, default=None, metavar="M",
        help="process working-set ceiling in MiB; exceeded -> the run "
             "stops round-consistently and exits with code 5")
    parser.add_argument(
        "--max-rounds", type=int, default=None, metavar="N",
        help="stop after N chase/saturation rounds (exit code 1, like "
             "--max-steps)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chase termination for guarded existential rules "
                    "(PODS 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    classify_cmd = sub.add_parser("classify", help="report class membership")
    classify_cmd.add_argument("rules")
    classify_cmd.set_defaults(func=_cmd_classify)

    check = sub.add_parser("check", help="decide all-instance termination")
    check.add_argument("rules")
    check.add_argument("--variant", choices=sorted(_VARIANTS),
                       default="so")
    check.add_argument("--standard", action="store_true",
                       help="analyse over standard databases (0/1)")
    check.add_argument("--allow-oracle", action="store_true",
                       help="fall back to the budgeted oracle on "
                            "non-guarded input")
    check.add_argument("--full", action="store_true",
                       help="print the full report (classes, the "
                            "sufficient-condition zoo, both variants)")
    _add_scheduler_flags(check)
    _add_planner_flag(check, default="cost")
    _add_budget_flags(check)
    check.set_defaults(func=_cmd_check)

    chase = sub.add_parser("chase", help="run a budgeted chase")
    chase.add_argument("rules", nargs="?", default=None)
    chase.add_argument("database", nargs="?", default=None)
    chase.add_argument("--variant", choices=sorted(_VARIANTS), default="r")
    chase.add_argument("--max-steps", type=int, default=None,
                       help="total trigger-application budget, counting "
                            "steps taken before a --resume (default "
                            "10000)")
    chase.add_argument("--save", metavar="DIR", default=None,
                       help="checkpoint the run into a durable fact "
                            "store at DIR (resumable after any "
                            "non-fixpoint stop)")
    chase.add_argument("--overwrite", action="store_true",
                       help="with --save, replace an existing store")
    chase.add_argument("--checkpoint-every", type=int, default=1,
                       metavar="N", help="checkpoint every N rounds "
                                         "(default 1; stops always "
                                         "checkpoint)")
    chase.add_argument("--resume", metavar="DIR", default=None,
                       help="continue a checkpointed run from DIR "
                            "(RULES/DB come from the store; RULES may "
                            "be given to cross-check)")
    chase.add_argument("--no-save", action="store_true",
                       help="with --resume, continue in memory without "
                            "advancing the on-disk checkpoint")
    _add_scheduler_flags(chase)
    _add_planner_flag(chase, default="heuristic")
    _add_kernel_flag(chase)
    _add_budget_flags(chase)
    chase.set_defaults(func=_cmd_chase)

    query = sub.add_parser(
        "query", help="chase a database and answer a conjunctive query")
    query.add_argument("inputs", nargs="+",
                       metavar="RULES DB QUERY",
                       help="RULES DB QUERY — or just QUERY with --db; "
                            "a CQ such as \"q(X) :- e(X, Y)\" (a bare "
                            "conjunction is evaluated as a boolean "
                            "query)")
    query.add_argument("--db", metavar="DIR", default=None,
                       help="answer over a saved fact store instead of "
                            "chasing (no RULES/DB arguments)")
    query.add_argument("--certain", action="store_true",
                       help="print only null-free (certain) answers, "
                            "sorted")
    query.add_argument("--variant", choices=sorted(_VARIANTS), default="r")
    query.add_argument("--max-steps", type=int, default=10_000)
    _add_scheduler_flags(query)
    _add_planner_flag(query, default="cost")
    _add_kernel_flag(query)
    _add_budget_flags(query)
    query.set_defaults(func=_cmd_query)

    inspect = sub.add_parser(
        "inspect", help="summarize a saved fact store (manifest only)")
    inspect.add_argument("store")
    inspect.set_defaults(func=_cmd_inspect)

    critical = sub.add_parser("critical", help="print the critical instance")
    critical.add_argument("rules")
    critical.add_argument("--standard", action="store_true")
    critical.set_defaults(func=_cmd_critical)

    entail = sub.add_parser("entail", help="guarded atom entailment")
    entail.add_argument("rules")
    entail.add_argument("database")
    entail.add_argument("atom")
    entail.set_defaults(func=_cmd_entail)

    dot = sub.add_parser("dot", help="export a graph in DOT format")
    dot.add_argument("rules")
    dot.add_argument("--graph", choices=["dep", "extdep", "joint", "types"],
                     default="dep")
    dot.set_defaults(func=_cmd_dot)

    serve = sub.add_parser(
        "serve",
        help="serve a resident chased instance over HTTP with "
             "incremental ingest")
    serve.add_argument("rules", nargs="?", default=None)
    serve.add_argument("database", nargs="?", default=None)
    serve.add_argument("--db", metavar="DIR", default=None,
                       help="serve a saved store: checkpointed stores "
                            "are extendable (ingest keeps "
                            "checkpointing), plain stores read-only")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port; 0 picks a free port and prints "
                            "it (default 8080)")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       metavar="S",
                       help="per-request deadline cap in seconds; a "
                            "request may ask for less, never more "
                            "(default 30)")
    serve.add_argument("--max-inflight", type=int, default=64,
                       metavar="N",
                       help="admission gate: at most N requests in "
                            "flight service-wide; excess is shed with "
                            "503 + Retry-After (default 64)")
    serve.add_argument("--max-ingest-queue", type=int, default=16,
                       metavar="N",
                       help="at most N ingests waiting per resident; "
                            "excess is shed with 429 + Retry-After "
                            "(default 16)")
    serve.add_argument("--variant", choices=sorted(_VARIANTS), default="r")
    serve.add_argument("--max-steps", type=int, default=None,
                       help="step budget for the initial chase and all "
                            "ingest legs combined (default 10000)")
    serve.add_argument("--save", metavar="DIR", default=None,
                       help="checkpoint the served chase into a durable "
                            "store; ingested deltas persist there too")
    serve.add_argument("--overwrite", action="store_true",
                       help="with --save, replace an existing store")
    _add_scheduler_flags(serve)
    _add_planner_flag(serve, default="cost")
    _add_kernel_flag(serve)
    _add_budget_flags(serve)
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # A second Ctrl-C (or one outside the governed region) lands
        # here; still exit cleanly with the cancellation code.
        print("% cancelled: interrupted before completion",
              file=sys.stderr)
        return EXIT_CODES["cancelled"]
    except BudgetExceededError as exc:
        # The deciders/saturation raise instead of returning a partial
        # result (a half-saturated type table proves nothing): print a
        # one-line summary of where the budget tripped and exit with
        # the stop reason's code — no traceback.
        reason = exc.stop_reason or "step_budget"
        stats = ", ".join(
            f"{key}={value}" for key, value in sorted(exc.stats.items())
            if not isinstance(value, dict)
        )
        status = _STATUS.get(reason, reason)
        print(f"% {status}: {exc}" + (f" [{stats}]" if stats else ""),
              file=sys.stderr)
        return EXIT_CODES.get(reason, _BUDGET_EXIT_FALLBACK)
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
