"""Conjunctive queries over instances with labelled nulls.

A conjunctive query (CQ) is ``q(x̄) :- φ(x̄, ȳ)`` — a conjunction of
atoms with distinguished answer variables.  Two evaluation semantics
matter for chase-produced instances:

* **naive answers** — homomorphic matches, nulls treated as values;
* **certain answers** — answers containing no nulls; over a universal
  model (a terminating chase result) these are exactly the answers
  true in *every* model of D and Σ, which is the standard argument for
  computing certain answers via the chase (§1 of the paper).

Evaluation runs on the int-native query subsystem
(:mod:`repro.query`): the body is cost-planned from the instance's
columnar statistics, answers are projected and deduplicated as term-id
tuples (no ``Term``-tuple dedup sets — the set holds small-int tuples
and only yielded answers ever materialize as objects), and certain
answers filter nulls by a memoized id-kind check.  Pass
``policy="heuristic"`` to any evaluation method to force the retained
PR 1 ordering; both policies produce the same answer sets, and the
property tests additionally hold them to the
``naive_homomorphisms``-derived oracle.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Set, Tuple

from ..model import (
    Atom,
    Instance,
    Term,
    Variable,
)
from ..query import CompiledQuery


class ConjunctiveQuery:
    """``answers(X1,...,Xn) :- atom, atom, ...``.

    The user-facing query object: parse one with
    :func:`repro.parser.parse_query`, then evaluate it against any
    chased instance (or snapshot) ::

        query = parse_query("q(X) :- works(X, D), dept(D)")
        naive = list(query.answers(result.instance))
        certain = query.certain_answers(result.instance)
        if parse_query("works(X, D)").holds_in(result.instance): ...

    ``answers`` yields one tuple per homomorphism image (nulls
    included); ``certain_answers`` keeps only null-free tuples, which
    over a *terminated* chase are exactly the answers true in every
    model of D ∧ Σ.  A query with no answer variables is boolean —
    evaluate it with ``holds_in``.  Evaluation delegates to the
    (cached, per ``policy``) :class:`repro.query.CompiledQuery`.

    ``name`` is the answer predicate's display name (what the parser
    saw before ``:-``; what the CLI prints answers under) — pure
    presentation, excluded from equality and hashing.
    """

    __slots__ = ("answer_variables", "atoms", "name", "_hash", "_compiled")

    def __init__(
        self,
        answer_variables: Sequence[Variable],
        atoms: Sequence[Atom],
        name: str = "q",
    ):
        self.answer_variables = tuple(answer_variables)
        self.atoms = tuple(atoms)
        self.name = name
        if not self.atoms:
            raise ValueError("a conjunctive query needs at least one atom")
        body_vars: Set[Variable] = set()
        for atom in self.atoms:
            body_vars |= atom.variables()
        for var in self.answer_variables:
            if var not in body_vars:
                raise ValueError(
                    f"answer variable {var} does not occur in the query body"
                )
        self._hash = hash((self.answer_variables, self.atoms))
        self._compiled: dict = {}

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConjunctiveQuery)
            and self.answer_variables == other.answer_variables
            and self.atoms == other.atoms
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.answer_variables)
        body = ", ".join(str(a) for a in self.atoms)
        return f"CQ(({head}) :- {body})"

    def is_boolean(self) -> bool:
        """True iff the query has no answer variables."""
        return not self.answer_variables

    def compiled(
        self, policy: str = "cost", kernel: str = "tuple"
    ) -> CompiledQuery:
        """The (cached) int-native compiled form under ``policy`` and
        execution ``kernel`` (see
        :data:`repro.query.kernels.KERNELS`)."""
        key = (policy, kernel)
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = CompiledQuery(
                self.answer_variables, self.atoms,
                policy=policy, kernel=kernel,
            )
            self._compiled[key] = compiled
        return compiled

    # -- evaluation -----------------------------------------------------

    def answers(
        self,
        instance: Instance,
        policy: str = "cost",
        kernel: str = "tuple",
        budget=None,
    ) -> Iterator[Tuple[Term, ...]]:
        """Naive answers: one tuple per homomorphism image,
        deduplicated in id space (only yielded answers materialize)."""
        return self.compiled(policy, kernel).answers(instance, budget=budget)

    def certain_answers(
        self,
        instance: Instance,
        policy: str = "cost",
        kernel: str = "tuple",
        budget=None,
    ) -> List[Tuple[Term, ...]]:
        """Null-free answers, sorted for determinism.

        When ``instance`` is a universal model of (D, Σ), these are the
        certain answers of the query under Σ.
        """
        return self.compiled(policy, kernel).certain_answers(
            instance, budget=budget
        )

    def holds_in(
        self,
        instance: Instance,
        policy: str = "cost",
        kernel: str = "tuple",
        budget=None,
    ) -> bool:
        """Boolean evaluation: does any match exist?"""
        return self.compiled(policy, kernel).holds_in(instance, budget=budget)
