"""Conjunctive queries over instances with labelled nulls.

A conjunctive query (CQ) is ``q(x̄) :- φ(x̄, ȳ)`` — a conjunction of
atoms with distinguished answer variables.  Two evaluation semantics
matter for chase-produced instances:

* **naive answers** — homomorphic matches, nulls treated as values;
* **certain answers** — answers containing no nulls; over a universal
  model (a terminating chase result) these are exactly the answers
  true in *every* model of D and Σ, which is the standard argument for
  computing certain answers via the chase (§1 of the paper).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Set, Tuple

from ..model import (
    Atom,
    Instance,
    Null,
    Term,
    Variable,
    homomorphisms,
)


class ConjunctiveQuery:
    """``answers(X1,...,Xn) :- atom, atom, ...``."""

    __slots__ = ("answer_variables", "atoms", "_hash")

    def __init__(
        self,
        answer_variables: Sequence[Variable],
        atoms: Sequence[Atom],
    ):
        self.answer_variables = tuple(answer_variables)
        self.atoms = tuple(atoms)
        if not self.atoms:
            raise ValueError("a conjunctive query needs at least one atom")
        body_vars: Set[Variable] = set()
        for atom in self.atoms:
            body_vars |= atom.variables()
        for var in self.answer_variables:
            if var not in body_vars:
                raise ValueError(
                    f"answer variable {var} does not occur in the query body"
                )
        self._hash = hash((self.answer_variables, self.atoms))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConjunctiveQuery)
            and self.answer_variables == other.answer_variables
            and self.atoms == other.atoms
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.answer_variables)
        body = ", ".join(str(a) for a in self.atoms)
        return f"CQ(({head}) :- {body})"

    def is_boolean(self) -> bool:
        """True iff the query has no answer variables."""
        return not self.answer_variables

    # -- evaluation -----------------------------------------------------

    def answers(self, instance: Instance) -> Iterator[Tuple[Term, ...]]:
        """Naive answers: one tuple per homomorphism image (deduplicated)."""
        seen: Set[Tuple[Term, ...]] = set()
        for assignment in homomorphisms(self.atoms, instance):
            answer = tuple(assignment[v] for v in self.answer_variables)
            if answer not in seen:
                seen.add(answer)
                yield answer

    def certain_answers(self, instance: Instance) -> List[Tuple[Term, ...]]:
        """Null-free answers, sorted for determinism.

        When ``instance`` is a universal model of (D, Σ), these are the
        certain answers of the query under Σ.
        """
        out = [
            answer
            for answer in self.answers(instance)
            if not any(isinstance(t, Null) for t in answer)
        ]
        return sorted(out, key=lambda tup: tuple(str(t) for t in tup))

    def holds_in(self, instance: Instance) -> bool:
        """Boolean evaluation: does any match exist?"""
        return next(homomorphisms(self.atoms, instance), None) is not None
