"""Universal-model checks for chase results.

A terminating chase result is a *universal model* of (D, Σ): a model
that maps homomorphically into every model of D and Σ.  These helpers
package the two defining properties (§1 of the paper) as checkable
predicates used by the test-suite and the data-exchange layer.
"""

from __future__ import annotations

from typing import Sequence

from ..model import (
    Instance,
    TGD,
    has_homomorphism,
    homomorphisms,
    instance_homomorphism,
)


def is_model(instance: Instance, rules: Sequence[TGD]) -> bool:
    """Property (1): ``instance`` satisfies every rule."""
    for rule in rules:
        for assignment in homomorphisms(rule.body, instance):
            partial = {v: assignment[v] for v in rule.frontier}
            if not has_homomorphism(rule.head, instance, partial):
                return False
    return True


def is_model_of(
    instance: Instance, database: Instance, rules: Sequence[TGD]
) -> bool:
    """``instance`` contains ``database`` and satisfies ``rules``."""
    if any(fact not in instance for fact in database):
        return False
    return is_model(instance, rules)


def is_universal_for(
    candidate: Instance, model: Instance
) -> bool:
    """Does ``candidate`` embed homomorphically into ``model``?

    Universality of a chase result means this holds for *every* model;
    tests exercise it against independently constructed models.
    """
    return instance_homomorphism(candidate, model) is not None
