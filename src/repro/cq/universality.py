"""Universal-model checks for chase results.

A terminating chase result is a *universal model* of (D, Σ): a model
that maps homomorphically into every model of D and Σ.  These helpers
package the two defining properties (§1 of the paper) as checkable
predicates used by the test-suite and the data-exchange layer.

``is_model`` runs on the int-native query subsystem: each rule body is
cost-planned and enumerated in id space, matches are deduplicated on
their *frontier* projection before any head work (homomorphisms
agreeing on the frontier share one satisfaction probe), and the head
probe itself is the chase's compiled, index-seeded
:func:`~repro.chase.triggers.head_satisfied` test.  The object-level
:func:`repro.model.homomorphisms` path remains the oracle the tests
compare against.
"""

from __future__ import annotations

from typing import Sequence, Set, Tuple

from ..chase.triggers import Trigger, head_satisfied
from ..model import (
    Instance,
    TGD,
    instance_homomorphism,
)
from ..query import CompiledQuery


def is_model(
    instance: Instance, rules: Sequence[TGD], policy: str = "cost"
) -> bool:
    """Property (1): ``instance`` satisfies every rule."""
    for index, rule in enumerate(rules):
        body = CompiledQuery(
            rule.body_variables_sorted, rule.body, policy=policy
        )
        frontier_get = rule._frontier_get
        seen: Set[Tuple] = set()
        for ids in body.matches_ids(instance):
            fkey = ids if frontier_get is None else frontier_get(ids)
            if fkey in seen:
                continue
            seen.add(fkey)
            trigger = Trigger.from_ids(rule, index, ids, instance)
            if not head_satisfied(trigger, instance):
                return False
    return True


def is_model_of(
    instance: Instance, database: Instance, rules: Sequence[TGD]
) -> bool:
    """``instance`` contains ``database`` and satisfies ``rules``."""
    if any(fact not in instance for fact in database):
        return False
    return is_model(instance, rules)


def is_universal_for(
    candidate: Instance, model: Instance
) -> bool:
    """Does ``candidate`` embed homomorphically into ``model``?

    Universality of a chase result means this holds for *every* model;
    tests exercise it against independently constructed models.
    """
    return instance_homomorphism(candidate, model) is not None
