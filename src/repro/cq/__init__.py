"""Conjunctive queries, certain answers, and universality checks."""

from .queries import ConjunctiveQuery
from .universality import is_model, is_model_of, is_universal_for

__all__ = [
    "ConjunctiveQuery",
    "is_model",
    "is_model_of",
    "is_universal_for",
]
