"""A DL-Lite frontend: description-logic axioms as simple linear TGDs.

The paper highlights that simple linear TGDs "are powerful enough for
capturing prominent database dependencies, and in particular inclusion
dependencies, as well as key description logics such as DL-Lite".
This frontend makes that concrete: a tiny textual TBox syntax is
translated into SL rules, so every decision procedure of the library
applies to ontologies directly.

Axiom syntax (one per line, ``%`` comments)::

    A sub B                 % concept inclusion      A ⊑ B
    A sub some R            % existential head       A ⊑ ∃R
    A sub some R B          % qualified existential  A ⊑ ∃R.B
    some R sub A            % domain                 ∃R ⊑ A
    some inv R sub A        % range                  ∃R⁻ ⊑ A
    R subrole S             % role inclusion         R ⊑ S
    R subrole inv S         % inverse role inclusion R ⊑ S⁻

Concepts become unary predicates, roles binary ones.
"""

from __future__ import annotations

from typing import List, Sequence

from ..model import Atom, Predicate, TGD, Variable

X = Variable("X")
Y = Variable("Y")


class DLLiteError(ValueError):
    """Raised on malformed axiom text."""


_RESERVED = frozenset({"some", "inv", "sub", "subrole"})


def _check_name(name: str) -> str:
    if name in _RESERVED:
        raise DLLiteError(f"{name!r} is a keyword, not a concept/role name")
    return name


def _concept(name: str) -> Predicate:
    return Predicate(_check_name(name), 1)


def _role(name: str) -> Predicate:
    return Predicate(_check_name(name), 2)


def _parse_axiom(tokens: Sequence[str], label: str) -> TGD:
    if "subrole" in tokens:
        split = tokens.index("subrole")
        left, right = tokens[:split], tokens[split + 1 :]
        if len(left) != 1:
            raise DLLiteError(f"bad role inclusion: {' '.join(tokens)}")
        body = [Atom(_role(left[0]), [X, Y])]
        if len(right) == 1:
            head = [Atom(_role(right[0]), [X, Y])]
        elif len(right) == 2 and right[0] == "inv":
            head = [Atom(_role(right[1]), [Y, X])]
        else:
            raise DLLiteError(f"bad role inclusion: {' '.join(tokens)}")
        return TGD(body, head, label=label)

    if "sub" not in tokens:
        raise DLLiteError(f"expected 'sub' in: {' '.join(tokens)}")
    split = tokens.index("sub")
    left, right = list(tokens[:split]), list(tokens[split + 1 :])

    if len(left) == 1:
        body = [Atom(_concept(left[0]), [X])]
        body_uses_y = False
    elif len(left) == 2 and left[0] == "some":
        body = [Atom(_role(left[1]), [X, Y])]
        body_uses_y = True
    elif len(left) == 3 and left[0] == "some" and left[1] == "inv":
        body = [Atom(_role(left[2]), [Y, X])]
        body_uses_y = True
    else:
        raise DLLiteError(f"bad left-hand side: {' '.join(tokens)}")

    # The head's existential filler must be fresh, not the body's Y
    # (∃R ⊑ ∃S constrains the *source*, not the filler).
    filler = Variable("Y2") if body_uses_y else Y
    if len(right) == 1:
        head = [Atom(_concept(right[0]), [X])]
    elif len(right) == 2 and right[0] == "some":
        head = [Atom(_role(right[1]), [X, filler])]
    elif len(right) == 3 and right[0] == "some":
        head = [
            Atom(_role(right[1]), [X, filler]),
            Atom(_concept(right[2]), [filler]),
        ]
    else:
        raise DLLiteError(f"bad right-hand side: {' '.join(tokens)}")
    return TGD(body, head, label=label)


def parse_tbox(text: str) -> List[TGD]:
    """Translate a TBox into simple linear TGDs."""
    rules: List[TGD] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("%", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        try:
            rules.append(_parse_axiom(tokens, label=f"ax{len(rules) + 1}"))
        except DLLiteError as exc:
            raise DLLiteError(f"line {lineno}: {exc}") from exc
    for rule in rules:
        assert rule.is_simple_linear(), "frontend must emit SL rules"
    return rules
