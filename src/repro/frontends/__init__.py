"""Frontends translating external formalisms into TGDs."""

from .dllite import DLLiteError, parse_tbox

__all__ = ["DLLiteError", "parse_tbox"]
