"""Critical instances (Marnette, PODS'09) — the all-instance oracle.

For the oblivious and semi-oblivious chase, Σ terminates on *every*
database iff it terminates on the **critical instance**: the database
containing every fact over the active domain  consts(Σ) ∪ {*}  with a
single fresh constant ``*``.  This reduces all-instance termination to
single-instance termination, and is the semantic anchor of both the
deciders in :mod:`repro.termination` and the ground-truth oracles used
by the test-suite and benchmarks.

The paper's Theorem 4 speaks about *standard databases* — databases
providing two constants 0 and 1 via unary predicates ``zero`` and
``one``.  :func:`standard_critical_instance` builds the corresponding
critical database over ``{*, 0, 1}``.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from ..model import (
    Atom,
    Constant,
    Database,
    Predicate,
    Schema,
    TGD,
    program_constants,
)

CRITICAL_CONSTANT = Constant("*")
ZERO_CONSTANT = Constant("0")
ONE_CONSTANT = Constant("1")
ZERO_PREDICATE = Predicate("zero", 1)
ONE_PREDICATE = Predicate("one", 1)


def critical_instance(
    rules: Sequence[TGD],
    schema: Optional[Schema] = None,
) -> Database:
    """The critical instance of Σ: all facts over consts(Σ) ∪ {*}.

    ``schema`` defaults to the schema induced by ``rules``; pass a
    larger one to include predicates that only databases mention.
    """
    schema = schema or Schema.from_rules(rules)
    domain: List[Constant] = sorted(
        program_constants(rules) | {CRITICAL_CONSTANT}
    )
    return _fill(schema, domain)


def standard_critical_instance(
    rules: Sequence[TGD],
    schema: Optional[Schema] = None,
) -> Database:
    """The critical instance for *standard* databases (Theorem 4):
    domain ``consts(Σ) ∪ {*, 0, 1}`` plus the facts ``zero(0)`` and
    ``one(1)`` making the two standard constants available."""
    schema = schema or Schema.from_rules(rules)
    schema = schema.merge(Schema([ZERO_PREDICATE, ONE_PREDICATE]))
    domain = sorted(
        program_constants(rules)
        | {CRITICAL_CONSTANT, ZERO_CONSTANT, ONE_CONSTANT}
    )
    database = _fill(schema, domain)
    database.add(Atom(ZERO_PREDICATE, [ZERO_CONSTANT]))
    database.add(Atom(ONE_PREDICATE, [ONE_CONSTANT]))
    return database


def _fill(schema: Schema, domain: Sequence[Constant]) -> Database:
    database = Database()
    for pred in schema:
        for combo in itertools.product(domain, repeat=pred.arity):
            database.add(Atom(pred, combo))
    return database


def critical_domain(rules: Sequence[TGD]) -> Tuple[Constant, ...]:
    """The active domain of the (plain) critical instance of Σ."""
    return tuple(sorted(program_constants(rules) | {CRITICAL_CONSTANT}))
