"""Round-boundary chase checkpoints: the engine state beside the facts.

A durable fact store (:mod:`repro.storage.durable`) persists the
*instance*; resuming a chase additionally needs the *evaluation state*
— which triggers already fired, which fact ordinals still await a
discovery pass, where null numbering stands, and (when the run stopped
mid-round) which materialized triggers of the interrupted round were
never applied.  This module persists exactly that, append-only, in
three files inside the store directory:

``steps.q``
    One record per applied step, in application order::

        [rule_index, n_ids, *ids, n_ords, *ords]

    ``ids`` is the trigger's interned homomorphism (aligned with the
    rule's name-sorted body variables), ``ords`` the log ordinals of
    the facts it produced.  The resumed run rebuilds its ``steps``
    list from these, so fingerprints (trigger keys + provenance) are
    byte-identical to the uninterrupted run's.
``fired.q``
    One record per fired *key*, in hand-out order::

        [rule_index, n, *ids]

    Keys are variant-projected (semi-oblivious keys carry the frontier
    restriction only), exactly as they live in the engine's fired set;
    ``n = -1`` marks a scalar key (single-frontier-variable rules key
    on a bare int, and the decoded shape must match exactly).
``chase.pkl``
    A small pickled header rewritten atomically at every checkpoint:
    variant, planner, ``max_steps``, the rules themselves (TGDs pickle
    — they already ship to process workers), the two files' record/int
    watermarks, the null counter, the frontier, the interrupted
    round's pending triggers, and the fact count the header describes.

Write order is data appends → manifest (the store commit, see
:class:`~repro.storage.durable.StoreWriter.flush`) → header.  A crash
between manifest and header leaves an old header whose fact count
disagrees with the manifest — refused at load with a clear error; a
crash before the manifest leaves the previous checkpoint fully intact
(uncommitted appends are invisible).

Null numbering is not persisted per-null: every fired trigger mints
``len(rule.existentials_sorted)`` fresh nulls (head-row dedup happens
*after* minting — see ``apply_trigger_ids``), so the counter is a
running sum over the step log, maintained incrementally here.
"""

from __future__ import annotations

import os
import pickle
from array import array
from typing import Hashable, List, Optional, Sequence, Tuple

from ..model import Instance, TGD
from ..storage.durable import (
    CHASE_STATE,
    StoreFormatError,
    StoreWriter,
    _read_ints,
)
from .delta import DeltaEngine
from .result import ChaseStep
from .triggers import Trigger

STEPS_FILE = "steps.q"
FIRED_FILE = "fired.q"

CHECKPOINT_FORMAT = 1


def _atomic_pickle(path: str, payload: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


class Checkpointer:
    """Round-boundary persister for one chase run over one store
    directory.  Owns the directory's :class:`StoreWriter`; every
    :meth:`checkpoint` appends the fact/step/fired tails and rewrites
    the two commit records (manifest, then header)."""

    __slots__ = ("writer", "rules", "variant", "planner", "max_steps",
                 "n_steps", "steps_ints", "n_fired", "fired_ints",
                 "fired_logged", "null_next")

    def __init__(self, writer: StoreWriter, rules: Sequence[TGD],
                 variant: str, planner: str, max_steps: int,
                 state: Optional[dict] = None):
        self.writer = writer
        self.rules = list(rules)
        self.variant = variant
        self.planner = planner
        self.max_steps = max_steps
        if state is None:
            self.n_steps = 0
            self.steps_ints = 0
            self.n_fired = 0
            self.fired_ints = 0
            self.null_next = 1
        else:
            self.n_steps = state["n_steps"]
            self.steps_ints = state["steps_ints"]
            self.n_fired = state["n_fired"]
            self.fired_ints = state["fired_ints"]
            self.null_next = state["null_next"]
        # How much of the engine's (per-run, starts empty) fired log
        # has been encoded — distinct from ``n_fired``, the total
        # persisted across all legs of the run.
        self.fired_logged = 0

    @classmethod
    def create(cls, path: str, instance: Instance, rules: Sequence[TGD],
               variant: str, planner: str, max_steps: int,
               overwrite: bool = False) -> "Checkpointer":
        """A fresh checkpointed run: creates the store directory (see
        :meth:`StoreWriter.create` for the overwrite contract)."""
        writer = StoreWriter.create(path, instance.store,
                                    overwrite=overwrite)
        return cls(writer, rules, variant, planner, max_steps)

    @classmethod
    def attach(cls, path: str, instance: Instance, state: dict,
               max_steps: int) -> "Checkpointer":
        """Continue checkpointing a resumed run into its directory."""
        writer = StoreWriter.attach(path, instance.store)
        return cls(writer, state["rules"], state["variant"],
                   state["planner"], max_steps, state=state)

    def set_max_steps(self, max_steps: int) -> None:
        """Raise (or change) the recorded step budget — an extension
        leg that continues a finished or budget-stopped run persists
        its new cap so a later ``resume_chase`` sees it."""
        self.max_steps = max_steps

    def checkpoint(
        self,
        engine: DeltaEngine,
        steps: Sequence[ChaseStep],
        pending: Sequence[Trigger] = (),
        rounds: int = 0,
        terminated: bool = False,
        stop_reason: Optional[str] = None,
    ) -> None:
        """Persist everything the directory is missing about the run:
        fact tails (via the writer), step/fired tails, then the header.
        ``pending`` is the not-yet-applied remainder of an interrupted
        round, in canonical order."""
        instance = engine.instance
        # 1. applied-step tail.
        new_steps = steps[self.n_steps:]
        if new_steps:
            buf = array("q")
            for step in new_steps:
                trigger = step.trigger
                ids = trigger.ids(instance)
                ords = step._ordinals
                buf.append(trigger.rule_index)
                buf.append(len(ids))
                buf.extend(ids)
                buf.append(len(ords))
                buf.extend(ords)
                self.null_next += len(trigger.rule.existentials_sorted)
            self.writer.append_ints(STEPS_FILE, buf)
            self.steps_ints += len(buf)
            self.n_steps = len(steps)
        # 2. fired-key tail, off the engine's hand-out-order log.
        log = engine.fired_log or ()
        new_keys = log[self.fired_logged:]
        if new_keys:
            buf = array("q")
            for rule_index, ids in new_keys:
                buf.append(rule_index)
                if type(ids) is int:
                    # Single-frontier-variable semi-oblivious keys are
                    # scalar (see TGD._frontier_get); -1 marks the
                    # shape so decode rebuilds the exact key.
                    buf.append(-1)
                    buf.append(ids)
                else:
                    buf.append(len(ids))
                    buf.extend(ids)
            self.writer.append_ints(FIRED_FILE, buf)
            self.fired_ints += len(buf)
            self.n_fired += len(new_keys)
            self.fired_logged = len(log)
        # 3. fact data + manifest (the store commit point).
        self.writer.flush(extra={"chase": True})
        # 4. the header, describing exactly the committed state.
        header = {
            "format": CHECKPOINT_FORMAT,
            "variant": self.variant,
            "planner": self.planner,
            "max_steps": self.max_steps,
            "rules": tuple(self.rules),
            "n_steps": self.n_steps,
            "steps_ints": self.steps_ints,
            "n_fired": self.n_fired,
            "fired_ints": self.fired_ints,
            "null_next": self.null_next,
            "frontier": engine.frontier_snapshot(),
            "pending": tuple(
                (t.rule_index, tuple(t.ids(instance))) for t in pending
            ),
            "rounds": rounds,
            "terminated": terminated,
            "stop_reason": stop_reason,
            "facts": len(instance),
        }
        _atomic_pickle(
            os.path.join(self.writer.path, CHASE_STATE), header
        )


def load_state(path: str, store) -> dict:
    """The resume state of a checkpointed store directory: the header
    plus the decoded step records (``state["steps"]`` as
    ``(rule_index, ids, ordinals)`` triples) and fired-key set
    (``state["fired"]``).  Refuses headers torn relative to the
    store's committed fact count."""
    header_path = os.path.join(path, CHASE_STATE)
    if not os.path.exists(header_path):
        raise StoreFormatError(
            f"{path}: no {CHASE_STATE} — the store holds facts but no "
            f"chase checkpoint (saved with Instance.save()?); "
            f"it can be queried, not resumed"
        )
    with open(header_path, "rb") as fh:
        state = pickle.load(fh)
    if state.get("format") != CHECKPOINT_FORMAT:
        raise StoreFormatError(
            f"{path}: checkpoint format {state.get('format')!r}, "
            f"this build reads {CHECKPOINT_FORMAT}"
        )
    if state["facts"] != store.size():
        raise StoreFormatError(
            f"{path}: torn checkpoint — header describes "
            f"{state['facts']} facts, store committed {store.size()}"
        )
    flat = _read_ints(os.path.join(path, STEPS_FILE), state["steps_ints"])
    steps: List[Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = []
    i = 0
    for _ in range(state["n_steps"]):
        rule_index = flat[i]
        n = flat[i + 1]
        i += 2
        ids = tuple(flat[i:i + n])
        i += n
        n = flat[i]
        i += 1
        ords = tuple(flat[i:i + n])
        i += n
        steps.append((rule_index, ids, ords))
    state["steps"] = steps
    flat = _read_ints(os.path.join(path, FIRED_FILE), state["fired_ints"])
    fired: set = set()
    i = 0
    for _ in range(state["n_fired"]):
        rule_index = flat[i]
        n = flat[i + 1]
        i += 2
        if n == -1:
            fired.add((rule_index, flat[i]))
            i += 1
        else:
            fired.add((rule_index, tuple(flat[i:i + n])))
            i += n
    state["fired"] = fired
    return state
