"""Chase engines: oblivious, semi-oblivious, and restricted, plus
critical instances and trigger machinery."""

from .critical import (
    CRITICAL_CONSTANT,
    ONE_CONSTANT,
    ONE_PREDICATE,
    ZERO_CONSTANT,
    ZERO_PREDICATE,
    critical_domain,
    critical_instance,
    standard_critical_instance,
)
from .checkpoint import Checkpointer, load_state
from .delta import DeltaEngine, delta_triggers
from .incremental import ChaseSession, extend_chase
from .engine import (
    DEFAULT_MAX_STEPS,
    oblivious_chase,
    resource_stats,
    restricted_chase,
    resume_chase,
    run_chase,
    semi_oblivious_chase,
)
from .result import ChaseResult, ChaseStep
from .scheduler import (
    SCHEDULER_KINDS,
    RoundScheduler,
    discovery_batches,
    evaluate_batch,
    resolve_scheduler,
    scheduled_delta_triggers,
)
from .triggers import (
    ChaseVariant,
    Trigger,
    all_triggers,
    apply_trigger,
    head_satisfied,
    triggers_for_rule,
)

__all__ = [
    "CRITICAL_CONSTANT",
    "ChaseResult",
    "ChaseStep",
    "ChaseVariant",
    "ChaseSession",
    "Checkpointer",
    "DEFAULT_MAX_STEPS",
    "DeltaEngine",
    "ONE_CONSTANT",
    "ONE_PREDICATE",
    "RoundScheduler",
    "SCHEDULER_KINDS",
    "Trigger",
    "ZERO_CONSTANT",
    "ZERO_PREDICATE",
    "all_triggers",
    "apply_trigger",
    "critical_domain",
    "critical_instance",
    "delta_triggers",
    "discovery_batches",
    "evaluate_batch",
    "extend_chase",
    "head_satisfied",
    "load_state",
    "oblivious_chase",
    "resolve_scheduler",
    "resource_stats",
    "restricted_chase",
    "resume_chase",
    "run_chase",
    "scheduled_delta_triggers",
    "semi_oblivious_chase",
    "standard_critical_instance",
    "triggers_for_rule",
]
