"""Semi-naive delta evaluation — the shared round engine.

Every round-based fixpoint computation in this library has the same
skeleton: discover the triggers enabled by the facts added in the
previous round, fire the not-yet-fired ones, collect the new facts,
repeat.  PR 1 gave the chase engine pivot-seeded indexed discovery;
this module extracts that machinery so the chase engines *and* the
termination deciders (the MFA Skolem chase, see
:mod:`repro.termination.mfa`) run on one implementation with one
invariant:

    **a round's triggers are materialized before any of them is
    applied.**

Discovering triggers lazily while mutating the instance lets facts
added by one firing leak into join levels of the *same* enumeration
(iterators entered later see them) — the pre-PR-2 MFA chase did
exactly that, making its round structure ill-defined.  Materializing
first makes rounds well-defined, engine-independent units, which is
also the prerequisite for batching and parallelising them (ROADMAP).

Two pieces live here:

* :func:`delta_triggers` — one discovery pass: triggers whose body
  match involves at least one fact of the delta, found via compiled
  pivot-seeded join plans;
* :class:`DeltaEngine` — the round driver owning the state that must
  survive across rounds: the frontier and the persistent fired-key
  set.

Discovery is the read-only (and expensive) half of a round, so it is
also the half that batches: pass a
:class:`~repro.chase.scheduler.RoundScheduler` (or a kind name) to
``DeltaEngine`` and each round's discovery work list is partitioned
into per-``(rule, pivot)`` batches and evaluated by the configured
executor, with a canonical-order merge that reproduces the serial
trigger stream exactly (see :mod:`repro.chase.scheduler`).
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
)

from ..model import Atom, Instance, Predicate, TGD, atom_step, plan_for
from .scheduler import RoundScheduler, scheduled_delta_triggers
from .triggers import Trigger


def delta_triggers(
    rules: Sequence[TGD],
    instance: Instance,
    new_facts: Sequence[Atom],
) -> Iterator[Trigger]:
    """Triggers whose body match involves at least one fact from
    ``new_facts``.  May repeat a trigger (when several body atoms hit
    new facts); the caller's fired-key set deduplicates."""
    new_by_predicate: Dict[Predicate, List[Atom]] = {}
    for fact in new_facts:
        new_by_predicate.setdefault(fact.predicate, []).append(fact)
    for rule_index, rule in enumerate(rules):
        for pivot, pivot_atom in enumerate(rule.body):
            candidates = new_by_predicate.get(pivot_atom.predicate)
            if not candidates:
                continue
            pivot_step = atom_step(pivot_atom)
            pivot_vars = pivot_step.variables()
            rest = [a for i, a in enumerate(rule.body) if i != pivot]
            # The pivot's bindings seed the rest-of-body join: the plan
            # treats them as bound and probes the term-level indexes
            # with them.  One plan serves every candidate fact — the
            # caller materializes all triggers before mutating the
            # instance, so the join order cannot go stale mid-loop.
            plan = plan_for(rest, instance, pivot_vars) if rest else None
            for fact in candidates:
                partial: Dict = {}
                if pivot_step.try_match(fact, partial) is None:
                    continue
                if plan is None:
                    yield Trigger(rule, rule_index, partial)
                    continue
                for assignment in plan.run(instance, partial):
                    yield Trigger(rule, rule_index, assignment)


class DeltaEngine:
    """Round-structured semi-naive trigger discovery.

    Owns the evaluation state that must survive across rounds:

    * the *frontier* — facts added since the last discovery pass; and
    * the *fired-key set* — the identification key of every trigger
      ever handed out, so historical triggers are neither re-discovered
      nor re-keyed round after round.

    ``key`` maps a trigger to its identification key (typically
    ``Trigger.key(variant)``); a trigger whose key was already handed
    out is dropped at discovery time, so each round is a duplicate-free
    materialized batch.  Protocol::

        engine = DeltaEngine(rules, instance, key=...)
        while True:
            triggers = engine.next_round()    # materialized, deduped
            if not triggers:
                break                         # fixpoint
            for trigger in triggers:
                ...apply, then engine.notify(new_facts)...

    The instance is shared with the caller and must only be mutated
    *between* ``next_round`` calls — i.e. while applying a materialized
    round — never during one (``next_round`` itself never mutates it).

    ``scheduler`` (optional) batches each round's discovery pass
    through a :class:`~repro.chase.scheduler.RoundScheduler`; the
    default — and a plain serial scheduler without sharding — runs the
    unbatched :func:`delta_triggers` loop.  Either way the trigger
    stream is identical; the fired-key dedup below is always serial.
    """

    __slots__ = ("rules", "instance", "fired", "_key", "_frontier",
                 "_scheduler")

    def __init__(
        self,
        rules: Sequence[TGD],
        instance: Instance,
        key: Callable[[Trigger], Hashable],
        scheduler: Optional[RoundScheduler] = None,
    ):
        self.rules: List[TGD] = list(rules)
        self.instance = instance
        self.fired: Set[Hashable] = set()
        self._key = key
        if (
            scheduler is not None
            and scheduler.kind == "serial"
            and scheduler.shard_size is None
        ):
            # Indistinguishable from no scheduler; drop it so the
            # serial path stays the canonical single loop.
            scheduler = None
        self._scheduler = scheduler
        # The first round treats every existing fact as new.
        self._frontier: List[Atom] = list(instance)

    def notify(self, facts: Iterable[Atom]) -> None:
        """Report facts added to the instance; they seed the next
        round's discovery pass."""
        self._frontier.extend(facts)

    def pending_facts(self) -> int:
        """How many facts await the next discovery pass."""
        return len(self._frontier)

    def next_round(self) -> List[Trigger]:
        """Materialize the next round: every not-yet-fired trigger whose
        body match involves a frontier fact, in deterministic discovery
        order (rule-major, then pivot position, then fact insertion
        order).  Returned triggers are marked fired.  An empty list
        means fixpoint — no frontier, or nothing new matched it."""
        frontier = self._frontier
        if not frontier:
            return []
        self._frontier = []
        scheduler = self._scheduler
        if scheduler is None:
            discovered: Iterable[Trigger] = delta_triggers(
                self.rules, self.instance, frontier
            )
        else:
            discovered = scheduled_delta_triggers(
                scheduler, self.rules, self.instance, frontier
            )
        fired = self.fired
        key = self._key
        out: List[Trigger] = []
        for trigger in discovered:
            k = key(trigger)
            if k in fired:
                continue
            fired.add(k)
            out.append(trigger)
        return out
