"""Semi-naive delta evaluation — the shared round engine.

Every round-based fixpoint computation in this library has the same
skeleton: discover the triggers enabled by the facts added in the
previous round, fire the not-yet-fired ones, collect the new facts,
repeat.  PR 1 gave the chase engine pivot-seeded indexed discovery;
this module extracts that machinery so the chase engines *and* the
termination deciders (the MFA Skolem chase, see
:mod:`repro.termination.mfa`) run on one implementation with one
invariant:

    **a round's triggers are materialized before any of them is
    applied.**

Discovering triggers lazily while mutating the instance lets facts
added by one firing leak into join levels of the *same* enumeration
(iterators entered later see them) — the pre-PR-2 MFA chase did
exactly that, making its round structure ill-defined.  Materializing
first makes rounds well-defined, engine-independent units, which is
also the prerequisite for batching and parallelising them (ROADMAP).

With the interned fact core, discovery is **int-only**: frontier facts
are fact *ordinals* (log positions), pivot rows seed slot-based
resolved plans (:class:`repro.chase.triggers.RuleExec`), and the
produced triggers carry id tuples — Term objects never materialize on
this path.  The public surface still accepts Atom frontiers (they are
encoded on entry), and ``Trigger.assignment`` decodes lazily.

Two pieces live here:

* :func:`delta_triggers` — one discovery pass: triggers whose body
  match involves at least one fact of the delta, found via resolved
  pivot-seeded join execs;
* :class:`DeltaEngine` — the round driver owning the state that must
  survive across rounds: the frontier, the persistent fired-key set,
  and (for the ``process`` executor) the delta-shipping log.

Discovery is the read-only (and expensive) half of a round, so it is
also the half that batches: pass a
:class:`~repro.chase.scheduler.RoundScheduler` (or a kind name) to
``DeltaEngine`` and each round's discovery work list is partitioned
into per-``(rule, pivot)`` batches and evaluated by the configured
executor, with a canonical-order merge that reproduces the serial
trigger stream exactly (see :mod:`repro.chase.scheduler`).
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..errors import BudgetExceededError
from ..model import Atom, Instance, TGD
from ..query.kernels import batch_rule_matches
from .scheduler import (
    RoundScheduler,
    ShipLog,
    scheduled_delta_triggers,
    scheduled_head_probes,
)
from .triggers import ChaseVariant, Trigger, rule_exec

FrontierFact = Union[int, Atom]

#: Under ``kernel="auto"`` a (rule, pivot) batch goes vectorized only
#: when the frontier hands it at least this many candidate rows — the
#: "fat round" threshold below which the tuple loop's lower constant
#: cost wins.  ``kernel="vector"`` batches unconditionally.
_FAT_ROUND_MIN = 512


def _group_rows(
    instance: Instance, new_facts: Sequence[FrontierFact]
) -> Dict[int, List[Tuple[int, ...]]]:
    """Frontier facts grouped into per-predicate-id row lists, in
    arrival order.  Atoms are encoded (interning); ordinals are read
    straight off the fact log."""
    groups: Dict[int, List[Tuple[int, ...]]] = {}
    store = instance.store
    store.ensure_all()
    log_pids = store.log_pids
    log_rows = store.log_rows
    for fact in new_facts:
        if type(fact) is int:
            pid = log_pids[fact]
            row = log_rows[fact]
        else:
            pid = instance.pred_id(fact.predicate)
            term_id = instance.term_id
            row = tuple(term_id(t) for t in fact.terms)
        rows = groups.get(pid)
        if rows is None:
            groups[pid] = [row]
        else:
            rows.append(row)
    return groups


def delta_triggers(
    rules: Sequence[TGD],
    instance: Instance,
    new_facts: Sequence[FrontierFact],
) -> Iterator[Trigger]:
    """Triggers whose body match involves at least one fact from
    ``new_facts`` (fact ordinals, or Atoms on the public surface).
    May repeat a trigger (when several body atoms hit new facts); the
    caller's fired-key set deduplicates.

    When the instance's ``kernel`` policy says so ("vector" always;
    "auto" for fat batches of at least :data:`_FAT_ROUND_MIN` candidate
    rows), a (rule, pivot) batch is evaluated by the columnar batch
    kernel (:func:`repro.query.kernels.batch_rule_matches`) instead of
    the tuple loop.  The batch join is order-exact, so the trigger
    stream — ids, order, and all — is byte-identical either way."""
    groups = _group_rows(instance, new_facts)
    if not groups:
        return
    kernel = instance.kernel
    batch_always = kernel == "vector"
    batch_fat = batch_always or kernel == "auto"
    for rule_index, rule in enumerate(rules):
        body = rule.body
        for pivot in range(len(body)):
            pid = instance.pred_id_get(body[pivot].predicate)
            candidates = groups.get(pid) if pid is not None else None
            if not candidates:
                continue
            exec_ = rule_exec(instance, rule, pivot)
            if batch_fat and (
                batch_always or len(candidates) >= _FAT_ROUND_MIN
            ):
                for ids in batch_rule_matches(
                    instance, exec_.pivot_step, exec_.rest,
                    candidates, exec_.emit_slots,
                ):
                    yield Trigger.from_ids(rule, rule_index, ids, instance)
                continue
            pivot_step = exec_.pivot_step
            rest = exec_.rest
            emit = exec_.emit
            assign: List[Optional[int]] = [None] * exec_.nslots
            for row in candidates:
                newly = pivot_step.match(row, assign)
                if newly is None:
                    continue
                if rest is None:
                    yield Trigger.from_ids(
                        rule, rule_index, emit(assign), instance
                    )
                else:
                    for match in rest.run(instance, assign):
                        yield Trigger.from_ids(
                            rule, rule_index, emit(match), instance
                        )
                for s in newly:
                    assign[s] = None


def ingest_facts(
    engine: "DeltaEngine", facts: Iterable[Atom]
) -> List[int]:
    """Append new *base* facts to the engine's instance and seed them
    into its frontier — the entry point of an incremental-maintenance
    leg (ROADMAP item 1: a new base-fact delta is just a resume leg
    with extra database rows).

    Facts must be ground and null-free (they are database rows, not
    chase derivations); the whole delta is validated **before** any
    fact is added, so an invalid delta is rejected without mutating
    the instance (all-or-nothing — a caller that catches the
    ``ValueError`` still holds a consistent engine).  Duplicates of
    existing facts are skipped.  Returns the log ordinals of the facts
    actually added, which the next ``next_round()`` treats exactly
    like facts fired by a previous round — discovery, fired-key dedup,
    and null numbering all proceed as if the chase had always known
    them.
    """
    checked = list(facts)
    for fact in checked:
        if not fact.is_ground():
            raise ValueError(
                f"ingested facts must be ground, got {fact}"
            )
        if fact.nulls():
            raise ValueError(
                f"ingested facts must be null-free base facts, "
                f"got {fact}"
            )
    instance = engine.instance
    added: List[int] = []
    for fact in checked:
        if not instance.add(fact):
            continue
        added.append(len(instance) - 1)
    if added:
        engine.notify(added)
    return added


class DeltaEngine:
    """Round-structured semi-naive trigger discovery.

    Owns the evaluation state that must survive across rounds:

    * the *frontier* — facts added since the last discovery pass
      (internally fact ordinals; ``notify`` also accepts Atoms);
    * the *fired-key set* — the identification key of every trigger
      ever handed out, so historical triggers are neither re-discovered
      nor re-keyed round after round; and
    * the *ship log* — the ``process`` executor's delta-shipping state
      (worker mirror versions), created lazily on first use.

    ``key`` maps a trigger to its identification key (typically
    ``Trigger.key(variant)``); a trigger whose key was already handed
    out is dropped at discovery time, so each round is a duplicate-free
    materialized batch.  Protocol::

        engine = DeltaEngine(rules, instance, key=...)
        while True:
            triggers = engine.next_round()    # materialized, deduped
            if not triggers:
                break                         # fixpoint
            for trigger in triggers:
                ...apply, then engine.notify(new_facts)...

    The instance is shared with the caller and must only be mutated
    *between* ``next_round`` calls — i.e. while applying a materialized
    round — never during one (``next_round`` itself never mutates it).

    ``scheduler`` (optional) batches each round's discovery pass
    through a :class:`~repro.chase.scheduler.RoundScheduler`; the
    default — and a plain serial scheduler without sharding — runs the
    unbatched :func:`delta_triggers` loop.  Either way the trigger
    stream is identical; the fired-key dedup below is always serial.

    ``budget`` (optional, a :class:`repro.runtime.budget.Budget`) is
    checked during each round's discovery pass — every
    ``BUDGET_CHECK_EVERY`` discovered triggers — and raises
    :class:`~repro.errors.BudgetExceededError` when tripped.  Discovery
    is read-only, so an aborted pass leaves the instance exactly as the
    round started: callers catch the error and return a
    round-consistent partial result.
    """

    __slots__ = ("rules", "instance", "fired", "budget", "fired_log",
                 "store_ref", "_key", "_frontier", "_scheduler", "_ship",
                 "_variant")

    #: Budget-check cadence inside a round's discovery/dedup loop.
    BUDGET_CHECK_EVERY = 2048

    def __init__(
        self,
        rules: Sequence[TGD],
        instance: Instance,
        key: Callable[[Trigger], Hashable],
        scheduler: Optional[RoundScheduler] = None,
        variant: Optional[str] = None,
        budget=None,
        fired: Optional[Set[Hashable]] = None,
        frontier: Optional[Sequence[FrontierFact]] = None,
    ):
        self.rules: List[TGD] = list(rules)
        self.instance = instance
        # ``fired``/``frontier`` pre-seed the evaluation state when a
        # checkpointed run resumes (repro.chase.checkpoint): the set of
        # already-handed-out keys and the ordinals still awaiting a
        # discovery pass, exactly as persisted at the round boundary.
        self.fired: Set[Hashable] = set() if fired is None else fired
        self._key = key
        # When the key policy is a plain chase variant, the dedup loop
        # computes interned-form keys inline (no per-trigger lambda /
        # method dispatch); ``key`` remains the general fallback.
        self._variant = variant
        if (
            scheduler is not None
            and scheduler.kind == "serial"
            and scheduler.shard_size is None
        ):
            # Indistinguishable from no scheduler; drop it so the
            # serial path stays the canonical single loop.
            scheduler = None
        self._scheduler = scheduler
        self.budget = budget
        self._ship: Optional[ShipLog] = None
        #: When not None, every key newly added to ``fired`` is also
        #: appended here, in hand-out order — the checkpointer's
        #: append-only persistence feed (see :meth:`track_fired`).
        self.fired_log: Optional[List[Hashable]] = None
        #: ``(path, facts_at_flush)`` of a durable store holding a
        #: flushed prefix of this instance; process-executor worker
        #: mirrors hydrate from it instead of receiving a full ship.
        self.store_ref: Optional[Tuple[str, int]] = None
        # Pre-intern every rule symbol serially, so batched discovery
        # never allocates ids and id order is thread-independent.
        instance.prepare_rules(self.rules)
        # The first round treats every existing fact as new (unless a
        # resumed frontier says otherwise).
        self._frontier: List[FrontierFact] = (
            list(range(len(instance))) if frontier is None
            else list(frontier)
        )

    def track_fired(self) -> List[Hashable]:
        """Start (or return) the append-only log of newly fired keys —
        the checkpointer reads persistence tails off it.  Only keys
        handed out *after* this call are logged."""
        if self.fired_log is None:
            self.fired_log = []
        return self.fired_log

    def frontier_snapshot(self) -> Tuple[int, ...]:
        """The current frontier as a tuple of fact ordinals (the
        checkpoint wire form).  Engines on the int path only ever
        notify ordinals; Atom frontiers are rejected."""
        out: List[int] = []
        for fact in self._frontier:
            if type(fact) is not int:
                raise TypeError(
                    "cannot snapshot an Atom-bearing frontier; "
                    "checkpointing requires the int-only engine path"
                )
            out.append(fact)
        return tuple(out)

    def notify(self, facts: Iterable[Union[Atom, int]]) -> None:
        """Report facts added to the instance (Atoms or fact ordinals);
        they seed the next round's discovery pass."""
        self._frontier.extend(facts)

    def pending_facts(self) -> int:
        """How many facts await the next discovery pass."""
        return len(self._frontier)

    def ship_log(self) -> ShipLog:
        """The delta-shipping state for the ``process`` executor
        (created on first use; one per engine run)."""
        if self._ship is None:
            self._ship = ShipLog(self.rules, store_ref=self.store_ref)
        return self._ship

    def next_round(self) -> List[Trigger]:
        """Materialize the next round: every not-yet-fired trigger whose
        body match involves a frontier fact, in deterministic discovery
        order (rule-major, then pivot position, then fact insertion
        order).  Returned triggers are marked fired.  An empty list
        means fixpoint — no frontier, or nothing new matched it."""
        frontier = self._frontier
        if not frontier:
            return []
        self._frontier = []
        scheduler = self._scheduler
        if scheduler is None:
            discovered: Iterable[Trigger] = delta_triggers(
                self.rules, self.instance, frontier
            )
        else:
            discovered = scheduled_delta_triggers(
                scheduler, self.rules, self.instance, frontier,
                state=self.ship_log()
                if scheduler.kind == "process" else None,
            )
        fired = self.fired
        out: List[Trigger] = []
        new_keys: List[Hashable] = []
        budget = self.budget
        check_every = self.BUDGET_CHECK_EVERY
        # Countdown instead of a modulo per trigger: the governed arm
        # pays one decrement-and-test per discovery, which is what
        # keeps the fault_recovery bench gate honest.
        check_in = check_every if budget is not None else -1
        variant = self._variant
        try:
            if variant is not None:
                semi = variant == ChaseVariant.SEMI_OBLIVIOUS
                for trigger in discovered:
                    check_in -= 1
                    if not check_in:
                        check_in = check_every
                        budget.raise_if_exceeded(
                            facts=len(self.instance)
                        )
                    ids = trigger._ids
                    if ids is None:
                        k: Hashable = trigger.key(variant)
                    elif semi:
                        get = trigger.rule._frontier_get
                        k = (
                            trigger.rule_index,
                            ids if get is None else get(ids),
                        )
                    else:
                        k = (trigger.rule_index, ids)
                    if k in fired:
                        continue
                    fired.add(k)
                    new_keys.append(k)
                    out.append(trigger)
            else:
                key = self._key
                for trigger in discovered:
                    check_in -= 1
                    if not check_in:
                        check_in = check_every
                        budget.raise_if_exceeded(
                            facts=len(self.instance)
                        )
                    k = key(trigger)
                    if k in fired:
                        continue
                    fired.add(k)
                    new_keys.append(k)
                    out.append(trigger)
        except BudgetExceededError:
            # An aborted pass hands out nothing, so un-mark its keys
            # and restore the frontier: discovery is a pure read, and
            # a resumed run must re-discover this round identically.
            for k in new_keys:
                fired.discard(k)
            self._frontier = frontier
            raise
        log = self.fired_log
        if log is not None:
            log.extend(new_keys)
        return out

    def head_probes(self, triggers: Sequence[Trigger]) -> Optional[List[bool]]:
        """Round-start head-satisfaction probes for a materialized
        restricted round, evaluated through the engine's scheduler.

        Returns one bool per trigger — True when the trigger's head is
        already satisfied by the *round-start* instance (such triggers
        will certainly be skipped; satisfaction is monotone) — or
        ``None`` when no batched scheduler is attached (callers then
        probe serially as before).  Read-only with respect to the
        instance.
        """
        scheduler = self._scheduler
        if scheduler is None or not triggers:
            return None
        return scheduled_head_probes(
            scheduler, self.rules, self.instance, triggers,
            state=self.ship_log()
            if scheduler.kind == "process" else None,
        )
