"""Round-batched execution — pluggable executors for chase rounds.

PR 2 made every round a materialized, well-defined work list: triggers
are discovered against the round-start instance and only then applied.
This module exploits exactly that invariant.  A round's discovery work
factors into independent **batches** — one per ``(rule, pivot)`` pair
(optionally sharded further over the pivot's candidate facts) — each of
which only *reads* the round-start instance.  Batches can therefore be
evaluated by any executor, and a deterministic merge (concatenation in
canonical batch order, then the engine's serial fired-key dedup and
firing pass) reproduces the serial engine's trigger stream **exactly**:
same triggers, same order, same trigger keys, same Skolem-term and
null numbering, byte-identical :class:`~repro.chase.result.ChaseResult`
instances.

Three executors are provided (:data:`SCHEDULER_KINDS`):

* ``serial`` — the default; batches are evaluated inline in canonical
  order.  Byte-identical to the pre-scheduler engine by construction
  (it *is* the same loop).
* ``threaded`` — a shared-memory worker pool over batches.  Workers run
  resolved int-level join execs against the shared round-start
  instance; the GIL serializes pure-Python joins, so this helps when
  per-batch work releases the GIL and otherwise stays near 1×, but it
  is the determinism-preserving harness the ``process`` executor plugs
  into.
* ``process`` — a ``spawn``-context process pool for CPU-bound runs
  (the MFA Skolem saturation being the motivating workload).

**Delta-only shipping.**  With the interned fact core, a ``process``
round no longer pickles the round-start instance.  Each worker keeps a
*mirror* of the run's fact log — raw int rows, no Term objects at all —
and the parent ships, per round:

* the log **tail** the most-behind known worker is missing, as flat
  ``array('q')`` int arrays (predicate ids + concatenated rows);
* the candidate facts of each batch as log *ordinals* (plain ints); and
* once per run (piggybacked on the first full ship), the rules plus the
  only symbol-table diff workers ever need: the rule constants and
  predicates with their parent-assigned ids.  Mirrors seal their
  symbol tables, so a worker can never mint an id colliding with a
  parent id.

Discovered triggers return as ``(rule_index, id-tuple)`` wire rows —
pure ints, aligned with the rule's sorted body variables.  A worker
whose mirror is older than the shipped tail (a fresh pool member, or a
mirror evicted by the LRU cap) answers *resync*; the parent evaluates
that chunk locally this round and ships the full log next round, so
correctness never depends on which worker the pool picked.  All of
this is invisible to ordering: the merge is still concatenation in
canonical batch order.

The executors never see the fired-key set and never mutate the
instance; ordering and mutation stay with the caller
(:class:`~repro.chase.delta.DeltaEngine` and the engines built on it).
"""

from __future__ import annotations

import itertools
import os
from array import array
from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from ..model import Atom, Instance, Predicate, TGD, Term, Variable, atom_step, plan_for
from ..model.symbols import SymbolTable
from ..runtime import faults as _faults
from .triggers import Trigger, head_satisfied, rule_exec

T = TypeVar("T")
R = TypeVar("R")

SCHEDULER_KINDS = ("serial", "threaded", "process")
"""The pluggable round executors, in increasing isolation order."""

#: One object-level discovery batch:
#: ``(rule_index, pivot_position, candidate_facts)``.
DiscoveryBatch = Tuple[int, int, Tuple[Atom, ...]]

#: One interned-form discovery batch:
#: ``(rule_index, pivot_position, candidate_fact_ordinals)``.
OrdinalBatch = Tuple[int, int, Tuple[int, ...]]

#: A trigger in wire form: ``(rule_index, term-id tuple)`` with ids
#: aligned to ``rule.body_variables_sorted``.
WireTrigger = Tuple[int, Tuple[int, ...]]


class RoundScheduler:
    """A pluggable executor for round-batched work.

    ``kind`` selects the executor (:data:`SCHEDULER_KINDS`); ``workers``
    bounds the pool size (default: the machine's CPU count); and
    ``shard_size``, when set, additionally splits each ``(rule, pivot)``
    discovery batch into contiguous candidate-fact shards of at most
    that many facts, for load balance on skewed frontiers.

    Pools are created lazily on first use and reused across rounds (and
    across runs, when the caller passes one scheduler to several
    engines — the recommended way to amortize ``process`` spawn cost;
    warm mirrors then also keep shipping delta-only across runs' rounds).
    Schedulers are context managers; :meth:`close` shuts the pools
    down.  The ``serial`` kind never allocates a pool.

    ``ship_stats`` holds the most recent run's delta-shipping counters
    (rows shipped, full syncs, resyncs) for benchmarks and diagnostics.

    **Fault tolerance.**  A ``process`` round survives worker death
    (OOM kill, segfault, ``os._exit``): when the pool breaks mid-map,
    the scheduler discards it, backs off briefly, respawns a fresh
    pool, and retries the round's tasks — fresh workers hold no
    mirrors, so they answer *resync* and the existing stale-mirror
    fallback restores correctness with no extra machinery.  If the
    respawned pool breaks too, the scheduler **degrades**: ``degraded``
    flips True, the failed tasks (and every later process round) run
    inline in the parent — the serial executor's exact code path — and
    the run completes with a byte-identical result.  ``fault_stats``
    counts pool failures, retries, and the degradation, and is folded
    into ``ship_stats`` and :class:`~repro.chase.result.ChaseResult`
    resource stats.
    """

    __slots__ = ("kind", "workers", "shard_size", "ship_stats",
                 "fault_stats", "degraded", "_threads", "_processes")

    #: How many fresh pools a round may spawn after a failure before
    #: degrading to inline execution.
    MAX_RESPAWNS = 1
    #: Base backoff before retrying on a respawned pool (doubles per
    #: respawn; bounded because MAX_RESPAWNS is).
    RETRY_BACKOFF_S = 0.05

    def __init__(
        self,
        kind: str = "serial",
        workers: Optional[int] = None,
        shard_size: Optional[int] = None,
    ):
        if kind not in SCHEDULER_KINDS:
            raise ValueError(
                f"unknown scheduler kind {kind!r}; "
                f"expected one of {SCHEDULER_KINDS}"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if shard_size is not None and shard_size < 1:
            raise ValueError(
                f"shard_size must be positive, got {shard_size}"
            )
        self.kind = kind
        self.workers = workers or (os.cpu_count() or 1)
        self.shard_size = shard_size
        self.ship_stats: Dict[str, int] = {}
        self.fault_stats: Dict[str, int] = {
            "pool_failures": 0,
            "pool_respawns": 0,
            "degraded": 0,
        }
        self.degraded = False
        self._threads = None
        self._processes = None

    # -- executor plumbing -------------------------------------------------

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every task; results in task order.

        Under ``process``, ``fn`` must be a module-level function and
        every task picklable.  Under ``serial`` this is an inline loop;
        so is a single ``threaded`` task (spawning a thread for one
        task buys nothing).  A single ``process`` task still goes to
        the pool — the worker-side mirror must see every round's tail,
        and local evaluation would starve it.
        """
        if self.kind == "serial" or not tasks:
            return [fn(task) for task in tasks]
        if self.kind == "threaded":
            if len(tasks) == 1:
                return [fn(tasks[0])]
            return list(self._thread_pool().map(fn, tasks))
        return self._process_map(fn, tasks)

    def _process_map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """The fault-tolerant ``process`` dispatch (see the class
        docstring): pool map, respawn-and-retry on worker death, inline
        degradation on repeated failure.

        Retrying a whole task list is safe because discovery/probe
        tasks are pure reads of the round-start state — re-evaluating a
        batch yields the same wire rows — and mirror sync is
        idempotent (a fresh worker answers resync; the parent covers
        its chunk locally, exactly as for an LRU-evicted mirror).
        """
        if self.degraded:
            return [fn(task) for task in tasks]
        import time

        from concurrent.futures.process import BrokenProcessPool

        respawns = 0
        while True:
            try:
                return list(self._process_pool().map(fn, tasks))
            except (BrokenProcessPool, OSError, EOFError):
                self.fault_stats["pool_failures"] += 1
                self._discard_broken_pool()
                if respawns >= self.MAX_RESPAWNS:
                    self.degraded = True
                    self.fault_stats["degraded"] = 1
                    self.ship_stats.update(self.fault_stats)
                    return [fn(task) for task in tasks]
                respawns += 1
                self.fault_stats["pool_respawns"] += 1
                self.ship_stats.update(self.fault_stats)
                time.sleep(self.RETRY_BACKOFF_S * respawns)

    def _discard_broken_pool(self) -> None:
        pool, self._processes = self._processes, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                # A broken pool may refuse even shutdown; it holds no
                # live workers at this point, so dropping it is safe.
                pass

    def _thread_pool(self):
        if self._threads is None:
            from concurrent.futures import ThreadPoolExecutor

            self._threads = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="chase-round",
            )
        return self._threads

    def _process_pool(self):
        if self._processes is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            # spawn, not fork: fork would duplicate the parent's lock
            # and intern-table state mid-flight, and spawn is the one
            # start method that behaves identically on every platform —
            # it is also what the pickling protocol is tested against.
            self._processes = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
        return self._processes

    def close(self) -> None:
        """Shut down any pools this scheduler created."""
        if self._threads is not None:
            self._threads.shutdown(wait=True)
            self._threads = None
        if self._processes is not None:
            self._processes.shutdown(wait=True)
            self._processes = None

    def __enter__(self) -> "RoundScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"RoundScheduler({self.kind!r}, workers={self.workers}, "
            f"shard_size={self.shard_size})"
        )


SchedulerSpec = Union[None, str, RoundScheduler]


def resolve_scheduler(
    scheduler: SchedulerSpec,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
) -> Tuple[RoundScheduler, bool]:
    """Normalize a user-facing ``scheduler=`` knob.

    Accepts ``None``, a kind name, or a ready
    :class:`RoundScheduler`.  ``None`` means serial — unless
    ``workers`` is given, which alone selects the ``threaded``
    executor (asking for workers and silently running serial would be
    a trap; the CLI's ``--workers`` has the same semantics).  Returns
    ``(scheduler, owned)`` where ``owned`` tells the caller whether it
    created — and must close — the scheduler; a caller-supplied
    instance is never closed, so one pool can serve many runs.
    """
    if isinstance(scheduler, RoundScheduler):
        return scheduler, False
    if scheduler is None:
        scheduler = "threaded" if workers else "serial"
    return RoundScheduler(scheduler, workers, shard_size), True


# -- discovery batching ----------------------------------------------------


def discovery_batches(
    rules: Sequence[TGD],
    new_facts: Sequence[Atom],
    shard_size: Optional[int] = None,
) -> List[DiscoveryBatch]:
    """Partition one round's discovery work list into object-level
    batches (the public, Atom-carrying form).

    One batch per ``(rule, pivot)`` pair with a non-empty candidate
    list, in the serial engine's canonical order (rule-major, then
    pivot position, then fact arrival order); with ``shard_size`` each
    batch is further split into contiguous candidate shards.
    Concatenating the batches' trigger outputs in batch order therefore
    reproduces the serial discovery stream exactly.
    """
    new_by_predicate: Dict[Predicate, List[Atom]] = {}
    for fact in new_facts:
        new_by_predicate.setdefault(fact.predicate, []).append(fact)
    batches: List[DiscoveryBatch] = []
    for rule_index, rule in enumerate(rules):
        for pivot, pivot_atom in enumerate(rule.body):
            candidates = new_by_predicate.get(pivot_atom.predicate)
            if not candidates:
                continue
            if shard_size is None or len(candidates) <= shard_size:
                batches.append((rule_index, pivot, tuple(candidates)))
                continue
            for start in range(0, len(candidates), shard_size):
                batches.append(
                    (
                        rule_index,
                        pivot,
                        tuple(candidates[start:start + shard_size]),
                    )
                )
    return batches


def _ordinal_batches(
    rules: Sequence[TGD],
    instance: Instance,
    ordinals: Sequence[int],
    shard_size: Optional[int] = None,
) -> List[OrdinalBatch]:
    """The interned-form analogue of :func:`discovery_batches`: the
    frontier is a list of fact ordinals and candidates are grouped by
    predicate *id*, in the same canonical order."""
    store = instance.store
    store.ensure_all()
    log_pids = store.log_pids
    by_pid: Dict[int, List[int]] = {}
    for ordinal in ordinals:
        pid = log_pids[ordinal]
        group = by_pid.get(pid)
        if group is None:
            by_pid[pid] = [ordinal]
        else:
            group.append(ordinal)
    batches: List[OrdinalBatch] = []
    for rule_index, rule in enumerate(rules):
        for pivot, pivot_atom in enumerate(rule.body):
            pid = instance.pred_id_get(pivot_atom.predicate)
            candidates = by_pid.get(pid) if pid is not None else None
            if not candidates:
                continue
            if shard_size is None or len(candidates) <= shard_size:
                batches.append((rule_index, pivot, tuple(candidates)))
                continue
            for start in range(0, len(candidates), shard_size):
                batches.append(
                    (
                        rule_index,
                        pivot,
                        tuple(candidates[start:start + shard_size]),
                    )
                )
    return batches


def evaluate_batch(
    rules: Sequence[TGD],
    instance: Instance,
    batch: DiscoveryBatch,
) -> List[Trigger]:
    """Evaluate one object-level discovery batch against the
    round-start instance (the public form; the engines run
    :func:`evaluate_ordinal_batch`).

    Pure with respect to the instance: the pivot's bindings seed the
    rest-of-body compiled join plan exactly as
    :func:`repro.chase.delta.delta_triggers` does, and triggers come
    out in the serial engine's per-batch order.  Safe to run
    concurrently with other batches of the same round.
    """
    rule_index, pivot, candidates = batch
    rule = rules[rule_index]
    pivot_step = atom_step(rule.body[pivot])
    pivot_vars = pivot_step.variables()
    rest = [a for i, a in enumerate(rule.body) if i != pivot]
    plan = plan_for(rest, instance, pivot_vars) if rest else None
    out: List[Trigger] = []
    for fact in candidates:
        partial: Dict[Variable, Term] = {}
        if pivot_step.try_match(fact, partial) is None:
            continue
        if plan is None:
            out.append(Trigger(rule, rule_index, partial))
            continue
        for assignment in plan.run(instance, partial):
            out.append(Trigger(rule, rule_index, assignment))
    return out


def evaluate_ordinal_batch(
    rules: Sequence[TGD],
    instance: Instance,
    batch: OrdinalBatch,
) -> List[WireTrigger]:
    """Evaluate one interned-form batch: candidate ordinals through the
    resolved pivot-seeded exec, wire triggers out.  Runs identically on
    the parent instance and on a worker mirror (same ids by
    construction), and is safe to run concurrently with other batches
    of the same round."""
    rule_index, pivot, candidates = batch
    rule = rules[rule_index]
    exec_ = rule_exec(instance, rule, pivot)
    pivot_step = exec_.pivot_step
    rest = exec_.rest
    emit = exec_.emit
    assign: List[Optional[int]] = [None] * exec_.nslots
    log_rows = instance.store.log_rows
    out: List[WireTrigger] = []
    for ordinal in candidates:
        row = log_rows[ordinal]
        newly = pivot_step.match(row, assign)
        if newly is None:
            continue
        if rest is None:
            out.append((rule_index, emit(assign)))
        else:
            for match in rest.run(instance, assign):
                out.append((rule_index, emit(match)))
        for s in newly:
            assign[s] = None
    return out


# -- delta-only shipping (parent side) -------------------------------------

_RESYNC = "resync"
_token_counter = itertools.count(1)


class ShipLog:
    """Parent-side shipping state for one engine run.

    Tracks, per known worker pid, the mirror version (fact-log length)
    that worker has confirmed, so each round ships only the tail the
    most-behind known worker is missing.  An unknown worker (fresh pool
    member, LRU-evicted mirror) answers *resync*: its chunk is
    evaluated locally this round and the next round ships from zero.
    """

    __slots__ = ("token", "rules", "worker_versions", "stats",
                 "store_ref", "_init_payload")

    def __init__(self, rules: Sequence[TGD],
                 store_ref: Optional[Tuple[str, int]] = None):
        self.token = (os.getpid(), next(_token_counter))
        self.rules = list(rules)
        self.worker_versions: Dict[int, int] = {}
        self.stats: Dict[str, int] = {
            "rounds": 0,
            "rows_shipped": 0,
            "full_ships": 0,
            "resyncs": 0,
            "wire_triggers": 0,
            # What the pre-delta protocol would have pickled: the whole
            # round-start instance, (at least) once per round.
            "rows_old_protocol": 0,
        }
        # ``(path, facts_at_flush)`` of a durable store holding a
        # committed prefix of the run's instance (checkpointed or
        # resumed runs).  Workers hydrate their mirror from the store
        # instead of receiving the prefix over the wire; shipping
        # starts at the flush watermark rather than zero.
        self.store_ref = store_ref
        if store_ref is not None:
            self.stats["store_base"] = store_ref[1]
        self._init_payload = None

    def note(self, pid: int, version: Optional[int]) -> None:
        if version is None:
            self.worker_versions[pid] = 0
            self.stats["resyncs"] += 1
        else:
            self.worker_versions[pid] = version

    def ship_from(self) -> int:
        """The log position shipping must start from: the most-behind
        known worker's version (with no worker known yet, the durable
        store's flush watermark when one is attached — fresh mirrors
        hydrate that prefix from disk — else 0)."""
        versions = self.worker_versions
        if versions:
            return min(versions.values())
        return self.store_ref[1] if self.store_ref is not None else 0

    def init_payload(self, instance: Instance):
        """The once-per-run symbol diff: rules, rule constants and
        predicates with their parent ids, plus the parent instance's
        join-order policy (mirrors must plan rest-of-body joins exactly
        as the parent does, or within-batch trigger order — and with it
        null numbering — would diverge from the serial run).  Shipped
        whenever the tail starts at zero (a worker may be rebuilding
        from scratch).

        Predicates cover the rules *and* every predicate the instance
        knows at first ship — the database may hold relations no rule
        mentions, and mirrors need their arities to split the flat row
        arrays.  (No predicate can appear later: engines only ever add
        rule-head facts.)
        """
        if self._init_payload is None:
            const_pairs: List[Tuple[Term, int]] = []
            seen_terms = set()
            pred_pairs: List[Tuple[Predicate, int]] = []
            seen_preds = set()
            for rule in self.rules:
                for atom in rule.body + rule.head:
                    pred = atom.predicate
                    if pred not in seen_preds:
                        seen_preds.add(pred)
                        pred_pairs.append((pred, instance.pred_id(pred)))
                    for term in atom.terms:
                        if isinstance(term, Variable):
                            continue
                        if term not in seen_terms:
                            seen_terms.add(term)
                            const_pairs.append(
                                (term, instance.term_id(term))
                            )
            for pred, pid in list(instance.store.pred_ids.items()):
                if pred not in seen_preds:
                    seen_preds.add(pred)
                    pred_pairs.append((pred, pid))
            self._init_payload = (
                tuple(self.rules), tuple(const_pairs), tuple(pred_pairs),
                instance.order_policy, self.store_ref,
            )
        return self._init_payload

    def build_tail(self, instance: Instance, base: int,
                   count_round: bool = True):
        """``(start, pred-id array, flat row array, init-or-None)``
        covering log positions ``[start, base)``.

        ``count_round=False`` (the head-probe pass, which reuses the
        same round's sync point) still counts the rows it actually
        ships but not the per-round counters — otherwise restricted
        process runs would double-book ``rounds`` and the
        old-protocol comparison column.
        """
        start = self.ship_from()
        store = instance.store
        pids = array("q", store.log_pids[start:base])
        flat = array("q")
        rows = store.log_rows
        for ordinal in range(start, base):
            flat.extend(rows[ordinal])
        # With a store ref the init payload rides along on every tail
        # (it is tiny): a fresh worker can then hydrate from disk and
        # join mid-run without ever seeing a zero-based tail.
        init = (
            self.init_payload(instance)
            if start == 0 or self.store_ref is not None else None
        )
        self.stats["rows_shipped"] += base - start
        if count_round:
            self.stats["rounds"] += 1
            self.stats["rows_old_protocol"] += base
        if start == 0:
            self.stats["full_ships"] += 1
        return (start, pids, flat, init)


# -- worker-side mirrors ---------------------------------------------------

_MIRROR_CAP = 4
_MIRRORS: "OrderedDict[Tuple[int, int], _Mirror]" = OrderedDict()


class _Mirror:
    """A worker's replica of one run's fact log — raw int rows keyed by
    parent ids; the sealed symbol table holds only the rule constants."""

    __slots__ = ("instance", "version", "rules", "arity")

    def __init__(self, rules, const_pairs, pred_pairs, order_policy,
                 store_ref=None):
        if store_ref is not None:
            # Hydrate the committed prefix from the durable store: the
            # full parent symbol table comes along for free (sealed so
            # fresh allocations can never shadow parent ids), and only
            # the post-flush tail ever crosses the wire.
            from ..storage.durable import open_store

            path, _watermark = store_ref
            store = open_store(path)
            store.ensure_all()
            store.symbols.seal()
            self.instance = Instance(store=store)
            # Validate the shipped rule-constant ids against the
            # persisted table (prime is idempotent, conflicts raise).
            for term, tid in const_pairs:
                store.symbols.prime(term, tid)
            self.version = store.size()
        else:
            self.instance = Instance(
                symbols=SymbolTable(const_pairs, sealed=True)
            )
            self.version = 0
        # Mirrors must order joins exactly as the parent does — the
        # policy ships with the init payload.
        self.instance.order_policy = order_policy
        for pred, pid in pred_pairs:
            self.instance.prime_predicate(pred, pid)
        self.rules = list(rules)
        self.arity = {pid: pred.arity for pred, pid in pred_pairs}


def _sync_mirror(token, base, tail) -> Optional[_Mirror]:
    """Fetch-or-build the mirror for ``token`` and roll it forward to
    ``base`` using the shipped tail.  Returns ``None`` (resync) when
    the tail starts past the mirror's version."""
    start, pids, flat, init = tail
    mirror = _MIRRORS.get(token)
    if mirror is None:
        if init is None:
            return None
        store_ref = init[4]
        if start != 0 and store_ref is None:
            return None
        try:
            mirror = _Mirror(*init)
        except Exception:
            if store_ref is None:
                raise
            # A store ref that no longer opens (moved, torn mid-write)
            # degrades to a resync — the parent evaluates this chunk
            # locally — instead of failing the round.
            return None
        _MIRRORS[token] = mirror
        while len(_MIRRORS) > _MIRROR_CAP:
            _MIRRORS.popitem(last=False)
    _MIRRORS.move_to_end(token)
    if mirror.version < start or mirror.version > base:
        return None
    add_row = mirror.instance.add_row
    arity = mirror.arity
    offset = 0
    position = start
    skip_until = mirror.version
    for pid in pids:
        k = arity[pid]
        if position >= skip_until:
            add_row(pid, tuple(flat[offset:offset + k]))
        offset += k
        position += 1
    mirror.version = base
    return mirror


def _process_discover(task):
    """Worker entry point: sync the mirror, evaluate a chunk of
    interned-form batches, return wire triggers in canonical order.
    Module-level for picklability."""
    _faults.batch_hook()
    token, base, tail, chunk = task
    pid = os.getpid()
    mirror = _sync_mirror(token, base, tail)
    if mirror is None:
        return (pid, None, _RESYNC)
    out: List[WireTrigger] = []
    for batch in chunk:
        out.extend(evaluate_ordinal_batch(mirror.rules, mirror.instance,
                                          batch))
    return (pid, mirror.version, out)


def _process_probe(task):
    """Worker entry point: sync the mirror, answer head-satisfaction
    probes (``(rule_index, id-tuple)`` rows) against the round-start
    mirror."""
    _faults.batch_hook()
    token, base, tail, probes = task
    pid = os.getpid()
    mirror = _sync_mirror(token, base, tail)
    if mirror is None:
        return (pid, None, _RESYNC)
    rules = mirror.rules
    instance = mirror.instance
    out = [
        head_satisfied(
            Trigger.from_ids(rules[rule_index], rule_index, ids, instance),
            instance,
        )
        for rule_index, ids in probes
    ]
    return (pid, mirror.version, out)


def _chunk(items: List[T], chunks: int) -> List[List[T]]:
    """Split into at most ``chunks`` contiguous, order-preserving runs
    of near-equal length."""
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    out: List[List[T]] = []
    start = 0
    for i in range(chunks):
        stop = start + size + (1 if i < extra else 0)
        out.append(items[start:stop])
        start = stop
    return out


# -- scheduled rounds ------------------------------------------------------


def scheduled_delta_triggers(
    scheduler: RoundScheduler,
    rules: Sequence[TGD],
    instance: Instance,
    new_facts: Sequence,
    state: Optional[ShipLog] = None,
) -> Iterable[Trigger]:
    """One scheduled discovery pass — the batched equivalent of
    :func:`repro.chase.delta.delta_triggers`.

    Partitions the round into batches, runs them through the
    scheduler's executor, and merges the outputs in canonical batch
    order, so the produced trigger stream (and hence everything
    downstream: fired keys, firing order, null/Skolem numbering) is
    identical to the serial engine's.  May repeat a trigger across
    pivots exactly as the serial pass does; the caller's fired-key set
    deduplicates.

    ``new_facts`` are fact ordinals (the engines' form) or Atoms; the
    ``process`` executor requires in-instance facts and takes its
    delta-shipping state from ``state`` (a fresh, full-shipping
    :class:`ShipLog` is created when omitted).
    """
    ordinals: List[int] = []
    for fact in new_facts:
        if type(fact) is int:
            ordinals.append(fact)
        else:
            ordinal = instance.ordinal_of(fact)
            if ordinal is None:
                # Out-of-instance frontier facts (public API only)
                # cannot be named by log ordinals, so this round runs
                # through the unbatched int-form discovery loop — the
                # trigger stream, and crucially the interned *key*
                # encoding, stay identical to every other round (an
                # object-form fallback here would re-key — and hence
                # re-fire — triggers the engine already fired).
                from .delta import delta_triggers

                yield from delta_triggers(rules, instance, list(new_facts))
                return
            ordinals.append(ordinal)
    batches = _ordinal_batches(rules, instance, ordinals,
                               scheduler.shard_size)
    if not batches:
        return
    rule_list = list(rules)
    # A degraded scheduler (repeated pool failure this run) evaluates
    # rounds inline against the real instance — the serial executor's
    # exact path — instead of building tails for a pool it no longer
    # trusts.
    if scheduler.kind == "process" and not scheduler.degraded:
        if state is None:
            state = ShipLog(rule_list)
        base = len(instance)
        tail = state.build_tail(instance, base)
        scheduler.ship_stats = state.stats
        chunks = _chunk(batches, scheduler.workers)
        tasks = [(state.token, base, tail, chunk) for chunk in chunks]
        results = scheduler.map(_process_discover, tasks)
        for chunk, (worker_pid, version, wire) in zip(chunks, results):
            state.note(worker_pid, version)
            if wire == _RESYNC:
                wire = []
                for batch in chunk:
                    wire.extend(
                        evaluate_ordinal_batch(rule_list, instance, batch)
                    )
            state.stats["wire_triggers"] += len(wire)
            for rule_index, ids in wire:
                yield Trigger.from_ids(
                    rule_list[rule_index], rule_index, ids, instance
                )
        return
    for wire in scheduler.map(
        lambda batch: evaluate_ordinal_batch(rule_list, instance, batch),
        batches,
    ):
        for rule_index, ids in wire:
            yield Trigger.from_ids(
                rule_list[rule_index], rule_index, ids, instance
            )


def scheduled_head_probes(
    scheduler: RoundScheduler,
    rules: Sequence[TGD],
    instance: Instance,
    triggers: Sequence[Trigger],
    state: Optional[ShipLog] = None,
) -> List[bool]:
    """Head-satisfaction probes for a materialized restricted round,
    evaluated against the **round-start** instance through the
    scheduler's executor (the batched *apply* half of restricted
    rounds).

    Satisfaction is monotone — instances only grow — so a trigger
    probing True here is skipped for certain, and a trigger probing
    False is re-checked serially against the current instance at its
    canonical turn; the firing sequence is therefore byte-identical to
    the serial engine's.  Probes are read-only: safe to batch exactly
    like discovery, and shipped to ``process`` workers as pure-int
    ``(rule_index, id-tuple)`` rows against their existing mirrors.
    """
    if scheduler.kind == "process" and not scheduler.degraded:
        if state is None:
            state = ShipLog(list(rules))
        wire = [
            (trigger.rule_index, trigger.ids(instance))
            for trigger in triggers
        ]
        base = len(instance)
        tail = state.build_tail(instance, base, count_round=False)
        scheduler.ship_stats = state.stats
        chunks = _chunk(wire, scheduler.workers)
        tasks = [(state.token, base, tail, chunk) for chunk in chunks]
        results = scheduler.map(_process_probe, tasks)
        out: List[bool] = []
        offset = 0
        for chunk, (worker_pid, version, answers) in zip(chunks, results):
            state.note(worker_pid, version)
            if answers == _RESYNC:
                answers = [
                    head_satisfied(triggers[offset + i], instance)
                    for i in range(len(chunk))
                ]
            out.extend(answers)
            offset += len(chunk)
        return out
    chunks = _chunk(list(triggers), scheduler.workers)
    out = []
    for answers in scheduler.map(
        lambda chunk: [head_satisfied(t, instance) for t in chunk],
        chunks,
    ):
        out.extend(answers)
    return out
