"""Round-batched execution — pluggable executors for chase rounds.

PR 2 made every round a materialized, well-defined work list: triggers
are discovered against the round-start instance and only then applied.
This module exploits exactly that invariant.  A round's discovery work
factors into independent **batches** — one per ``(rule, pivot)`` pair
(optionally sharded further over the pivot's candidate facts) — each of
which only *reads* the round-start instance.  Batches can therefore be
evaluated by any executor, and a deterministic merge (concatenation in
canonical batch order, then the engine's serial fired-key dedup and
firing pass) reproduces the serial engine's trigger stream **exactly**:
same triggers, same order, same trigger keys, same Skolem-term and
null numbering, byte-identical :class:`~repro.chase.result.ChaseResult`
instances.

Three executors are provided (:data:`SCHEDULER_KINDS`):

* ``serial`` — the default; batches are evaluated inline in canonical
  order.  Byte-identical to the pre-scheduler engine by construction
  (it *is* the same loop).
* ``threaded`` — a shared-memory worker pool over batches.  Workers run
  compiled join plans against the shared round-start instance; the GIL
  serializes pure-Python joins, so this helps when per-batch work
  releases the GIL and otherwise stays near 1×, but it is the
  determinism-preserving harness the ``process`` executor plugs into.
* ``process`` — a ``spawn``-context process pool for CPU-bound runs
  (the MFA Skolem saturation being the motivating workload).  Batch
  descriptors are fully picklable: the round-start instance ships as
  its fact tuple (indexes are rebuilt worker-side), rules rebuild
  through ``TGD.__reduce__``, and discovered assignments return as
  ``(variable, term)`` pairs — all routed through the constructor-based
  ``__reduce__`` protocol of :mod:`repro.model.terms`, which recomputes
  cached hashes under the worker's hash randomization and interns
  constants/variables/predicates on arrival.

The executors never see the fired-key set and never mutate the
instance; ordering and mutation stay with the caller
(:class:`~repro.chase.delta.DeltaEngine` and the engines built on it).
"""

from __future__ import annotations

import os
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from ..model import Atom, Instance, Predicate, TGD, Term, Variable, atom_step, plan_for
from .triggers import Trigger

T = TypeVar("T")
R = TypeVar("R")

SCHEDULER_KINDS = ("serial", "threaded", "process")
"""The pluggable round executors, in increasing isolation order."""

#: One discovery batch: ``(rule_index, pivot_position, candidate_facts)``.
DiscoveryBatch = Tuple[int, int, Tuple[Atom, ...]]

#: A trigger in wire form: ``(rule_index, ((var, term), ...))``.
WireTrigger = Tuple[int, Tuple[Tuple[Variable, Term], ...]]


class RoundScheduler:
    """A pluggable executor for round-batched work.

    ``kind`` selects the executor (:data:`SCHEDULER_KINDS`); ``workers``
    bounds the pool size (default: the machine's CPU count); and
    ``shard_size``, when set, additionally splits each ``(rule, pivot)``
    discovery batch into contiguous candidate-fact shards of at most
    that many facts, for load balance on skewed frontiers.

    Pools are created lazily on first use and reused across rounds (and
    across runs, when the caller passes one scheduler to several
    engines — the recommended way to amortize ``process`` spawn cost).
    Schedulers are context managers; :meth:`close` shuts the pools
    down.  The ``serial`` kind never allocates a pool.
    """

    __slots__ = ("kind", "workers", "shard_size", "_threads", "_processes")

    def __init__(
        self,
        kind: str = "serial",
        workers: Optional[int] = None,
        shard_size: Optional[int] = None,
    ):
        if kind not in SCHEDULER_KINDS:
            raise ValueError(
                f"unknown scheduler kind {kind!r}; "
                f"expected one of {SCHEDULER_KINDS}"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if shard_size is not None and shard_size < 1:
            raise ValueError(
                f"shard_size must be positive, got {shard_size}"
            )
        self.kind = kind
        self.workers = workers or (os.cpu_count() or 1)
        self.shard_size = shard_size
        self._threads = None
        self._processes = None

    # -- executor plumbing -------------------------------------------------

    def map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every task; results in task order.

        Under ``process``, ``fn`` must be a module-level function and
        every task picklable.  Under ``serial`` (or when there is at
        most one task) this is an inline loop.
        """
        if self.kind == "serial" or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        if self.kind == "threaded":
            return list(self._thread_pool().map(fn, tasks))
        return list(self._process_pool().map(fn, tasks))

    def _thread_pool(self):
        if self._threads is None:
            from concurrent.futures import ThreadPoolExecutor

            self._threads = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="chase-round",
            )
        return self._threads

    def _process_pool(self):
        if self._processes is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            # spawn, not fork: fork would duplicate the parent's lock
            # and intern-table state mid-flight, and spawn is the one
            # start method that behaves identically on every platform —
            # it is also what the pickling protocol is tested against.
            self._processes = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
        return self._processes

    def close(self) -> None:
        """Shut down any pools this scheduler created."""
        if self._threads is not None:
            self._threads.shutdown(wait=True)
            self._threads = None
        if self._processes is not None:
            self._processes.shutdown(wait=True)
            self._processes = None

    def __enter__(self) -> "RoundScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"RoundScheduler({self.kind!r}, workers={self.workers}, "
            f"shard_size={self.shard_size})"
        )


SchedulerSpec = Union[None, str, RoundScheduler]


def resolve_scheduler(
    scheduler: SchedulerSpec,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
) -> Tuple[RoundScheduler, bool]:
    """Normalize a user-facing ``scheduler=`` knob.

    Accepts ``None``, a kind name, or a ready
    :class:`RoundScheduler`.  ``None`` means serial — unless
    ``workers`` is given, which alone selects the ``threaded``
    executor (asking for workers and silently running serial would be
    a trap; the CLI's ``--workers`` has the same semantics).  Returns
    ``(scheduler, owned)`` where ``owned`` tells the caller whether it
    created — and must close — the scheduler; a caller-supplied
    instance is never closed, so one pool can serve many runs.
    """
    if isinstance(scheduler, RoundScheduler):
        return scheduler, False
    if scheduler is None:
        scheduler = "threaded" if workers else "serial"
    return RoundScheduler(scheduler, workers, shard_size), True


# -- discovery batching ----------------------------------------------------


def discovery_batches(
    rules: Sequence[TGD],
    new_facts: Sequence[Atom],
    shard_size: Optional[int] = None,
) -> List[DiscoveryBatch]:
    """Partition one round's discovery work list into batches.

    One batch per ``(rule, pivot)`` pair with a non-empty candidate
    list, in the serial engine's canonical order (rule-major, then
    pivot position, then fact arrival order); with ``shard_size`` each
    batch is further split into contiguous candidate shards.
    Concatenating the batches' trigger outputs in batch order therefore
    reproduces the serial discovery stream exactly.
    """
    new_by_predicate: Dict[Predicate, List[Atom]] = {}
    for fact in new_facts:
        new_by_predicate.setdefault(fact.predicate, []).append(fact)
    batches: List[DiscoveryBatch] = []
    for rule_index, rule in enumerate(rules):
        for pivot, pivot_atom in enumerate(rule.body):
            candidates = new_by_predicate.get(pivot_atom.predicate)
            if not candidates:
                continue
            if shard_size is None or len(candidates) <= shard_size:
                batches.append((rule_index, pivot, tuple(candidates)))
                continue
            for start in range(0, len(candidates), shard_size):
                batches.append(
                    (
                        rule_index,
                        pivot,
                        tuple(candidates[start:start + shard_size]),
                    )
                )
    return batches


def evaluate_batch(
    rules: Sequence[TGD],
    instance: Instance,
    batch: DiscoveryBatch,
) -> List[Trigger]:
    """Evaluate one discovery batch against the round-start instance.

    Pure with respect to the instance: the pivot's bindings seed the
    rest-of-body compiled join plan exactly as
    :func:`repro.chase.delta.delta_triggers` does, and triggers come
    out in the serial engine's per-batch order.  Safe to run
    concurrently with other batches of the same round.
    """
    rule_index, pivot, candidates = batch
    rule = rules[rule_index]
    pivot_step = atom_step(rule.body[pivot])
    pivot_vars = pivot_step.variables()
    rest = [a for i, a in enumerate(rule.body) if i != pivot]
    plan = plan_for(rest, instance, pivot_vars) if rest else None
    out: List[Trigger] = []
    for fact in candidates:
        partial: Dict[Variable, Term] = {}
        if pivot_step.try_match(fact, partial) is None:
            continue
        if plan is None:
            out.append(Trigger(rule, rule_index, partial))
            continue
        for assignment in plan.run(instance, partial):
            out.append(Trigger(rule, rule_index, assignment))
    return out


# -- process-executor wire format ------------------------------------------
#
# A process task carries everything a worker needs: the rules, the
# round-start instance (as an Instance — its __reduce__ ships the fact
# tuple and rebuilds indexes worker-side), and a contiguous run of
# batches.  Triggers return in wire form (rule_index + assignment
# pairs) so rule objects never travel back.

ProcessTask = Tuple[Sequence[TGD], Instance, List[DiscoveryBatch]]


def evaluate_batches_remote(task: ProcessTask) -> List[WireTrigger]:
    """Worker-side entry point: evaluate a run of batches, return wire
    triggers in canonical order.  Module-level for picklability."""
    rules, instance, batches = task
    out: List[WireTrigger] = []
    for batch in batches:
        for trigger in evaluate_batch(rules, instance, batch):
            out.append(
                (trigger.rule_index, tuple(trigger.assignment.items()))
            )
    return out


def _chunk(
    batches: List[DiscoveryBatch], chunks: int
) -> List[List[DiscoveryBatch]]:
    """Split batches into at most ``chunks`` contiguous, order-
    preserving runs of near-equal length."""
    chunks = max(1, min(chunks, len(batches)))
    size, extra = divmod(len(batches), chunks)
    out: List[List[DiscoveryBatch]] = []
    start = 0
    for i in range(chunks):
        stop = start + size + (1 if i < extra else 0)
        out.append(batches[start:stop])
        start = stop
    return out


def scheduled_delta_triggers(
    scheduler: RoundScheduler,
    rules: Sequence[TGD],
    instance: Instance,
    new_facts: Sequence[Atom],
) -> Iterable[Trigger]:
    """One scheduled discovery pass — the batched equivalent of
    :func:`repro.chase.delta.delta_triggers`.

    Partitions the round into batches, runs them through the
    scheduler's executor, and merges the outputs in canonical batch
    order, so the produced trigger stream (and hence everything
    downstream: fired keys, firing order, null/Skolem numbering) is
    identical to the serial engine's.  May repeat a trigger across
    pivots exactly as the serial pass does; the caller's fired-key set
    deduplicates.
    """
    batches = discovery_batches(rules, new_facts, scheduler.shard_size)
    if not batches:
        return
    if scheduler.kind == "process":
        tasks: List[ProcessTask] = [
            (rules, instance, chunk)
            for chunk in _chunk(batches, scheduler.workers)
        ]
        rule_list = list(rules)
        for wire_triggers in scheduler.map(evaluate_batches_remote, tasks):
            for rule_index, items in wire_triggers:
                yield Trigger(
                    rule_list[rule_index], rule_index, dict(items)
                )
        return
    for triggers in scheduler.map(
        lambda batch: evaluate_batch(rules, instance, batch), batches
    ):
        yield from triggers
