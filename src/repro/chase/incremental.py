"""Incremental chase maintenance: a long-lived chase you can extend.

The one-shot entry points (:func:`~repro.chase.engine.run_chase`,
:func:`~repro.chase.engine.resume_chase`) tear down their evaluation
state when they return.  A :class:`ChaseSession` keeps it alive — the
:class:`~repro.chase.delta.DeltaEngine` with its persistent fired-key
set and frontier, the null counter, the step log, the scheduler, and
(optionally) the checkpointer — so that when new *base facts* arrive
the chase is **resumed from the delta** instead of re-run: the new
rows are appended, seeded into the semi-naive frontier, and the round
loop continues exactly as if the interrupted run had always contained
them (ROADMAP items 1 and 4: "a new base-fact delta is just a resume
leg with extra database rows").

Equivalence guarantees of an extension leg (``tests/test_incremental.py``
holds the engine to all three):

* **Byte-identical across executors and persistence paths.**  For a
  fixed arrival schedule (base facts, then deltas, in order), the
  maintained instance — facts order, trigger keys, provenance, null
  numbering — is byte-identical on the serial, threaded, and process
  executors, with or without a durable store underneath, and identical
  to stopping the process and continuing the legs via
  :func:`extend_chase` on the saved directory.
* **Skolem-equal to the from-scratch union chase.**  For the oblivious
  and semi-oblivious variants, the maintained instance equals the
  from-scratch chase of ``D ∪ Δ`` up to the inevitable renaming and
  reordering of labelled nulls: canonicalizing each null by the
  (rule, variant-projected trigger key, output position) that minted
  it makes the two fact *sets* equal.  (Literal byte-identity of the
  two logs is impossible for any in-place maintenance scheme — the
  union run interleaves Δ-dependent derivations earlier and therefore
  numbers nulls differently.)
* **Certain answers agree for every variant.**  Each restricted-chase
  extension leg fires only triggers whose head is unsatisfied, so the
  maintained instance is still a universal model of ``D ∪ Δ`` w.r.t.
  the rules; certain answers (and ground-atom entailment) computed
  over it coincide with the from-scratch restricted chase of the
  union, even when the two fact sets differ (the restricted chase is
  order-sensitive; both results are equally valid universal models).

Reads stay consistent *during* an extension: the columnar store is
append-only, so :meth:`ChaseSession.snapshot` (taken between legs)
pins a row-count watermark that concurrent readers can query while
the next leg appends — the query server (:mod:`repro.serve`) is built
on exactly this.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..model import Atom, Instance, NullFactory, TGD, validate_program
from ..model.instances import SnapshotInstance
from ..runtime.budget import STOP_FIXPOINT, Budget
from .checkpoint import Checkpointer, load_state
from .delta import DeltaEngine, ingest_facts
from .engine import DEFAULT_MAX_STEPS, _drive
from .result import ChaseResult, ChaseStep
from .scheduler import SchedulerSpec, resolve_scheduler
from .triggers import ChaseVariant, Trigger


class ChaseSession:
    """A resident chase: run once, then extend with base-fact deltas.

    Create with :meth:`start` (fresh database) or :meth:`resume`
    (checkpointed store directory); both run the chase to its stop and
    keep the evaluation state resident.  :meth:`extend` then appends a
    delta of new base facts and continues the *same* run — semi-naive
    discovery from the delta only, the persistent fired-key set
    guaranteeing no historical trigger refires, null numbering
    continuing where it stood.

    Sessions are single-writer: calls to :meth:`extend` must be
    serialized by the caller (the server holds a lock).  Concurrent
    *readers* use :meth:`snapshot` — a watermark view that stays
    consistent while the next extension appends.

    When the session was started with ``save=...`` (or resumed from a
    store), every leg checkpoints as it goes, so ingested deltas and
    their derived facts are durable: killing the process and calling
    :meth:`resume` (or :func:`~repro.chase.engine.resume_chase`)
    continues byte-identically.
    """

    __slots__ = (
        "instance", "rules", "variant", "planner", "max_steps",
        "result",
        "_engine", "_factory", "_steps", "_scheduler",
        "_owns_scheduler", "_ckpt", "_checkpoint_every",
        "_pending", "_rounds", "_terminated", "_stop_reason",
        "_closed",
    )

    def __init__(self):
        raise TypeError(
            "use ChaseSession.start(...) or ChaseSession.resume(...)"
        )

    @classmethod
    def _blank(cls) -> "ChaseSession":
        session = cls.__new__(cls)
        session._pending: Tuple[Trigger, ...] = ()
        session._rounds = 0
        session._terminated = False
        session._stop_reason: Optional[str] = None
        session._closed = False
        return session

    # -- construction --------------------------------------------------------

    @classmethod
    def start(
        cls,
        database: Instance,
        rules: Sequence[TGD],
        *,
        variant: str = ChaseVariant.SEMI_OBLIVIOUS,
        max_steps: int = DEFAULT_MAX_STEPS,
        planner: str = "heuristic",
        kernel: str = "tuple",
        scheduler: SchedulerSpec = None,
        workers: Optional[int] = None,
        budget: Optional[Budget] = None,
        save: Optional[str] = None,
        overwrite: bool = False,
        checkpoint_every: int = 1,
    ) -> "ChaseSession":
        """Chase ``database`` with ``rules`` and keep the run resident.

        Accepts the same knobs as :func:`~repro.chase.engine.run_chase`
        (minus ``order_seed``/``null_factory``, which are incompatible
        with deterministic continuation); ``budget`` governs this
        initial leg only — each :meth:`extend` takes its own.
        """
        if variant not in ChaseVariant.ALL:
            raise ValueError(f"unknown chase variant {variant!r}")
        if max_steps <= 0:
            raise ValueError(
                f"max_steps must be positive, got {max_steps}"
            )
        if planner not in ("heuristic", "cost"):
            raise ValueError(f"unknown planner policy {planner!r}")
        from ..query.kernels import KERNELS

        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}")
        if save is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be positive, "
                f"got {checkpoint_every}"
            )
        rules = list(rules)
        validate_program(rules)
        session = cls._blank()
        session.rules = rules
        session.variant = variant
        session.planner = planner
        session.max_steps = max_steps
        session._checkpoint_every = checkpoint_every
        instance = Instance(database)
        instance.order_policy = planner
        instance.kernel = kernel
        session.instance = instance
        session._factory = NullFactory()
        session._steps = []
        round_scheduler, owns = resolve_scheduler(scheduler, workers)
        session._scheduler = round_scheduler
        session._owns_scheduler = owns
        if budget is not None:
            budget.start()
        try:
            session._engine = DeltaEngine(
                rules,
                instance,
                key=lambda trigger: trigger.key(variant),
                scheduler=round_scheduler,
                variant=variant,
                budget=budget,
            )
            session._ckpt = None
            if save is not None:
                session._engine.track_fired()
                session._ckpt = Checkpointer.create(
                    save, instance, rules, variant, planner, max_steps,
                    overwrite=overwrite,
                )
                session._ckpt.checkpoint(session._engine, session._steps)
                session._engine.store_ref = (
                    save, session._ckpt.writer.facts
                )
            session._run_leg(budget)
        except BaseException:
            session.close()
            raise
        return session

    @classmethod
    def resume(
        cls,
        path: str,
        *,
        scheduler: SchedulerSpec = None,
        workers: Optional[int] = None,
        budget: Optional[Budget] = None,
        max_steps: Optional[int] = None,
        save: bool = True,
        checkpoint_every: int = 1,
    ) -> "ChaseSession":
        """Reopen a checkpointed store directory as a resident session.

        Unlike :func:`~repro.chase.engine.resume_chase`, a store whose
        run already *terminated* is still useful here: the session
        opens it without re-chasing and is immediately ready for
        :meth:`extend`.  An unfinished store is first driven to its
        stop (under ``budget``), exactly like ``resume_chase``.
        """
        from ..storage.durable import open_store

        store = open_store(path)
        state = load_state(path, store)
        rules = list(state["rules"])
        session = cls._blank()
        session.rules = rules
        session.variant = state["variant"]
        session.planner = state["planner"]
        session.max_steps = (
            state["max_steps"] if max_steps is None else max_steps
        )
        session._checkpoint_every = checkpoint_every
        store.ensure_all()
        instance = Instance(store=store)
        instance.order_policy = state["planner"]
        session.instance = instance
        session._factory = NullFactory(start=state["null_next"])
        session._steps = [
            ChaseStep(
                Trigger.from_ids(rules[ri], ri, ids, instance),
                instance, ords,
            )
            for ri, ids, ords in state["steps"]
        ]
        round_scheduler, owns = resolve_scheduler(scheduler, workers)
        session._scheduler = round_scheduler
        session._owns_scheduler = owns
        if budget is not None:
            budget.start()
        try:
            session._engine = DeltaEngine(
                rules,
                instance,
                key=lambda trigger: trigger.key(session.variant),
                scheduler=round_scheduler,
                variant=session.variant,
                budget=budget,
                fired=state["fired"],
                frontier=state["frontier"],
            )
            session._engine.store_ref = (path, state["facts"])
            session._ckpt = None
            if save:
                session._engine.track_fired()
                session._ckpt = Checkpointer.attach(
                    path, instance, state, session.max_steps
                )
            session._pending = tuple(
                Trigger.from_ids(rules[ri], ri, tuple(ids), instance)
                for ri, ids in state["pending"]
            )
            session._rounds = state["rounds"]
            if state["terminated"]:
                # Nothing to drive; the resident state is the finished
                # run, ready for extension legs.
                session._terminated = True
                session._stop_reason = (
                    state["stop_reason"] or STOP_FIXPOINT
                )
                session.result = ChaseResult(
                    instance, True, session._steps, session.variant,
                    session.max_steps,
                    stop_reason=session._stop_reason,
                )
            else:
                session._run_leg(budget)
        except BaseException:
            session.close()
            raise
        return session

    # -- the legs ------------------------------------------------------------

    def _run_leg(self, budget: Optional[Budget]) -> ChaseResult:
        """Drive the resident engine to its next stop, updating the
        session's leftover state in place."""
        self._engine.budget = budget
        sink: dict = {}
        result = _drive(
            self.instance, self.rules, self.variant, self.max_steps,
            self._factory, budget, self._engine, self._scheduler,
            False,  # the session owns the scheduler, not the leg
            self._steps,
            ckpt=self._ckpt,
            checkpoint_every=self._checkpoint_every,
            pending=self._pending,
            rounds_done=self._rounds,
            state_sink=sink,
        )
        self._pending = sink["pending"]
        self._rounds = sink["rounds"]
        self._terminated = sink["terminated"]
        self._stop_reason = sink["stop_reason"]
        self.result = result
        return result

    def extend(
        self,
        facts: Iterable[Atom],
        *,
        budget: Optional[Budget] = None,
        max_steps: Optional[int] = None,
    ) -> ChaseResult:
        """Ingest a delta of new base facts and continue the chase.

        ``facts`` must be ground and null-free; duplicates of existing
        facts are skipped (an all-duplicate delta is a cheap no-op
        leg).  The new rows are appended to the resident instance,
        seeded into the semi-naive frontier, and the round loop runs
        to its next stop — firing only triggers that involve the delta
        (directly or transitively), never refiring history.

        ``max_steps`` raises the session's total step cap (a session
        stopped on ``step_budget`` stays stopped until it is raised);
        ``budget`` governs this leg only.  Returns the updated
        :class:`~repro.chase.result.ChaseResult` (also kept as
        ``session.result``); when the session checkpoints, the delta
        and everything derived from it are durable at return.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        if max_steps is not None:
            if max_steps <= 0:
                raise ValueError(
                    f"max_steps must be positive, got {max_steps}"
                )
            self.max_steps = max_steps
            if self._ckpt is not None:
                self._ckpt.set_max_steps(max_steps)
        if budget is not None:
            budget.start()
        added = ingest_facts(self._engine, facts)
        if not added and self._terminated and not self._pending:
            # Every fact was already present: the resident result is
            # already the chase of the (unchanged) union.  Still
            # checkpoint nothing — the store is current.
            return self.result
        return self._run_leg(budget)

    # -- reads ---------------------------------------------------------------

    def snapshot(self) -> SnapshotInstance:
        """A consistent read-only view of the instance at its current
        size.  Call between legs (never concurrently with
        :meth:`extend`); the returned view stays valid and consistent
        while later legs append."""
        return self.instance.snapshot()

    @property
    def watermark(self) -> int:
        """The current fact count — the row-count high-water mark new
        snapshots are pinned to."""
        return len(self.instance)

    @property
    def terminated(self) -> bool:
        """True iff the last leg reached a fixpoint."""
        return self._terminated

    @property
    def stop_reason(self) -> Optional[str]:
        """The last leg's stop reason (see ``STOP_REASONS``)."""
        return self._stop_reason

    @property
    def step_count(self) -> int:
        """Total trigger applications across all legs."""
        return len(self._steps)

    @property
    def store_path(self) -> Optional[str]:
        """The durable store directory this session checkpoints to, or
        ``None`` for a memory-only session.  Siblings of the fact data
        (e.g. the serve layer's write-ahead ingest journal) anchor
        themselves here."""
        if self._ckpt is None:
            return None
        return self._ckpt.writer.path

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the session's executor (if it owns one).  Idempotent;
        the instance and result remain readable."""
        if self._closed:
            return
        self._closed = True
        if getattr(self, "_owns_scheduler", False):
            scheduler = getattr(self, "_scheduler", None)
            if scheduler is not None:
                scheduler.close()

    def __enter__(self) -> "ChaseSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def extend_chase(
    path: str,
    facts: Iterable[Atom],
    *,
    scheduler: SchedulerSpec = None,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    max_steps: Optional[int] = None,
    checkpoint_every: int = 1,
) -> ChaseResult:
    """One-shot incremental leg over a checkpointed store directory:
    open, ingest ``facts``, chase the delta to its stop, checkpoint,
    close.  The durable sibling of :meth:`ChaseSession.extend` — the
    result is byte-identical to a resident session fed the same
    arrival schedule.

    ``max_steps`` raises the recorded total step cap for this and
    later legs.  Finished stores are extended without re-chasing;
    unfinished stores first continue to their stop (both under
    ``budget``).
    """
    with ChaseSession.resume(
        path, scheduler=scheduler, workers=workers, budget=budget,
        max_steps=max_steps, checkpoint_every=checkpoint_every,
    ) as session:
        return session.extend(facts, budget=budget)
