"""Triggers and their identification policies.

A *trigger* for a set Σ of TGDs on an instance ``I`` is a pair
``(σ, h)`` where ``σ = φ → ψ ∈ Σ`` and ``h`` is a homomorphism mapping
``φ`` into ``I`` (§2 of the paper).  The three chase variants differ in
when two triggers are considered *the same* (and hence fired once):

* **oblivious** — triggers are identified by the full homomorphism on
  the body variables;
* **semi-oblivious** — by the restriction of the homomorphism to the
  frontier (the universally quantified variables occurring in the
  head); homomorphisms agreeing there are indistinguishable;
* **restricted** — as oblivious, but a trigger is *skipped* when its
  head is already satisfied by some extension of the frontier image.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from ..model import (
    Assignment,
    Atom,
    Instance,
    NullFactory,
    TGD,
    Term,
    Variable,
    homomorphisms,
    plan_for,
)


class ChaseVariant:
    """The chase variants studied by the paper."""

    OBLIVIOUS = "oblivious"
    SEMI_OBLIVIOUS = "semi_oblivious"
    RESTRICTED = "restricted"

    ALL = (OBLIVIOUS, SEMI_OBLIVIOUS, RESTRICTED)


TriggerKey = Tuple[int, Tuple[Tuple[str, Term], ...]]


class Trigger:
    """One trigger ``(σ, h)``; ``rule_index`` identifies σ within Σ."""

    __slots__ = ("rule", "rule_index", "assignment")

    def __init__(self, rule: TGD, rule_index: int, assignment: Assignment):
        self.rule = rule
        self.rule_index = rule_index
        self.assignment = assignment

    def key(self, variant: str) -> TriggerKey:
        """The identification key under ``variant``.

        The restricted chase identifies triggers the oblivious way; its
        extra head-satisfaction check happens at application time.
        The rule's precomputed name-sorted variable orders make this a
        single pass — no per-firing re-sort.
        """
        if variant == ChaseVariant.SEMI_OBLIVIOUS:
            relevant = self.rule.frontier_sorted
        else:
            relevant = self.rule.body_variables_sorted
        assignment = self.assignment
        items = tuple((var.name, assignment[var]) for var in relevant)
        return (self.rule_index, items)

    def frontier_image(self) -> Tuple[Tuple[str, Term], ...]:
        """The frontier restriction of the homomorphism (name-sorted)."""
        assignment = self.assignment
        return tuple(
            (v.name, assignment[v]) for v in self.rule.frontier_sorted
        )

    def __repr__(self) -> str:
        image = ", ".join(
            f"{v.name}->{t}" for v, t in sorted(
                self.assignment.items(), key=lambda kv: kv[0].name
            )
        )
        return f"Trigger({self.rule}, {{{image}}})"


def triggers_for_rule(
    rule: TGD, rule_index: int, instance: Instance
) -> Iterator[Trigger]:
    """All triggers for one rule on ``instance`` (deterministic order)."""
    for assignment in homomorphisms(rule.body, instance):
        yield Trigger(rule, rule_index, assignment)


def all_triggers(
    rules: Sequence[TGD], instance: Instance
) -> Iterator[Trigger]:
    """All triggers for Σ on ``instance``, rule-major order."""
    for idx, rule in enumerate(rules):
        yield from triggers_for_rule(rule, idx, instance)


def head_satisfied(trigger: Trigger, instance: Instance) -> bool:
    """The restricted chase's applicability test: is there an extension
    of the trigger's frontier image mapping the head into ``instance``?

    Runs the rule's compiled head plan seeded with the frontier image,
    so the probe starts from the term-level indexes rather than a scan.
    """
    rule = trigger.rule
    assignment = trigger.assignment
    partial = {var: assignment[var] for var in rule.frontier}
    plan = plan_for(rule.head, instance, rule.frontier)
    return plan.first(instance, partial) is not None


def apply_trigger(
    trigger: Trigger,
    instance: Instance,
    null_factory: NullFactory,
) -> List[Atom]:
    """Fire ``trigger`` on ``instance``: extend the homomorphism with a
    fresh null per existential variable and add the head atoms.

    Returns the atoms that were actually new (possibly empty for full
    TGDs whose head already held).
    """
    extended: Dict[Variable, Term] = dict(trigger.assignment)
    label = trigger.rule.label or f"rule{trigger.rule_index}"
    for var in trigger.rule.existentials_sorted:
        extended[var] = null_factory.fresh(origin=f"{label}:{var.name}")
    new_atoms: List[Atom] = []
    mapping: Dict[Term, Term] = dict(extended)
    for atom in trigger.rule.head:
        fact = atom.substitute(mapping)
        if instance.add(fact):
            new_atoms.append(fact)
    return new_atoms
