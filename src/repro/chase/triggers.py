"""Triggers and their identification policies.

A *trigger* for a set Σ of TGDs on an instance ``I`` is a pair
``(σ, h)`` where ``σ = φ → ψ ∈ Σ`` and ``h`` is a homomorphism mapping
``φ`` into ``I`` (§2 of the paper).  The three chase variants differ in
when two triggers are considered *the same* (and hence fired once):

* **oblivious** — triggers are identified by the full homomorphism on
  the body variables;
* **semi-oblivious** — by the restriction of the homomorphism to the
  frontier (the universally quantified variables occurring in the
  head); homomorphisms agreeing there are indistinguishable;
* **restricted** — as oblivious, but a trigger is *skipped* when its
  head is already satisfied by some extension of the frontier image.

Triggers come in two internal representations sharing one class:

* the **object form** — a ``Variable → Term`` dict, produced by the
  public enumeration APIs (:func:`triggers_for_rule`); and
* the **interned form** — a tuple of term *ids* aligned with the
  rule's name-sorted body variables, produced by the engines' int-level
  discovery (:mod:`repro.chase.delta`).  Keys, head-satisfaction
  probes, and trigger application then run on plain integers; the
  ``assignment``/``frontier_image`` accessors decode lazily, so Term
  objects only materialize at API boundaries.

The two forms never mix inside one engine run, so their (structurally
distinct) key encodings can never collide in a fired-key set.
"""

from __future__ import annotations

from operator import itemgetter as _itemgetter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..model import (
    Assignment,
    Atom,
    Instance,
    NullFactory,
    TGD,
    Term,
    Variable,
    homomorphisms,
)
from ..model.joinplan import PlanExec, ResolvedStep, resolve_exec
from ..query.planner import order_for


def _empty_emit(assign):
    return ()


def _single_emit(slot):
    def emit(assign):
        return (assign[slot],)

    return emit


class ChaseVariant:
    """The chase variants studied by the paper."""

    OBLIVIOUS = "oblivious"
    SEMI_OBLIVIOUS = "semi_oblivious"
    RESTRICTED = "restricted"

    ALL = (OBLIVIOUS, SEMI_OBLIVIOUS, RESTRICTED)


TriggerKey = Tuple[int, Tuple]


class Trigger:
    """One trigger ``(σ, h)``; ``rule_index`` identifies σ within Σ."""

    __slots__ = ("rule", "rule_index", "_assignment", "_ids", "_source")

    def __init__(self, rule: TGD, rule_index: int, assignment: Assignment):
        self.rule = rule
        self.rule_index = rule_index
        self._assignment: Optional[Assignment] = assignment
        self._ids: Optional[Tuple[int, ...]] = None
        self._source: Optional[Instance] = None

    @classmethod
    def from_ids(
        cls,
        rule: TGD,
        rule_index: int,
        ids: Tuple[int, ...],
        source: Instance,
    ) -> "Trigger":
        """An interned-form trigger: ``ids[i]`` is the image of
        ``rule.body_variables_sorted[i]`` in ``source``'s id space."""
        trigger = cls.__new__(cls)
        trigger.rule = rule
        trigger.rule_index = rule_index
        trigger._assignment = None
        trigger._ids = ids
        trigger._source = source
        return trigger

    @property
    def assignment(self) -> Assignment:
        """The homomorphism as a ``Variable → Term`` dict (decoded
        lazily and cached for interned-form triggers)."""
        assignment = self._assignment
        if assignment is None:
            obj = self._source.symbols.obj
            assignment = {
                var: obj(tid)
                for var, tid in zip(
                    self.rule.body_variables_sorted, self._ids
                )
            }
            self._assignment = assignment
        return assignment

    def ids(self, instance: Instance) -> Tuple[int, ...]:
        """The interned form in ``instance``'s id space (encoding an
        object-form trigger on demand)."""
        ids = self._ids
        if ids is not None:
            return ids
        assignment = self._assignment
        term_id = instance.term_id
        return tuple(
            term_id(assignment[var])
            for var in self.rule.body_variables_sorted
        )

    def key(self, variant: str) -> TriggerKey:
        """The identification key under ``variant``.

        The restricted chase identifies triggers the oblivious way; its
        extra head-satisfaction check happens at application time.
        Interned-form triggers key on plain int tuples (the rule's
        precomputed sorted variable order fixes the alignment); object
        -form triggers keep the name/term encoding.  The two encodings
        are structurally disjoint and never meet in one fired-key set.
        """
        ids = self._ids
        if ids is not None:
            if variant == ChaseVariant.SEMI_OBLIVIOUS:
                get = self.rule._frontier_get
                return (
                    self.rule_index, ids if get is None else get(ids)
                )
            return (self.rule_index, ids)
        if variant == ChaseVariant.SEMI_OBLIVIOUS:
            relevant = self.rule.frontier_sorted
        else:
            relevant = self.rule.body_variables_sorted
        assignment = self._assignment
        items = tuple((var.name, assignment[var]) for var in relevant)
        return (self.rule_index, items)

    def frontier_image(self) -> Tuple[Tuple[str, Term], ...]:
        """The frontier restriction of the homomorphism (name-sorted)."""
        ids = self._ids
        if ids is not None:
            obj = self._source.symbols.obj
            return tuple(
                (var.name, obj(ids[i]))
                for var, i in zip(
                    self.rule.frontier_sorted,
                    self.rule.frontier_body_indices,
                )
            )
        assignment = self._assignment
        return tuple(
            (v.name, assignment[v]) for v in self.rule.frontier_sorted
        )

    def __repr__(self) -> str:
        image = ", ".join(
            f"{v.name}->{t}" for v, t in sorted(
                self.assignment.items(), key=lambda kv: kv[0].name
            )
        )
        return f"Trigger({self.rule}, {{{image}}})"


def triggers_for_rule(
    rule: TGD, rule_index: int, instance: Instance
) -> Iterator[Trigger]:
    """All triggers for one rule on ``instance`` (deterministic order)."""
    for assignment in homomorphisms(rule.body, instance):
        yield Trigger(rule, rule_index, assignment)


def all_triggers(
    rules: Sequence[TGD], instance: Instance
) -> Iterator[Trigger]:
    """All triggers for Σ on ``instance``, rule-major order."""
    for idx, rule in enumerate(rules):
        yield from triggers_for_rule(rule, idx, instance)


# -- head satisfaction -----------------------------------------------------


class _HeadExec:
    """A rule's head resolved for one instance and one join order:
    the exec plus the seeding recipe from a trigger's id tuple."""

    __slots__ = ("exec_", "seed")

    def __init__(self, instance: Instance, rule: TGD,
                 ordered_head: Tuple[Atom, ...]):
        self.exec_ = resolve_exec(instance, ordered_head)
        slot_of = self.exec_.slot_of
        seed: List[Tuple[int, int]] = []
        for var, body_idx in zip(
            rule.frontier_sorted, rule.frontier_body_indices
        ):
            slot = slot_of.get(var)
            # A frontier variable absent from the head cannot constrain
            # the match; skip it (the object engine carried it inertly).
            if slot is not None:
                seed.append((slot, body_idx))
        self.seed = tuple(seed)


def _head_exec(instance: Instance, rule: TGD) -> _HeadExec:
    """The (cached) head exec for ``rule``.

    Head satisfaction is a pure existence test, so its join order
    affects only speed — never results or enumeration order.  The
    ordering is therefore cost-planned (:mod:`repro.query.planner` —
    an always-safe consumer of the statistics-driven policy) and
    recomputed lazily, whenever the instance has doubled since the
    exec was built (O(log growth) reorders), instead of per probe.
    """
    cache = instance._plans
    entry = cache.get(rule)
    size = len(instance)
    if entry is not None and size <= 2 * entry[0]:
        return entry[1]
    ordered = order_for(rule.head, instance, rule.frontier, policy="cost")
    key = ("head", rule, ordered)
    exec_ = cache.get(key)
    if exec_ is None:
        exec_ = _HeadExec(instance, rule, ordered)
        cache[key] = exec_
    cache[rule] = (size if size else 1, exec_)
    return exec_


def head_satisfied(trigger: Trigger, instance: Instance) -> bool:
    """The restricted chase's applicability test: is there an extension
    of the trigger's frontier image mapping the head into ``instance``?

    Runs the rule's resolved head exec seeded with the frontier image
    ids, so the probe starts from the term-level int indexes rather
    than a scan.
    """
    rule = trigger.rule
    head = _head_exec(instance, rule)
    exec_ = head.exec_
    assign = exec_.fresh_assign()
    ids = trigger.ids(instance)
    for slot, body_idx in head.seed:
        assign[slot] = ids[body_idx]
    return exec_.first(instance, assign)


# -- application -----------------------------------------------------------


def _make_row_builder(ops: Tuple[Tuple[int, int], ...]):
    """Compile one head atom's ops into ``builder(ids, exist_ids) ->
    row``.  All-frontier heads (the common full-TGD case) collapse to a
    single ``itemgetter`` over the trigger's id tuple."""
    if not ops:
        def build_empty(ids, exist_ids):
            return ()

        return build_empty
    if all(kind == 1 for kind, _ in ops):
        if len(ops) == 1:
            index = ops[0][1]

            def build_single(ids, exist_ids):
                return (ids[index],)

            return build_single
        get = _itemgetter(*[value for _, value in ops])

        def build_projected(ids, exist_ids):
            return get(ids)

        return build_projected

    def build_general(ids, exist_ids):
        values: List[int] = []
        for kind, value in ops:
            if kind == 0:
                values.append(value)
            elif kind == 1:
                values.append(ids[value])
            else:
                values.append(exist_ids[value])
        return tuple(values)

    return build_general


class _HeadTemplate:
    """A rule's head compiled for int-level application.

    Each head atom becomes ``(pred_id, ops, builder)`` where an op is
    ``(0, term_id)`` for a constant, ``(1, i)`` for the i-th sorted
    body variable, or ``(2, j)`` for the j-th sorted existential
    variable, and ``builder`` is the compiled row constructor;
    ``origins`` are the precomputed null-origin labels.
    """

    __slots__ = ("atoms", "origins")

    def __init__(self, instance: Instance, rule: TGD, rule_index: int):
        body_index = {
            var: i for i, var in enumerate(rule.body_variables_sorted)
        }
        exist_index = {
            var: j for j, var in enumerate(rule.existentials_sorted)
        }
        atoms: List[Tuple[int, Tuple[Tuple[int, int], ...], object]] = []
        for atom in rule.head:
            pid = instance.pred_id(atom.predicate)
            ops: List[Tuple[int, int]] = []
            for term in atom.terms:
                if isinstance(term, Variable):
                    j = exist_index.get(term)
                    if j is None:
                        ops.append((1, body_index[term]))
                    else:
                        ops.append((2, j))
                else:
                    ops.append((0, instance.term_id(term)))
            key = tuple(ops)
            atoms.append((pid, key, _make_row_builder(key)))
        self.atoms = tuple(atoms)
        label = rule.label or f"rule{rule_index}"
        self.origins = tuple(
            f"{label}:{var.name}" for var in rule.existentials_sorted
        )


def _head_template(
    instance: Instance, rule: TGD, rule_index: int
) -> _HeadTemplate:
    cache = instance._templates
    template = cache.get(rule)
    if template is None:
        template = _HeadTemplate(instance, rule, rule_index)
        cache[rule] = template
    return template


def apply_trigger_ids(
    trigger: Trigger,
    instance: Instance,
    null_factory: NullFactory,
) -> List[int]:
    """Fire ``trigger`` on ``instance`` at the int level: one fresh
    null per existential variable (interned on creation), head rows
    built straight from the compiled template.

    Returns the ordinals of the facts that were actually new (possibly
    empty for full TGDs whose head already held); the corresponding
    Atoms materialize lazily.
    """
    template = _head_template(instance, trigger.rule, trigger.rule_index)
    ids = trigger.ids(instance)
    term_id = instance.term_id
    exist_ids = [
        term_id(null_factory.fresh(origin=origin))
        for origin in template.origins
    ]
    new_ordinals: List[int] = []
    add_row = instance.add_row
    for pid, _, build in template.atoms:
        ordinal = add_row(pid, build(ids, exist_ids))
        if ordinal is not None:
            new_ordinals.append(ordinal)
    return new_ordinals


def apply_trigger(
    trigger: Trigger,
    instance: Instance,
    null_factory: NullFactory,
) -> List[Atom]:
    """Fire ``trigger`` on ``instance``: extend the homomorphism with a
    fresh null per existential variable and add the head atoms.

    Returns the atoms that were actually new (possibly empty for full
    TGDs whose head already held).
    """
    atom_at = instance.atom_at
    return [
        atom_at(ordinal)
        for ordinal in apply_trigger_ids(trigger, instance, null_factory)
    ]


# -- int-level discovery plumbing (used by repro.chase.delta) --------------


class RuleExec:
    """A ``(rule, pivot)`` pair resolved for one instance and one join
    order of the rest-of-body: the pivot's step and the rest exec share
    one slot space, and ``emit`` reads the sorted body variables' slots
    out of a full match — yielding the trigger's interned id tuple
    directly (compiled to an ``itemgetter`` for the common case)."""

    __slots__ = ("pivot_step", "rest", "nslots", "emit", "emit_slots")

    def __init__(self, instance: Instance, rule: TGD, pivot: int,
                 ordered_rest: Tuple[Atom, ...]):
        env: Dict[Variable, int] = {}
        self.pivot_step = ResolvedStep(instance, rule.body[pivot], env)
        if ordered_rest:
            steps = [
                ResolvedStep(instance, atom, env) for atom in ordered_rest
            ]
            self.rest: Optional[PlanExec] = PlanExec(steps, env)
        else:
            self.rest = None
        self.nslots = len(env)
        slots = tuple(env[v] for v in rule.body_variables_sorted)
        # The raw slot tuple alongside the compiled getter: the batch
        # kernels project columns by slot number rather than reading a
        # live assignment list.
        self.emit_slots = slots
        if len(slots) == 1:
            self.emit = _single_emit(slots[0])
        elif slots:
            self.emit = _itemgetter(*slots)
        else:
            self.emit = _empty_emit


def rule_exec(instance: Instance, rule: TGD, pivot: int) -> RuleExec:
    """The (cached) :class:`RuleExec` for ``(rule, pivot)`` under the
    join order the instance's planner policy selects.

    ``instance.order_policy`` ("heuristic" by default — the canonical
    fair order the sequence-level tests pin; "cost" opts in to
    statistics-driven ordering, which keeps trigger *sets* identical
    but may permute discovery order within a round) is consulted here,
    so the chase engines' discovery goes through the same planner as
    the query surface.
    """
    pivot_atom = rule.body[pivot]
    rest = [a for i, a in enumerate(rule.body) if i != pivot]
    if rest:
        # The pivot's bindings seed the rest-of-body join: the exec
        # treats them as bound and probes the term-level indexes with
        # them.  One exec serves every candidate row — the caller
        # materializes all triggers before mutating the instance, so
        # the join order cannot go stale mid-loop.
        pivot_vars = pivot_atom.variables()
        ordered = order_for(
            rest, instance, frozenset(pivot_vars),
            policy=instance.order_policy,
        )
    else:
        ordered = ()
    key = ("rule", rule, pivot, ordered)
    cache = instance._plans
    exec_ = cache.get(key)
    if exec_ is None:
        exec_ = RuleExec(instance, rule, pivot, ordered)
        cache[key] = exec_
    return exec_
