"""The chase engine: oblivious, semi-oblivious, and restricted runs.

The engine executes a *fair* chase sequence: it works in rounds; each
round discovers the triggers enabled by the facts added in the
previous round (semi-naive evaluation — a trigger is found when some
body atom matches a new fact and the rest of the body matches the
instance) and applies the not-yet-fired ones in deterministic order.
Every trigger that ever becomes available is applied after finitely
many rounds, so the produced sequence satisfies the fairness condition
of §2.

Termination is detected when a full round fires nothing.  A
``max_steps`` budget makes the engine total on non-terminating inputs
(the result then reports ``terminated=False``); the all-instance
termination *deciders* live in :mod:`repro.termination`, not here.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from ..model import (
    Atom,
    Instance,
    NullFactory,
    Predicate,
    TGD,
    atom_step,
    plan_for,
    validate_program,
)
from .result import ChaseResult, ChaseStep
from .triggers import (
    ChaseVariant,
    Trigger,
    TriggerKey,
    apply_trigger,
    head_satisfied,
    triggers_for_rule,
)

DEFAULT_MAX_STEPS = 10_000


def _incremental_triggers(
    rules: Sequence[TGD],
    instance: Instance,
    new_facts: Sequence[Atom],
) -> Iterator[Trigger]:
    """Triggers whose body match involves at least one fact from
    ``new_facts``.  May repeat a trigger (when several body atoms hit
    new facts); the caller's fired-key set deduplicates."""
    new_by_predicate: Dict[Predicate, List[Atom]] = {}
    for fact in new_facts:
        new_by_predicate.setdefault(fact.predicate, []).append(fact)
    for rule_index, rule in enumerate(rules):
        for pivot, pivot_atom in enumerate(rule.body):
            candidates = new_by_predicate.get(pivot_atom.predicate)
            if not candidates:
                continue
            pivot_step = atom_step(pivot_atom)
            pivot_vars = pivot_step.variables()
            rest = [a for i, a in enumerate(rule.body) if i != pivot]
            # The pivot's bindings seed the rest-of-body join: the plan
            # treats them as bound and probes the term-level indexes
            # with them.  One plan serves every candidate fact — the
            # caller materializes all triggers before mutating the
            # instance, so the join order cannot go stale mid-loop.
            plan = plan_for(rest, instance, pivot_vars) if rest else None
            for fact in candidates:
                partial: Dict = {}
                if pivot_step.try_match(fact, partial) is None:
                    continue
                if plan is None:
                    yield Trigger(rule, rule_index, partial)
                    continue
                for assignment in plan.run(instance, partial):
                    yield Trigger(rule, rule_index, assignment)


def run_chase(
    database: Instance,
    rules: Sequence[TGD],
    variant: str = ChaseVariant.SEMI_OBLIVIOUS,
    max_steps: int = DEFAULT_MAX_STEPS,
    null_factory: Optional[NullFactory] = None,
    order_seed: Optional[int] = None,
) -> ChaseResult:
    """Run a fair ``variant`` chase of ``rules`` on ``database``.

    ``database`` is not mutated.  ``max_steps`` bounds the number of
    trigger applications; on exhaustion the result has
    ``terminated=False``.

    For the oblivious and semi-oblivious variants, the paper recalls
    that all fair sequences agree on termination (CT_∀ = CT_∃), so the
    engine's fixed order is without loss of generality; pass an
    ``order_seed`` to shuffle the per-round trigger order and observe
    this empirically (``tests/test_sequences.py``).  The restricted
    chase is genuinely order-sensitive; the default order is one
    canonical fair sequence.
    """
    if variant not in ChaseVariant.ALL:
        raise ValueError(f"unknown chase variant {variant!r}")
    if max_steps <= 0:
        raise ValueError(f"max_steps must be positive, got {max_steps}")
    rules = list(rules)
    validate_program(rules)
    instance = Instance(database)
    factory = null_factory or NullFactory()
    fired: Set[TriggerKey] = set()
    steps: List[ChaseStep] = []
    frontier: List[Atom] = list(instance)
    rng = None
    if order_seed is not None:
        import random

        rng = random.Random(order_seed)

    while True:
        round_triggers = list(
            _incremental_triggers(rules, instance, frontier)
        )
        if rng is not None:
            rng.shuffle(round_triggers)
        frontier = []
        fired_this_round = 0
        for trigger in round_triggers:
            key = trigger.key(variant)
            if key in fired:
                # Duplicate discovery, or subsumed by a trigger fired
                # earlier this round (possible for the semi-oblivious
                # key).
                continue
            if variant == ChaseVariant.RESTRICTED and head_satisfied(
                trigger, instance
            ):
                # Satisfied triggers never become unsatisfied (instances
                # only grow), so marking them fired is safe and keeps
                # the round loop linear.
                fired.add(key)
                continue
            fired.add(key)
            new_facts = apply_trigger(trigger, instance, factory)
            steps.append(ChaseStep(trigger, new_facts))
            frontier.extend(new_facts)
            fired_this_round += 1
            if len(steps) >= max_steps:
                return ChaseResult(instance, False, steps, variant, max_steps)
        if fired_this_round == 0:
            return ChaseResult(instance, True, steps, variant, max_steps)


def oblivious_chase(
    database: Instance,
    rules: Sequence[TGD],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ChaseResult:
    """The oblivious chase: every distinct body homomorphism fires."""
    return run_chase(database, rules, ChaseVariant.OBLIVIOUS, max_steps)


def semi_oblivious_chase(
    database: Instance,
    rules: Sequence[TGD],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ChaseResult:
    """The semi-oblivious chase: homomorphisms agreeing on the frontier
    are indistinguishable."""
    return run_chase(database, rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps)


def restricted_chase(
    database: Instance,
    rules: Sequence[TGD],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ChaseResult:
    """The restricted (standard) chase: fire only when the head is not
    yet satisfied."""
    return run_chase(database, rules, ChaseVariant.RESTRICTED, max_steps)
