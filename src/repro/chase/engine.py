"""The chase engine: oblivious, semi-oblivious, and restricted runs.

The engine executes a *fair* chase sequence: it works in rounds; each
round discovers the triggers enabled by the facts added in the
previous round (semi-naive evaluation — a trigger is found when some
body atom matches a new fact and the rest of the body matches the
instance) and applies the not-yet-fired ones in deterministic order.
Every trigger that ever becomes available is applied after finitely
many rounds, so the produced sequence satisfies the fairness condition
of §2.

The round machinery itself — pivot-seeded discovery, the frontier, the
persistent fired-key set — lives in :mod:`repro.chase.delta` and is
shared with the termination deciders' Skolem chase.

Termination is detected when a full round fires nothing.  A
``max_steps`` budget makes the engine total on non-terminating inputs
(the result then reports ``terminated=False``); the all-instance
termination *deciders* live in :mod:`repro.termination`, not here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import BudgetExceededError
from ..model import (
    Instance,
    NullFactory,
    TGD,
    validate_program,
)
from ..runtime.budget import (
    STOP_FIXPOINT,
    STOP_STEP_BUDGET,
    Budget,
)
from .checkpoint import Checkpointer, load_state
from .delta import DeltaEngine, delta_triggers
from .result import ChaseResult, ChaseStep
from .scheduler import RoundScheduler, SchedulerSpec, resolve_scheduler
from .triggers import (
    ChaseVariant,
    Trigger,
    apply_trigger_ids,
    head_satisfied,
)

DEFAULT_MAX_STEPS = 10_000

#: Budget-check cadence inside the firing loop (the round boundary is
#: always checked; this bounds how long a huge round can overrun).
_STEP_CHECK_EVERY = 64

# Backwards-compatible alias: the discovery pass moved to
# repro.chase.delta so the deciders can share it.
_incremental_triggers = delta_triggers


def resource_stats(
    budget: Optional[Budget], scheduler: Optional[RoundScheduler]
) -> dict:
    """The ``ChaseResult.resource`` payload: the budget's accounting
    plus the scheduler's fault counters whenever anything failed."""
    out: dict = {}
    if budget is not None:
        out.update(budget.stats())
    if scheduler is not None and scheduler.fault_stats.get("pool_failures"):
        out["executor"] = dict(scheduler.fault_stats)
    return out


def _drive(
    instance: Instance,
    rules: List[TGD],
    variant: str,
    max_steps: int,
    factory: NullFactory,
    budget: Optional[Budget],
    engine: DeltaEngine,
    round_scheduler: RoundScheduler,
    owns_scheduler: bool,
    steps: List[ChaseStep],
    rng=None,
    ckpt: Optional[Checkpointer] = None,
    checkpoint_every: int = 1,
    pending: Sequence[Trigger] = (),
    rounds_done: int = 0,
    state_sink: Optional[dict] = None,
) -> ChaseResult:
    """The shared round loop behind :func:`run_chase` and
    :func:`resume_chase`: materialize a round, apply it in canonical
    order, checkpoint at round boundaries when a checkpointer is
    attached.  ``pending`` replays the not-yet-applied remainder of an
    interrupted round first (resume).  ``state_sink``, when given, is
    filled at the stop with the leftover in-memory evaluation state
    (``pending``/``rounds``/``terminated``/``stop_reason``) so a
    long-lived session (:mod:`repro.chase.incremental`) can continue
    the run without re-loading a checkpoint."""
    restricted = variant == ChaseVariant.RESTRICTED
    rounds = rounds_done

    def finish(terminated: bool, reason: str,
               leftover: Sequence[Trigger] = ()) -> ChaseResult:
        if ckpt is not None:
            ckpt.checkpoint(engine, steps, leftover, rounds,
                            terminated, reason)
        if state_sink is not None:
            state_sink["pending"] = tuple(leftover)
            state_sink["rounds"] = rounds
            state_sink["terminated"] = terminated
            state_sink["stop_reason"] = reason
        return ChaseResult(
            instance, terminated, steps, variant, max_steps,
            stop_reason=reason,
            resource=resource_stats(budget, round_scheduler),
        )

    def fire(round_triggers, probes):
        """Apply one materialized round; returns ``(stop, fired)``
        where ``stop`` is a budget-stopped result (checkpointed with
        the round's unapplied remainder) or None."""
        fired = 0
        # Countdown rather than ``fired % _STEP_CHECK_EVERY``: the
        # governed arm pays one decrement-and-test per applied
        # trigger, keeping budget overhead inside the bench gate.
        check_in = _STEP_CHECK_EVERY if budget is not None else -1
        for position, trigger in enumerate(round_triggers):
            if restricted:
                if probes is not None and probes[position]:
                    # Satisfied triggers never become unsatisfied,
                    # so skipping them for good — they are already
                    # in the engine's fired-key set — is safe.
                    continue
                if head_satisfied(trigger, instance):
                    continue
            new_ordinals = apply_trigger_ids(trigger, instance, factory)
            steps.append(ChaseStep(trigger, instance, new_ordinals))
            engine.notify(new_ordinals)
            fired += 1
            if len(steps) >= max_steps:
                return finish(False, STOP_STEP_BUDGET,
                              round_triggers[position + 1:]), fired
            check_in -= 1
            if not check_in:
                check_in = _STEP_CHECK_EVERY
                reason = budget.check(facts=len(instance))
                if reason is not None:
                    return finish(False, reason,
                                  round_triggers[position + 1:]), fired
        return None, fired

    try:
        if len(steps) >= max_steps:
            # A resumed run whose step budget was not raised: stop
            # where the interrupted run stopped, byte-identically.
            return finish(False, STOP_STEP_BUDGET, pending)
        if pending:
            # Resume mid-round: replay the interrupted round's
            # remainder.  Restricted head checks run serially against
            # the current instance — exactly what the uninterrupted
            # engine does for triggers whose round-start probe came
            # back False, and satisfaction is monotone, so the firing
            # sequence is byte-identical.
            stop, _ = fire(tuple(pending), None)
            if stop is not None:
                return stop
            if budget is not None:
                budget.note_round()
            rounds += 1
            if ckpt is not None and not rounds % checkpoint_every:
                ckpt.checkpoint(engine, steps, (), rounds)
        while True:
            if budget is not None:
                reason = budget.check(facts=len(instance))
                if reason is not None:
                    return finish(False, reason)
            try:
                round_triggers = engine.next_round()
            except BudgetExceededError as exc:
                # Discovery is read-only and rolls its dedup state
                # back: instance and engine are still the round-start
                # state, i.e. round-consistent (and resumable).
                return finish(False, exc.stop_reason or STOP_STEP_BUDGET)
            if rng is not None:
                rng.shuffle(round_triggers)
            # The batched *apply* half of restricted rounds: probe head
            # satisfaction for the whole materialized round against the
            # round-start instance through the scheduler's executor.
            # Satisfaction is monotone (instances only grow), so a
            # True probe is a certain skip; a False probe is re-checked
            # serially at its canonical turn against the current
            # instance — the firing sequence is byte-identical to the
            # fully serial engine's.
            probes = (
                engine.head_probes(round_triggers) if restricted else None
            )
            stop, fired_this_round = fire(round_triggers, probes)
            if stop is not None:
                return stop
            if budget is not None:
                budget.note_round()
            rounds += 1
            if fired_this_round == 0:
                return finish(True, STOP_FIXPOINT)
            if ckpt is not None and not rounds % checkpoint_every:
                ckpt.checkpoint(engine, steps, (), rounds)
    finally:
        if owns_scheduler:
            round_scheduler.close()


def run_chase(
    database: Instance,
    rules: Sequence[TGD],
    variant: str = ChaseVariant.SEMI_OBLIVIOUS,
    max_steps: int = DEFAULT_MAX_STEPS,
    null_factory: Optional[NullFactory] = None,
    order_seed: Optional[int] = None,
    scheduler: SchedulerSpec = None,
    workers: Optional[int] = None,
    planner: str = "heuristic",
    kernel: str = "tuple",
    budget: Optional[Budget] = None,
    save: Optional[str] = None,
    checkpoint_every: int = 1,
    overwrite: bool = False,
) -> ChaseResult:
    """Run a fair ``variant`` chase of ``rules`` on ``database``.

    ``database`` is not mutated.  ``max_steps`` bounds the number of
    trigger applications; on exhaustion the result has
    ``terminated=False``.

    ``budget`` (a :class:`repro.runtime.budget.Budget`) adds wall-clock
    deadline, round/fact caps, a memory ceiling, and cooperative
    cancellation on top of ``max_steps``.  It is checked at every round
    boundary and every few trigger applications; a tripped budget stops
    the run *between* applications and returns a well-formed partial
    result whose ``stop_reason`` names the limit — the instance is
    always round-consistent (database plus exactly the recorded steps),
    never a mid-trigger state.

    ``planner`` selects the join-order policy for trigger discovery
    (:mod:`repro.query.planner`): the default ``"heuristic"`` is the
    canonical fair order; ``"cost"`` plans the rest-of-body joins from
    the instance's columnar statistics — the same trigger *sets* fire,
    but discovery order within a round (and hence null numbering) may
    permute, so oblivious/semi-oblivious results are equal up to null
    renaming and restricted results are a different (equally valid)
    fair sequence.  Head-satisfaction probes are cost-planned under
    either policy (pure existence tests — order never shows).

    ``kernel`` selects the execution tier for trigger discovery (see
    :data:`repro.query.kernels.KERNELS`): ``"vector"`` runs rest-of-
    body joins as columnar batch hash joins, ``"auto"`` does so only
    for fat rounds (many candidate rows per pivot).  The batch join is
    order-exact, so every kernel produces a **byte-identical** chase —
    same facts in the same order, same trigger keys, same null
    numbering; only speed changes.  (``"wcoj"`` is accepted and falls
    back to tuple discovery — rule bodies are pivot-seeded joins, not
    free multiway intersections.)

    For the oblivious and semi-oblivious variants, the paper recalls
    that all fair sequences agree on termination (CT_∀ = CT_∃), so the
    engine's fixed order is without loss of generality; pass an
    ``order_seed`` to shuffle the per-round trigger order and observe
    this empirically (``tests/test_sequences.py``).  The restricted
    chase is genuinely order-sensitive; the default order is one
    canonical fair sequence.

    ``scheduler`` / ``workers`` select the round executor
    (:mod:`repro.chase.scheduler`): ``"serial"`` (default),
    ``"threaded"``, ``"process"``, or a ready
    :class:`~repro.chase.scheduler.RoundScheduler` (reused, not
    closed); ``workers=N`` alone selects the threaded executor.
    Every executor produces a byte-identical result — same
    facts in the same order, same trigger keys, same null numbering —
    because only the read-only discovery half of a round is batched and
    the merge applies firings in canonical round order.

    ``save`` names a directory to checkpoint the run into (a durable
    fact store plus the evaluation state, see
    :mod:`repro.chase.checkpoint`), every ``checkpoint_every`` rounds
    and always at the stop; :func:`resume_chase` continues such a run
    from exactly where it stopped, byte-identically to the
    uninterrupted run.  ``overwrite`` replaces an existing store at
    that path.  Incompatible with ``order_seed`` (a shuffled order is
    not reconstructible) and with a custom ``null_factory`` (resume
    derives null numbering from the step log, which assumes the
    default counter).
    """
    if variant not in ChaseVariant.ALL:
        raise ValueError(f"unknown chase variant {variant!r}")
    if max_steps <= 0:
        raise ValueError(f"max_steps must be positive, got {max_steps}")
    if planner not in ("heuristic", "cost"):
        raise ValueError(f"unknown planner policy {planner!r}")
    from ..query.kernels import KERNELS

    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {KERNELS}"
        )
    if save is not None:
        if order_seed is not None:
            raise ValueError(
                "save is incompatible with order_seed: a shuffled "
                "round order cannot be reconstructed at resume"
            )
        if null_factory is not None:
            raise ValueError(
                "save requires the default null numbering: resume "
                "derives the null counter from the step log"
            )
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
    rules = list(rules)
    validate_program(rules)
    instance = Instance(database)
    instance.order_policy = planner
    instance.kernel = kernel
    factory = null_factory or NullFactory()
    round_scheduler, owns_scheduler = resolve_scheduler(scheduler, workers)
    if budget is not None:
        budget.start()
    engine = DeltaEngine(
        rules,
        instance,
        key=lambda trigger: trigger.key(variant),
        scheduler=round_scheduler,
        variant=variant,
        budget=budget,
    )
    steps: List[ChaseStep] = []
    rng = None
    if order_seed is not None:
        import random

        rng = random.Random(order_seed)
    ckpt = None
    try:
        if save is not None:
            engine.track_fired()
            ckpt = Checkpointer.create(
                save, instance, rules, variant, planner, max_steps,
                overwrite=overwrite,
            )
            # Checkpoint 0: the database and the rule symbols — also
            # the hydration source for process-executor worker mirrors
            # (they open the store instead of receiving a full ship).
            ckpt.checkpoint(engine, steps)
            engine.store_ref = (save, ckpt.writer.facts)
    except BaseException:
        if owns_scheduler:
            round_scheduler.close()
        raise
    return _drive(
        instance, rules, variant, max_steps, factory, budget, engine,
        round_scheduler, owns_scheduler, steps, rng=rng, ckpt=ckpt,
        checkpoint_every=checkpoint_every,
    )


def resume_chase(
    path: str,
    rules: Optional[Sequence[TGD]] = None,
    *,
    scheduler: SchedulerSpec = None,
    workers: Optional[int] = None,
    budget: Optional[Budget] = None,
    max_steps: Optional[int] = None,
    save: bool = True,
    checkpoint_every: int = 1,
) -> ChaseResult:
    """Continue a checkpointed chase from a store directory.

    The store carries everything a continuation needs — facts, symbol
    ids, applied steps, fired keys, frontier, null counter, the rules
    themselves — so ``rules`` is optional; when supplied it is checked
    against the checkpointed program (by string form) and mismatches
    are refused.  The continued run is byte-identical to the
    uninterrupted run: same facts in the same order, same trigger
    keys, same null numbering, same provenance — on every executor.

    ``max_steps`` (default: the checkpointed value) must be raised
    above the recorded step count to make progress after a
    ``step_budget`` stop; ``budget`` is a *fresh* budget for this leg
    (deadlines restart — wall-clock spent before the stop is not
    carried over).  ``save=False`` continues in memory without
    advancing the on-disk checkpoint.  A store whose run already
    terminated returns the finished result immediately.
    """
    from ..storage.durable import open_store

    store = open_store(path)
    state = load_state(path, store)
    stored_rules = list(state["rules"])
    if rules is not None:
        if [str(r) for r in rules] != [str(r) for r in stored_rules]:
            raise ValueError(
                f"{path}: supplied rules differ from the "
                f"checkpointed program"
            )
    rules = stored_rules
    variant = state["variant"]
    if max_steps is None:
        max_steps = state["max_steps"]
    store.ensure_all()
    instance = Instance(store=store)
    instance.order_policy = state["planner"]
    steps = [
        ChaseStep(
            Trigger.from_ids(rules[ri], ri, ids, instance),
            instance, ords,
        )
        for ri, ids, ords in state["steps"]
    ]
    if state["terminated"]:
        return ChaseResult(
            instance, True, steps, variant, max_steps,
            stop_reason=state["stop_reason"] or STOP_FIXPOINT,
        )
    factory = NullFactory(start=state["null_next"])
    round_scheduler, owns_scheduler = resolve_scheduler(scheduler, workers)
    if budget is not None:
        budget.start()
    try:
        engine = DeltaEngine(
            rules,
            instance,
            key=lambda trigger: trigger.key(variant),
            scheduler=round_scheduler,
            variant=variant,
            budget=budget,
            fired=state["fired"],
            frontier=state["frontier"],
        )
        engine.store_ref = (path, state["facts"])
        ckpt = None
        if save:
            engine.track_fired()
            ckpt = Checkpointer.attach(path, instance, state, max_steps)
        pending = tuple(
            Trigger.from_ids(rules[ri], ri, tuple(ids), instance)
            for ri, ids in state["pending"]
        )
    except BaseException:
        if owns_scheduler:
            round_scheduler.close()
        raise
    return _drive(
        instance, rules, variant, max_steps, factory, budget, engine,
        round_scheduler, owns_scheduler, steps, ckpt=ckpt,
        checkpoint_every=checkpoint_every, pending=pending,
        rounds_done=state["rounds"],
    )


def oblivious_chase(
    database: Instance,
    rules: Sequence[TGD],
    max_steps: int = DEFAULT_MAX_STEPS,
    scheduler: SchedulerSpec = None,
    workers: Optional[int] = None,
    planner: str = "heuristic",
    kernel: str = "tuple",
    budget: Optional[Budget] = None,
) -> ChaseResult:
    """The oblivious chase: every distinct body homomorphism fires."""
    return run_chase(
        database, rules, ChaseVariant.OBLIVIOUS, max_steps,
        scheduler=scheduler, workers=workers, planner=planner,
        kernel=kernel, budget=budget,
    )


def semi_oblivious_chase(
    database: Instance,
    rules: Sequence[TGD],
    max_steps: int = DEFAULT_MAX_STEPS,
    scheduler: SchedulerSpec = None,
    workers: Optional[int] = None,
    planner: str = "heuristic",
    kernel: str = "tuple",
    budget: Optional[Budget] = None,
) -> ChaseResult:
    """The semi-oblivious chase: homomorphisms agreeing on the frontier
    are indistinguishable."""
    return run_chase(
        database, rules, ChaseVariant.SEMI_OBLIVIOUS, max_steps,
        scheduler=scheduler, workers=workers, planner=planner,
        kernel=kernel, budget=budget,
    )


def restricted_chase(
    database: Instance,
    rules: Sequence[TGD],
    max_steps: int = DEFAULT_MAX_STEPS,
    scheduler: SchedulerSpec = None,
    workers: Optional[int] = None,
    planner: str = "heuristic",
    kernel: str = "tuple",
    budget: Optional[Budget] = None,
) -> ChaseResult:
    """The restricted (standard) chase: fire only when the head is not
    yet satisfied."""
    return run_chase(
        database, rules, ChaseVariant.RESTRICTED, max_steps,
        scheduler=scheduler, workers=workers, planner=planner,
        kernel=kernel, budget=budget,
    )
