"""Chase outcomes: results, applied-step records, and model checks."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..model import (
    Atom,
    Instance,
    TGD,
    instance_homomorphism,
)
from .triggers import Trigger


class ChaseStep:
    """One applied trigger and the facts it produced.

    The produced facts are recorded as log ordinals into the result
    instance and materialized as Atoms lazily on first access — the
    engine's apply loop stays int-only, and runs whose steps are never
    inspected (benchmarks, deciders) never pay for Atom construction.
    """

    __slots__ = ("trigger", "_source", "_ordinals", "_new_facts")

    def __init__(
        self,
        trigger: Trigger,
        source: Instance,
        ordinals: Sequence[int],
    ):
        self.trigger = trigger
        self._source = source
        self._ordinals = tuple(ordinals)
        self._new_facts: Optional[Sequence[Atom]] = None

    @property
    def new_facts(self) -> Sequence[Atom]:
        """The facts this step added, in head order (lazily decoded)."""
        facts = self._new_facts
        if facts is None:
            atom_at = self._source.atom_at
            facts = tuple(atom_at(o) for o in self._ordinals)
            self._new_facts = facts
        return facts

    def __repr__(self) -> str:
        produced = ", ".join(str(f) for f in self.new_facts)
        return f"ChaseStep({self.trigger.rule.label or self.trigger.rule_index}: {produced})"


class ChaseResult:
    """The outcome of a (budgeted) chase run.

    ``terminated`` is True iff the chase reached a fixpoint — no
    applicable trigger remains.  When False the run stopped on a
    resource limit; ``stop_reason`` (one of
    :data:`repro.runtime.budget.STOP_REASONS`) says which, and
    ``resource`` carries the run's resource accounting (elapsed time,
    rounds, memory, executor-degradation counters).  Nothing is
    implied about the true (in)finiteness of the chase, which is
    exactly why the paper's deciders exist.

    Budget-stopped results are always **round-consistent**: engines
    only check budgets between trigger applications, so the instance
    is exactly the database plus the facts of the recorded ``steps`` —
    never a half-applied trigger.
    """

    __slots__ = (
        "instance",
        "terminated",
        "steps",
        "variant",
        "max_steps",
        "stop_reason",
        "resource",
        "_provenance",
        "_provenance_built",
    )

    def __init__(
        self,
        instance: Instance,
        terminated: bool,
        steps: List[ChaseStep],
        variant: str,
        max_steps: int,
        stop_reason: Optional[str] = None,
        resource: Optional[Dict[str, object]] = None,
    ):
        self.instance = instance
        self.terminated = terminated
        self.steps = steps
        self.variant = variant
        self.max_steps = max_steps
        # Legacy constructors (terminated/exhausted only) still get a
        # well-formed reason.
        if stop_reason is None:
            stop_reason = "fixpoint" if terminated else "step_budget"
        self.stop_reason = stop_reason
        self.resource: Dict[str, object] = resource or {}
        # fact -> creating step, built lazily on the first provenance
        # lookup (and extended if steps were appended since).
        self._provenance: Dict[Atom, ChaseStep] = {}
        self._provenance_built = 0

    @property
    def step_count(self) -> int:
        """How many triggers were applied."""
        return len(self.steps)

    @property
    def exhausted(self) -> bool:
        """True iff the run stopped on budget, not on a fixpoint."""
        return not self.terminated

    def provenance(self, fact: Atom) -> Optional[ChaseStep]:
        """The step that created ``fact``, or ``None`` for database
        facts (and facts not in the result).

        Backed by a lazily built fact→step map, so batch provenance
        queries (the E-suite runs one per derived fact) cost O(1) each
        after a single O(steps) build instead of O(steps) per lookup.
        """
        built = self._provenance_built
        steps = self.steps
        if built < len(steps):
            table = self._provenance
            for step in steps[built:]:
                for produced in step.new_facts:
                    table.setdefault(produced, step)
            self._provenance_built = len(steps)
        return self._provenance.get(fact)

    def facts_by_rule(self) -> Dict[str, int]:
        """How many facts each rule contributed (by label or index)."""
        out: Dict[str, int] = {}
        for step in self.steps:
            rule = step.trigger.rule
            key = rule.label or f"rule{step.trigger.rule_index}"
            out[key] = out.get(key, 0) + len(step._ordinals)
        return out

    def __repr__(self) -> str:
        status = (
            "terminated" if self.terminated else f"stopped:{self.stop_reason}"
        )
        return (
            f"ChaseResult({self.variant}, {status}, "
            f"{self.step_count} steps, {len(self.instance)} facts)"
        )

    # -- semantic checks -----------------------------------------------------

    def satisfies(self, rules: Sequence[TGD]) -> bool:
        """True iff the result instance is a model of ``rules``.

        Holds for every terminated chase; used by tests as the paper's
        property (1) of chase results.
        """
        from ..cq.universality import is_model

        return is_model(self.instance, rules)

    def maps_into(self, model: Instance) -> bool:
        """True iff the result embeds homomorphically into ``model`` —
        the universality property (2) of chase results."""
        return instance_homomorphism(self.instance, model) is not None
