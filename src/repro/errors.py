"""Library-wide exception types."""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all library errors."""


class UnsupportedClassError(ReproError):
    """The requested decision procedure does not cover the given rules.

    All-instance chase termination is undecidable in general (Gogacz &
    Marcinkowski); the paper's procedures require guardedness.  Callers
    may opt into the incomplete oracle instead.
    """


class BudgetExceededError(ReproError):
    """A configured resource budget (types, steps) was exhausted.

    The guarded decision procedure is 2EXPTIME-complete, so worst-case
    inputs legitimately explode; the budget turns that into a clean
    failure instead of an apparent hang.
    """
