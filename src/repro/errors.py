"""Library-wide exception types."""

from __future__ import annotations

from typing import Dict, Optional


class ReproError(Exception):
    """Base class of all library errors."""


class UnsupportedClassError(ReproError):
    """The requested decision procedure does not cover the given rules.

    All-instance chase termination is undecidable in general (Gogacz &
    Marcinkowski); the paper's procedures require guardedness.  Callers
    may opt into the incomplete oracle instead.
    """


class BudgetExceededError(ReproError):
    """A configured resource budget was exhausted.

    The guarded decision procedure is 2EXPTIME-complete, so worst-case
    inputs legitimately explode; the budget turns that into a clean
    failure instead of an apparent hang.

    ``stop_reason`` (one of
    :data:`repro.runtime.budget.STOP_REASONS`, when known) says *which*
    limit tripped, and ``stats`` carries the resource accounting at the
    moment of the stop — the CLI renders both in its one-line summary.
    """

    def __init__(
        self,
        message: str,
        stop_reason: Optional[str] = None,
        stats: Optional[Dict[str, object]] = None,
    ):
        super().__init__(message)
        self.stop_reason = stop_reason
        self.stats = stats or {}
