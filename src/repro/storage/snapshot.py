"""Watermark-bounded snapshot views over an append-only fact store.

The columnar core never mutates a row in place: the fact log, each
relation's row list, and every ``(pred_id, position, term_id)`` index
bucket only ever *append* (see :mod:`repro.storage.base`).  A
consistent read view of a growing instance therefore needs exactly one
number — a **row-count watermark** ``W``: the instance as it existed
when its fact log held ``W`` rows.  :class:`SnapshotFactStore` is a
:class:`~repro.storage.base.FactStore` whose every accessor honors
that bound, which is what lets the query server
(:mod:`repro.serve`) answer requests over an instance *while a chase
extension is appending to it* — readers pinned to a pre-extension
watermark can never observe a partial round.

How the bound is enforced
-------------------------

Within the fact log, within each relation's row list, and within each
index bucket, rows appear in strictly increasing ordinal order (they
are appended exactly when the fact is appended).  The number of rows
of a list that belong to the snapshot is therefore found by *binary
search* on the owning relation's ``row -> ordinal`` membership dict —
computed lazily on first touch of each list and cached, so a snapshot
costs O(1) to create and O(log rows) per distinct probe key touched.

Concurrency contract (the GIL-safety rules)
-------------------------------------------

A snapshot may be read from any number of threads while one writer
thread appends to the base store, provided:

* the snapshot is **created at a quiescent point** — no write in
  flight (the server publishes a fresh snapshot only after an
  extension completes, under the ingest lock);
* reader code only performs dict ``.get``/``[]`` lookups and list
  indexing below a precomputed bound on the writer-shared structures —
  **never** iterates a dict the writer may be inserting into.  Every
  override below follows that rule (e.g. ``nonempty_pids`` walks the
  predicate-id list captured at creation, and ``domain_ids`` is
  rebuilt from the bounded log prefix rather than shared).

Interning is the one mutation a query could otherwise smuggle in:
resolving a plan for a query that mentions an unseen constant or
predicate would allocate a fresh id in the *shared* tables, perturbing
the writer's deterministic id assignment.  Snapshots therefore never
intern into the base: unknown symbols get snapshot-local **negative**
ids (real ids are non-negative, so a local id matches no stored row —
the correct semantics for a symbol the snapshot has never seen).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Tuple

from ..model.atoms import Predicate
from .base import _EMPTY_ROWS, FactStore, Row


class _BoundedRows:
    """A length-bounded, zero-copy view of an append-only row list.

    ``__len__`` is the number of rows with ordinal below the snapshot
    watermark, computed lazily by binary search on the relation's
    membership dict (rows within one list are in increasing ordinal
    order) and cached.  Indexing is a passthrough — positions below
    the bound are immutable.
    """

    __slots__ = ("_rows", "_member", "_watermark", "_n")

    def __init__(self, rows: List[Row], member: Dict[Row, int],
                 watermark: int):
        self._rows = rows
        self._member = member
        self._watermark = watermark
        self._n: Optional[int] = None

    def __len__(self) -> int:
        n = self._n
        if n is None:
            rows = self._rows
            member = self._member
            watermark = self._watermark
            lo, hi = 0, len(rows)
            while lo < hi:
                mid = (lo + hi) // 2
                if member[rows[mid]] < watermark:
                    lo = mid + 1
                else:
                    hi = mid
            n = self._n = lo
        return n

    def __getitem__(self, i):
        if isinstance(i, slice):
            return self._rows[:len(self)][i]
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(i)
        return self._rows[i]

    def __iter__(self) -> Iterator[Row]:
        rows = self._rows
        for i in range(len(self)):
            yield rows[i]

    def __bool__(self) -> bool:
        return len(self) > 0


class _BoundedRowMap:
    """A ``.get``-compatible view over ``rows_by_pid`` / ``index``.

    Values are cached :class:`_BoundedRows`; keys whose bucket is
    empty at the watermark answer the caller's default, exactly like a
    missing key (so selectivity comparisons and emptiness checks see
    the watermark state).  ``member_of`` maps a key to the owning
    relation's membership dict (buckets bisect against ordinals).
    """

    __slots__ = ("_source", "_member_of", "_watermark", "_cache")

    def __init__(self, source: Dict, member_of, watermark: int):
        self._source = source
        self._member_of = member_of
        self._watermark = watermark
        self._cache: Dict = {}

    def get(self, key, default=None):
        view = self._cache.get(key)
        if view is None:
            raw = self._source.get(key)
            if raw is None:
                return default
            view = _BoundedRows(raw, self._member_of(key),
                                self._watermark)
            self._cache[key] = view
        return len(view) and view or default

    def __getitem__(self, key):
        view = self.get(key)
        if view is None:
            raise KeyError(key)
        return view


class _BoundedMemberMap:
    """The ``member_by_pid`` view: ``.get(pid)`` answers a lazily built
    :class:`_BoundedMember` for relations nonempty at the watermark and
    the caller's default otherwise (``ResolvedStep`` binds this
    ``.get`` once per cached plan, so it must behave like the dict it
    replaces)."""

    __slots__ = ("_store", "_cache")

    def __init__(self, store: "SnapshotFactStore"):
        self._store = store
        self._cache: Dict[int, "_BoundedMember"] = {}

    def get(self, pid, default=None):
        view = self._cache.get(pid)
        if view is None:
            store = self._store
            member = store.base.member_by_pid.get(pid)
            if member is None:
                return default
            rows = store.rows_by_pid.get(pid)
            if rows is None:
                return default
            view = _BoundedMember(member, rows, store.watermark)
            self._cache[pid] = view
        return view

    def __getitem__(self, pid) -> "_BoundedMember":
        view = self.get(pid)
        if view is None:
            raise KeyError(pid)
        return view


class _BoundedMember:
    """A watermark-bounded view of one relation's ``row -> ordinal``
    membership dict: lookups answer only rows whose ordinal is below
    the watermark; ``values()`` walks the bounded row list instead of
    iterating the (writer-shared) dict."""

    __slots__ = ("_member", "_rows", "_watermark")

    def __init__(self, member: Dict[Row, int], rows: _BoundedRows,
                 watermark: int):
        self._member = member
        self._rows = rows
        self._watermark = watermark

    def get(self, row, default=None):
        ordinal = self._member.get(row)
        if ordinal is None or ordinal >= self._watermark:
            return default
        return ordinal

    def __getitem__(self, row) -> int:
        ordinal = self.get(row)
        if ordinal is None:
            raise KeyError(row)
        return ordinal

    def __contains__(self, row) -> bool:
        return self.get(row) is not None

    def __len__(self) -> int:
        return len(self._rows)

    def values(self) -> List[int]:
        member = self._member
        return [member[row] for row in self._rows]


class SnapshotFactStore(FactStore):
    """A read-only, watermark-bounded view of another store.

    Shares the base store's structures zero-copy (symbol table, fact
    log, row lists, indexes) and bounds every accessor at the
    creation-time row count.  Mutation raises; unseen predicates and
    terms resolve to snapshot-local negative ids (matching nothing)
    instead of interning into the shared tables.

    Create one only at a quiescent point — while no writer is
    appending — typically via :meth:`Instance.snapshot
    <repro.model.instances.Instance.snapshot>`.  Once created it may
    be read concurrently with later writes to the base store.
    """

    kind = "snapshot"

    __slots__ = ("base", "watermark", "_pids_at_creation",
                 "_domain_at", "_local_ids", "_local_lock")

    def __init__(self, base: FactStore, watermark: Optional[int] = None):
        if isinstance(base, SnapshotFactStore):
            if watermark is None:
                watermark = base.watermark
            elif watermark > base.watermark:
                raise ValueError(
                    f"watermark {watermark} exceeds the base snapshot's "
                    f"{base.watermark}"
                )
            base = base.base
        base.ensure_all()
        size = base.size()
        if watermark is None:
            watermark = size
        if not 0 <= watermark <= size:
            raise ValueError(
                f"watermark {watermark} out of range for a store of "
                f"{size} facts"
            )
        self.base = base
        self.watermark = watermark
        # Shared read-only (for this view) structures.
        self.symbols = base.symbols
        self.pred_ids = base.pred_ids
        self.pred_objs = base.pred_objs
        self.log_pids = base.log_pids
        self.log_rows = base.log_rows
        self.pos_card = base.pos_card  # advisory planner stats; see below
        # Captured at the (quiescent) creation point: every relation
        # that could possibly be nonempty at the watermark.  Readers
        # never iterate the live dicts the writer inserts into.
        self._pids_at_creation: Tuple[int, ...] = tuple(base.rows_by_pid)
        member_by_pid = base.member_by_pid
        self.rows_by_pid = _BoundedRowMap(
            base.rows_by_pid, member_by_pid.__getitem__, watermark
        )
        self.index = _BoundedRowMap(
            base.index, lambda key: member_by_pid[key[0]], watermark
        )
        self.member_by_pid = _BoundedMemberMap(self)
        # NB: ``domain_ids`` is a property on this class (shadowing the
        # inherited slot) — rebuilt lazily from the bounded log prefix.
        self._domain_at: Optional[Dict[int, None]] = None
        # term/predicate -> snapshot-local negative id, for symbols the
        # base has never interned (they can match no stored row).
        self._local_ids: Dict[object, int] = {}
        self._local_lock = threading.Lock()

    # -- hydration hooks ----------------------------------------------------

    def ensure_pred(self, pid: int) -> None:
        pass

    def ensure_all(self) -> None:
        pass

    def loaded(self) -> bool:
        return True

    # -- interning (never into the shared tables) ---------------------------

    def _local_id(self, obj: object) -> int:
        with self._local_lock:
            lid = self._local_ids.get(obj)
            if lid is None:
                lid = -len(self._local_ids) - 1
                self._local_ids[obj] = lid
            return lid

    def pred_id(self, predicate: Predicate) -> int:
        pid = self.pred_ids.get(predicate)
        if pid is not None:
            return pid
        return self._local_id(predicate)

    def pred_id_get(self, predicate: Predicate) -> Optional[int]:
        return self.pred_ids.get(predicate)

    def term_id(self, term: object) -> int:
        """The id of ``term`` without interning: the base's id when it
        has one, else a snapshot-local negative id."""
        tid = self.symbols.get(term)
        if tid is not None:
            return tid
        return self._local_id(term)

    def prime_predicate(self, predicate: Predicate, pid: int) -> None:
        raise TypeError("snapshot stores are read-only")

    # -- mutation (refused) --------------------------------------------------

    def add_row(self, pid: int, row: Row) -> Optional[int]:
        raise TypeError(
            "snapshot stores are read-only: add facts to the base "
            "instance and take a fresh snapshot"
        )

    # -- bounded accessors ---------------------------------------------------

    def size(self) -> int:
        return self.watermark

    def row_at(self, ordinal: int) -> Tuple[int, Row]:
        if ordinal >= self.watermark:
            raise IndexError(
                f"ordinal {ordinal} is beyond the snapshot watermark "
                f"{self.watermark}"
            )
        return self.log_pids[ordinal], self.log_rows[ordinal]

    def rows_of(self, pid: int) -> List[Row]:
        return self.rows_by_pid.get(pid, _EMPTY_ROWS)

    def probe_rows(self, pid: int, position: int, tid: int) -> List[Row]:
        return self.index.get((pid, position, tid), _EMPTY_ROWS)

    def member_rows(self, pid: int):
        return self.member_by_pid.get(pid, _EMPTY_MEMBER_VIEW)

    def ordinals_of(self, pid: int) -> List[int]:
        return self.member_rows(pid).values()

    def count_rows(self, pid: int) -> int:
        rows = self.rows_by_pid.get(pid)
        return len(rows) if rows else 0

    def distinct_at(self, pid: int, position: int) -> int:
        # Advisory: the base's live counter, which may run slightly
        # ahead of the watermark mid-extension.  It is only consumed by
        # the cost planner's join-order choice, so it can never change
        # an answer set — only the enumeration order.
        return self.pos_card.get((pid, position), 0)

    def nonempty_pids(self) -> List[int]:
        count = self.count_rows
        return [pid for pid in self._pids_at_creation if count(pid)]

    @property
    def domain_ids(self) -> Dict[int, None]:
        """Active-domain term ids at the watermark, in first-occurrence
        order — rebuilt from the bounded log prefix (the base's live
        domain dict cannot be iterated while a writer inserts)."""
        domain = self._domain_at
        if domain is None:
            domain = {}
            log_rows = self.log_rows
            for ordinal in range(self.watermark):
                for tid in log_rows[ordinal]:
                    domain[tid] = None
            self._domain_at = domain
        return domain

    def clone(self) -> FactStore:
        """An independent in-memory store holding exactly the bounded
        prefix (same pids, same rows, same order)."""
        out = FactStore()
        out.symbols = self.symbols.clone()
        seen_pids: Dict[int, None] = {}
        for ordinal in range(self.watermark):
            seen_pids[self.log_pids[ordinal]] = None
        for pid in seen_pids:
            out.prime_predicate(self.pred_objs[pid], pid)
        for ordinal in range(self.watermark):
            out.add_row(self.log_pids[ordinal], self.log_rows[ordinal])
        return out

    def __repr__(self) -> str:
        return (
            f"SnapshotFactStore(<{self.watermark} of "
            f"{len(self.log_pids)} facts>)"
        )


class _EmptyMember:
    """The bounded-member view of a relation absent at the watermark."""

    __slots__ = ()

    def get(self, row, default=None):
        return default

    def __contains__(self, row) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def values(self) -> List[int]:
        return []


_EMPTY_MEMBER_VIEW = _EmptyMember()
