"""The write-ahead ingest journal: crash-recoverable ``POST /facts``.

A served resident backed by a durable store directory keeps an
``ingest.wal`` file beside the fact data.  Every ingest appends its
*parsed* delta — flat int rows over a record-local string table, plus
the request's ``ingest_id`` idempotency key — and the record is
``fsync``\\ ed **before** the chase leg runs, so the window between
"the client was (about to be) acked" and "the covering chase
checkpoint committed" is durable:

* A process crash (``kill -9``, OOM, power) mid-ingest loses nothing:
  ``serve --db`` restart replays every journaled-but-unacknowledged
  delta through :meth:`~repro.chase.incremental.ChaseSession.extend`,
  and the existing resume guarantees make the result byte-identical
  to the uninterrupted run (``ci/check_chaos.py`` holds the server to
  this on all three executors).
* A client that never saw its response may retry with the same
  ``ingest_id``: the effect is applied **at most once**, and the retry
  receives the recorded response (marked ``"replayed": true``).

Record format (all fixed-width fields little-endian)::

    record  := magic "RWAL" | kind u8 ('D' | 'A') | len u32 | crc32 u32
               | payload[len]
    DELTA   := id_len u16 | ingest_id utf8
               | n_strings u16 | (s_len u16 | utf8)*     # local table
               | n_facts u32 | n_ints u32 | ints i64*    # flat rows
    ACK     := id_len u16 | ingest_id utf8 | json_len u32 | utf8

Each DELTA row is ``[pred_sid, arity, term_sid...]`` into the record's
own string table (ground null-free facts carry only constants), so a
record is self-contained and the encoding stays pure ints after the
one-time string section.  A crash can tear at most the final record;
:meth:`IngestJournal.load` verifies length and CRC sequentially and
**truncates** the file at the first bad byte instead of refusing the
store — a torn tail is an ingest the client was never acked for, and
its retry (same ``ingest_id``) applies it cleanly.

An ACK record marks a delta as *covered*: the chase leg finished and
its round-boundary checkpoint committed (``extend`` checkpoints at
the stop before returning), so replay must skip it, and the recorded
response is what a retried ``ingest_id`` receives.  Compaction —
triggered once the file outgrows ``compact_bytes`` — rewrites the
journal atomically (tmp + ``os.replace``) keeping only the bounded
ACK window (:data:`MAX_ACKS` most recent, the idempotency memory) and
any still-uncovered DELTA records, i.e. journal entries are truncated
once the covering chase checkpoint commits.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..model import Atom, Constant, Predicate
from ..runtime import faults

JOURNAL_FILE = "ingest.wal"

_MAGIC = b"RWAL"
_KIND_DELTA = ord("D")
_KIND_ACK = ord("A")
_HEADER = struct.Struct("<4sBII")  # magic, kind, payload len, crc32

#: Idempotency window: how many acknowledged ``ingest_id`` →
#: response pairs survive compaction.  A retry older than the window
#: re-applies its delta — harmless for content (base facts dedup), but
#: the response is freshly computed rather than replayed.
MAX_ACKS = 512

#: Compact (rewrite dropping covered delta payloads) once the file
#: exceeds this many bytes.
DEFAULT_COMPACT_BYTES = 64 * 1024

_U16_MAX = 0xFFFF


def _encode_delta(ingest_id: str, facts: List[Atom]) -> bytes:
    """One self-contained DELTA payload: record-local string table +
    flat int rows (``pred_sid, arity, term_sids...`` per fact)."""
    strings: Dict[str, int] = {}

    def sid(name: str) -> int:
        index = strings.get(name)
        if index is None:
            index = strings[name] = len(strings)
            if index > _U16_MAX:
                raise ValueError("delta exceeds 65536 distinct symbols")
        return index

    ints: List[int] = []
    for fact in facts:
        ints.append(sid(str(fact.predicate.name)))
        ints.append(fact.predicate.arity)
        for term in fact.terms:
            ints.append(sid(str(term.name)))
    out = bytearray()
    id_bytes = ingest_id.encode("utf-8")
    out += struct.pack("<H", len(id_bytes))
    out += id_bytes
    out += struct.pack("<H", len(strings))
    for name in strings:  # insertion order == sid order
        raw = name.encode("utf-8")
        out += struct.pack("<H", len(raw))
        out += raw
    out += struct.pack("<II", len(facts), len(ints))
    out += struct.pack(f"<{len(ints)}q", *ints)
    return bytes(out)


def _decode_delta(payload: bytes) -> Tuple[str, List[Atom]]:
    offset = 0
    (id_len,) = struct.unpack_from("<H", payload, offset)
    offset += 2
    ingest_id = payload[offset:offset + id_len].decode("utf-8")
    offset += id_len
    (n_strings,) = struct.unpack_from("<H", payload, offset)
    offset += 2
    table: List[str] = []
    for _ in range(n_strings):
        (s_len,) = struct.unpack_from("<H", payload, offset)
        offset += 2
        table.append(payload[offset:offset + s_len].decode("utf-8"))
        offset += s_len
    n_facts, n_ints = struct.unpack_from("<II", payload, offset)
    offset += 8
    ints = struct.unpack_from(f"<{n_ints}q", payload, offset)
    facts: List[Atom] = []
    cursor = 0
    for _ in range(n_facts):
        pred_name = table[ints[cursor]]
        arity = ints[cursor + 1]
        cursor += 2
        terms = [Constant(table[ints[cursor + i]]) for i in range(arity)]
        cursor += arity
        facts.append(Atom(Predicate(pred_name, arity), terms))
    return ingest_id, facts


def _encode_ack(ingest_id: str, response: dict) -> bytes:
    id_bytes = ingest_id.encode("utf-8")
    body = json.dumps(response, sort_keys=True).encode("utf-8")
    return (
        struct.pack("<H", len(id_bytes)) + id_bytes
        + struct.pack("<I", len(body)) + body
    )


def _decode_ack(payload: bytes) -> Tuple[str, dict]:
    (id_len,) = struct.unpack_from("<H", payload, 0)
    ingest_id = payload[2:2 + id_len].decode("utf-8")
    (json_len,) = struct.unpack_from("<I", payload, 2 + id_len)
    start = 6 + id_len
    return ingest_id, json.loads(payload[start:start + json_len])


def _frame(kind: int, payload: bytes) -> bytes:
    return _HEADER.pack(
        _MAGIC, kind, len(payload), zlib.crc32(payload)
    ) + payload


class IngestJournal:
    """One resident's write-ahead ingest log (see module docstring).

    Not thread-safe by itself: the service serializes appends under
    the resident's writer lock, exactly like the chase legs the
    records describe.
    """

    __slots__ = ("path", "acked", "pending", "torn_bytes",
                 "compact_bytes", "_bytes")

    def __init__(self, path: str,
                 compact_bytes: int = DEFAULT_COMPACT_BYTES):
        self.path = path
        #: ingest_id → recorded response, oldest first (the bounded
        #: idempotency memory; replayed to retried requests).
        self.acked: "OrderedDict[str, dict]" = OrderedDict()
        #: journaled but not yet acknowledged deltas, in append order
        #: — what restart must replay.
        self.pending: "OrderedDict[str, List[Atom]]" = OrderedDict()
        #: bytes discarded by torn-tail truncation at load (0 when the
        #: file was clean).
        self.torn_bytes = 0
        self.compact_bytes = compact_bytes
        self._bytes = 0
        self._load()

    @classmethod
    def attach(cls, store_dir: str,
               compact_bytes: int = DEFAULT_COMPACT_BYTES,
               ) -> "IngestJournal":
        """The journal of a store directory (``<dir>/ingest.wal``),
        created empty when absent."""
        return cls(os.path.join(store_dir, JOURNAL_FILE),
                   compact_bytes=compact_bytes)

    # -- load / recover ------------------------------------------------------

    def _load(self) -> None:
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return
        offset = 0
        good = 0
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                break
            magic, kind, length, crc = _HEADER.unpack_from(data, offset)
            if magic != _MAGIC:
                break
            start = offset + _HEADER.size
            payload = data[start:start + length]
            if len(payload) < length or zlib.crc32(payload) != crc:
                break
            try:
                if kind == _KIND_DELTA:
                    ingest_id, facts = _decode_delta(payload)
                    self.pending[ingest_id] = facts
                elif kind == _KIND_ACK:
                    ingest_id, response = _decode_ack(payload)
                    self.pending.pop(ingest_id, None)
                    self.acked[ingest_id] = response
                    self.acked.move_to_end(ingest_id)
                else:
                    break
            except (struct.error, IndexError, UnicodeDecodeError,
                    ValueError):
                break
            offset = start + length
            good = offset
        self._bytes = good
        if good < len(data):
            # A torn tail: the record was never fully durable, so the
            # client was never acked — drop it; the retry re-ingests.
            self.torn_bytes = len(data) - good
            with open(self.path, "r+b") as fh:
                fh.truncate(good)
                fh.flush()
                os.fsync(fh.fileno())

    def recorded(self, ingest_id: str) -> Optional[dict]:
        """The acknowledged response for ``ingest_id`` (the replay a
        retried request receives), or ``None`` when unknown."""
        return self.acked.get(ingest_id)

    # -- append --------------------------------------------------------------

    def _append(self, record: bytes, sync: bool = True) -> None:
        existed = os.path.exists(self.path)
        with open(self.path, "ab") as fh:
            if faults.torn_write_planned():
                # Chaos: half the record reaches the platter, then the
                # process dies — restart must truncate this tail.
                fh.write(record[:max(1, len(record) // 2)])
                fh.flush()
                os.fsync(fh.fileno())
                os._exit(42)
            fh.write(record)
            fh.flush()
            if sync:
                os.fsync(fh.fileno())
        self._bytes += len(record)
        if not existed:
            self._fsync_dir()

    def _fsync_dir(self) -> None:
        parent = os.path.dirname(self.path) or "."
        try:
            fd = os.open(parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - non-POSIX directory open
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def append_delta(self, ingest_id: str, facts: List[Atom]) -> None:
        """Make the delta durable *before* the chase leg touches the
        instance — the fsync-before-ack half of the contract."""
        self._append(_frame(_KIND_DELTA, _encode_delta(ingest_id, facts)))
        self.pending[ingest_id] = list(facts)

    def append_ack(self, ingest_id: str, response: dict) -> None:
        """Record that the delta's chase leg finished and its covering
        checkpoint committed; the response is the idempotent replay.

        Deliberately *not* fsynced: losing an ACK only means the next
        start replays an already-applied delta — a byte-identical
        no-op (``extend`` skips duplicate base facts) that regenerates
        the ack — so durability here buys nothing, while skipping the
        fsync halves the WAL's per-ingest sync cost."""
        self._append(
            _frame(_KIND_ACK, _encode_ack(ingest_id, response)),
            sync=False,
        )
        self.pending.pop(ingest_id, None)
        self.acked[ingest_id] = response
        self.acked.move_to_end(ingest_id)
        while len(self.acked) > MAX_ACKS:
            self.acked.popitem(last=False)
        if self._bytes > self.compact_bytes:
            self.compact()

    # -- compaction ----------------------------------------------------------

    def compact(self) -> None:
        """Atomically rewrite the journal as the bounded ACK window
        plus any still-uncovered DELTA records (covered delta payloads
        — the bulk of the file — are dropped)."""
        out = bytearray()
        for ingest_id, response in self.acked.items():
            out += _frame(_KIND_ACK, _encode_ack(ingest_id, response))
        for ingest_id, facts in self.pending.items():
            out += _frame(
                _KIND_DELTA, _encode_delta(ingest_id, facts)
            )
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(out)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._fsync_dir()
        self._bytes = len(out)

    def describe(self) -> dict:
        """Counters for ``/stats``."""
        return {
            "path": self.path,
            "bytes": self._bytes,
            "acked": len(self.acked),
            "pending": len(self.pending),
            "torn_bytes_truncated": self.torn_bytes,
        }
