"""The fact-store abstraction: where an instance's rows actually live.

:class:`~repro.model.instances.Instance` is the logical surface — facts,
predicates, domains, snapshots.  The *physical* side — the interned
symbol table, the append-only fact log, the per-predicate row lists and
``row -> ordinal`` membership dicts, the ``(pred_id, position, term_id)
-> rows`` term-level indexes, and the planner's per-column cardinality
counters — lives in a :class:`FactStore`.  Two backends share the
surface:

* :class:`MemoryFactStore` (this module) — plain dicts and lists, the
  default, byte-identical to the pre-storage-layer instance core.  All
  ``ensure_*`` hydration hooks are no-ops.
* :class:`~repro.storage.durable.DurableFactStore` — the same
  structures hydrated lazily, per predicate, from append-only
  ``array('q')`` segment files on disk.

Two invariants make the split invisible to the join engine:

1. **Structure objects are never replaced.**  ``index``,
   ``rows_by_pid``, ``member_by_pid`` and the log lists are created at
   construction and only ever *grown* (hydration mutates them in
   place), so :class:`~repro.model.joinplan.ResolvedStep` may bind
   their bound ``.get`` methods once and keep probing them for the
   instance's lifetime.
2. **Hydration happens at predicate-id resolution.**  Every consumer
   obtains a ``pid`` through ``pred_id``/``pred_id_get`` before
   touching pid-keyed structures; the durable backend hydrates there,
   so the pid-keyed accessors themselves stay hook-free and zero-copy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..model.atoms import Predicate
from ..model.symbols import SymbolTable

Row = Tuple[int, ...]

_EMPTY_ROWS: List[Row] = []
_EMPTY_MEMBER: Dict[Row, int] = {}


class FactStore:
    """The physical half of an instance: symbols, rows, and indexes.

    Rows are **append-only**: a fact's (predicate, row) position never
    mutates or moves, which is what makes save/resume, incremental
    extension, and watermark snapshots (bounding every accessor to a
    row-count high-water mark) compose without copies or locks.

    This base class *is* the in-memory backend (see
    :data:`MemoryFactStore`); the durable backend
    (:class:`repro.storage.durable.DurableFactStore`, append-only
    segments + atomic manifest, written by ``Instance.save`` /
    ``chase --save`` and reopened with
    :func:`repro.storage.open_instance`) subclasses it and overrides
    the hydration hooks plus ``pred_id``/``pred_id_get``.  One store
    belongs to exactly one instance — stores are cloned, not shared.
    """

    kind = "memory"

    __slots__ = (
        "symbols",
        "pred_ids",
        "pred_objs",
        "log_pids",
        "log_rows",
        "member_by_pid",
        "rows_by_pid",
        "index",
        "pos_card",
        "domain_ids",
    )

    def __init__(self, symbols: Optional[SymbolTable] = None):
        self.symbols = symbols if symbols is not None else SymbolTable()
        self.pred_ids: Dict[Predicate, int] = {}
        self.pred_objs: Dict[int, Predicate] = {}
        self.log_pids: List[int] = []
        self.log_rows: List[Row] = []
        self.member_by_pid: Dict[int, Dict[Row, int]] = {}
        self.rows_by_pid: Dict[int, List[Row]] = {}
        # (pred_id, position, term_id) -> rows carrying term_id there.
        self.index: Dict[Tuple[int, int, int], List[Row]] = {}
        # (pred_id, position) -> distinct term ids at that column (the
        # cost planner's cardinality statistic, see repro.query.planner).
        self.pos_card: Dict[Tuple[int, int], int] = {}
        # Active domain term ids in first-occurrence order.
        self.domain_ids: Dict[int, None] = {}

    # -- hydration hooks (no-ops for the in-memory backend) ----------------

    def ensure_pred(self, pid: int) -> None:
        """Make every pid-keyed structure of relation ``pid`` valid."""

    def ensure_all(self) -> None:
        """Make every structure fully resident (required before any
        mutation of a lazily opened store)."""

    def loaded(self) -> bool:
        """True iff every row is resident in the in-memory structures."""
        return True

    # -- interning ---------------------------------------------------------

    def pred_id(self, predicate: Predicate) -> int:
        """The (interning) dense id of ``predicate``."""
        pid = self.pred_ids.get(predicate)
        if pid is None:
            pid = len(self.pred_objs)
            while pid in self.pred_objs:  # primed tables may be sparse
                pid += 1
            self.pred_ids[predicate] = pid
            self.pred_objs[pid] = predicate
        return pid

    def pred_id_get(self, predicate: Predicate) -> Optional[int]:
        """The id of ``predicate`` if seen before, else ``None``."""
        return self.pred_ids.get(predicate)

    def predicate_of(self, pid: int) -> Predicate:
        """Decode a predicate id."""
        return self.pred_objs[pid]

    def prime_predicate(self, predicate: Predicate, pid: int) -> None:
        """Install a parent-assigned predicate id (worker mirrors)."""
        known = self.pred_ids.get(predicate)
        if known is not None:
            if known != pid:
                raise ValueError(
                    f"{predicate} already has id {known}, not {pid}"
                )
            return
        self.pred_ids[predicate] = pid
        self.pred_objs[pid] = predicate

    # -- mutation ----------------------------------------------------------

    def add_row(self, pid: int, row: Row) -> Optional[int]:
        """Append ``row`` under predicate id ``pid``, maintaining every
        index incrementally.  Returns the new fact's ordinal, or
        ``None`` if the row was already present."""
        member = self.member_by_pid.get(pid)
        if member is None:
            member = self.member_by_pid[pid] = {}
            self.rows_by_pid[pid] = []
        if row in member:
            return None
        log_rows = self.log_rows
        ordinal = len(log_rows)
        member[row] = ordinal
        self.log_pids.append(pid)
        log_rows.append(row)
        self.rows_by_pid[pid].append(row)
        index_get = self.index.get
        index_set = self.index.__setitem__
        domain = self.domain_ids
        pos_card = self.pos_card
        position = 0
        for tid in row:
            key = (pid, position, tid)
            rows = index_get(key)
            if rows is None:
                index_set(key, [row])
                # A term already indexed somewhere is already in the
                # domain; only first-time index rows can introduce one.
                domain[tid] = None
                # First occurrence of tid at this column: one more
                # distinct value for the planner's cardinality stats.
                ckey = (pid, position)
                pos_card[ckey] = pos_card.get(ckey, 0) + 1
            else:
                rows.append(row)
            position += 1
        return ordinal

    # -- zero-copy accessors (pids resolved by the caller) -----------------

    def size(self) -> int:
        """How many facts the store holds (resident or not)."""
        return len(self.log_pids)

    def row_at(self, ordinal: int) -> Tuple[int, Row]:
        """``(pred_id, row)`` at log position ``ordinal``."""
        return self.log_pids[ordinal], self.log_rows[ordinal]

    def rows_of(self, pid: int) -> List[Row]:
        """Live insertion-ordered row list of one relation (do not
        mutate; may be empty and unregistered)."""
        return self.rows_by_pid.get(pid, _EMPTY_ROWS)

    def probe_rows(self, pid: int, position: int, tid: int) -> List[Row]:
        """Live row list of the ``(pred_id, position, term_id)`` index
        (do not mutate)."""
        return self.index.get((pid, position, tid), _EMPTY_ROWS)

    def member_rows(self, pid: int) -> Dict[Row, int]:
        """Live ``row -> ordinal`` membership dict of one relation
        (do not mutate)."""
        return self.member_by_pid.get(pid, _EMPTY_MEMBER)

    def ordinals_of(self, pid: int) -> List[int]:
        """Insertion-ordered fact ordinals of one relation (fresh list)."""
        return list(self.member_by_pid.get(pid, _EMPTY_MEMBER).values())

    def count_rows(self, pid: int) -> int:
        """How many rows relation ``pid`` holds (never hydrates)."""
        rows = self.rows_by_pid.get(pid)
        return len(rows) if rows else 0

    def distinct_at(self, pid: int, position: int) -> int:
        """Distinct term ids at ``position`` of relation ``pid`` (0 for
        empty/unknown columns)."""
        return self.pos_card.get((pid, position), 0)

    def nonempty_pids(self) -> List[int]:
        """Predicate ids with at least one row (never hydrates)."""
        return [pid for pid, rows in self.rows_by_pid.items() if rows]

    # -- copying -----------------------------------------------------------

    def clone(self) -> "FactStore":
        """An independent **in-memory** copy with identical ids, rows,
        and iteration order (the instance-copy fast path; a durable
        store hydrates fully first)."""
        self.ensure_all()
        out = FactStore.__new__(FactStore)
        out.symbols = self.symbols.clone()
        out.pred_ids = dict(self.pred_ids)
        out.pred_objs = dict(self.pred_objs)
        out.log_pids = list(self.log_pids)
        out.log_rows = list(self.log_rows)
        out.member_by_pid = {
            pid: dict(member) for pid, member in self.member_by_pid.items()
        }
        out.rows_by_pid = {
            pid: list(rows) for pid, rows in self.rows_by_pid.items()
        }
        out.index = {key: list(rows) for key, rows in self.index.items()}
        out.pos_card = dict(self.pos_card)
        out.domain_ids = dict(self.domain_ids)
        return out

    def bulk_load(
        self,
        pred_pairs: Iterable[Tuple[Predicate, int]],
        log_pids: Iterable[int],
        rows: Iterable[Row],
    ) -> None:
        """Rebuild from a (pids, rows) log stream — the slow generic
        loader shared by tests and tools."""
        for pred, pid in pred_pairs:
            self.prime_predicate(pred, pid)
        for pid, row in zip(log_pids, rows):
            self.add_row(pid, row)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(<{self.size()} facts>)"


#: The default backend is the base class itself; the alias makes call
#: sites say what they mean.
MemoryFactStore = FactStore
