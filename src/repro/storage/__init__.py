"""Pluggable fact-store backends (ROADMAP item 4).

The physical half of every :class:`~repro.model.instances.Instance` —
symbol table, fact log, row lists, term-level indexes, planner
statistics — lives behind the :class:`FactStore` surface, with an
in-memory backend (the byte-identical default) and a durable one
(append-only ``array('q')`` segment files, lazy mmap-backed reopen,
round-boundary chase checkpoints).  See ``storage/base.py`` and
``storage/durable.py``.
"""

from .base import FactStore, MemoryFactStore, Row
from .durable import (
    CHASE_STATE,
    DurableFactStore,
    StoreFormatError,
    StoreWriter,
    open_instance,
    open_store,
    read_manifest,
    save_store,
)
from .journal import JOURNAL_FILE, IngestJournal

__all__ = [
    "CHASE_STATE",
    "DurableFactStore",
    "FactStore",
    "IngestJournal",
    "JOURNAL_FILE",
    "MemoryFactStore",
    "Row",
    "StoreFormatError",
    "StoreWriter",
    "open_instance",
    "open_store",
    "read_manifest",
    "save_store",
]
