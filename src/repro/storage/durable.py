"""The durable fact-store backend: append-only segment files on disk.

A saved store is a **directory**:

``MANIFEST.json``
    The commit point.  Counts (facts, symbols, predicates, domain
    size, per-predicate row counts), the persisted per-column
    ``distinct_at`` statistics, and format/byte-order markers.  It is
    rewritten atomically (tmp + ``os.replace``) *after* the data files
    are appended, so a reader never trusts bytes the manifest does not
    cover — appends beyond the manifest counts are invisible.
``symbols.pkl`` / ``preds.pkl``
    Appended pickle chunks of ``(term, id)`` / ``(predicate, pid)``
    pairs in id-assignment order.  Terms and predicates rebuild
    through their interned constructors (see ``model.terms``).
``log.q``
    ``array('q')`` of predicate ids, one per fact — the global fact
    log, i.e. the instance's iteration order.
``domain.q``
    Active-domain term ids in first-occurrence order.
``seg/p<pid>.rows.q`` / ``seg/p<pid>.ords.q``
    Per-predicate segments: the relation's rows flattened into one
    ``array('q')`` (arity ints per row, insertion order) and the rows'
    global log ordinals.  Mapped with :mod:`mmap` and decoded lazily —
    opening a store touches no segment until its predicate is used.
``chase.pkl`` / ``steps.q`` / ``fired.q``
    The chase checkpoint (written by :mod:`repro.chase.checkpoint`):
    a small pickled header plus append-only int encodings of the
    applied steps and the fired-key set.

Everything is append-only; a checkpoint costs O(new data), not O(run).
Crash semantics are *detected, not repaired*: the manifest commits the
fact data and the chase header self-describes the fact count it
expects, so a checkpoint torn between the two is refused at resume
with a clear error instead of silently diverging (checkpoints are
driven by clean stops — budget exhaustion, ``--max-rounds`` — which
cannot tear).

Reopening (:func:`open_store`) reads the manifest, symbols,
predicates, fact log and domain eagerly — O(symbols + facts) with tiny
constants, no row decoding — and hydrates row segments per predicate
on first use, at ``pred_id`` resolution (see
:mod:`repro.storage.base`).  A query touching two relations pays for
two segments; ``inspect`` pays for none.
"""

from __future__ import annotations

import json
import mmap
import os
import pickle
from array import array
from itertools import islice
from typing import Dict, List, Optional, Tuple

from ..model.symbols import SymbolTable
from .base import FactStore, Row

FORMAT_VERSION = 1
MANIFEST = "MANIFEST.json"
SYMBOLS = "symbols.pkl"
PREDS = "preds.pkl"
LOG = "log.q"
DOMAIN = "domain.q"
SEG_DIR = "seg"
CHASE_STATE = "chase.pkl"

#: Every file a store directory may contain (used by ``overwrite``).
_STORE_FILES = (MANIFEST, SYMBOLS, PREDS, LOG, DOMAIN, CHASE_STATE,
                "steps.q", "fired.q")

_ITEMSIZE = array("q").itemsize


class StoreFormatError(ValueError):
    """A store directory is missing, torn, or from another format."""


def _seg_paths(path: str, pid: int) -> Tuple[str, str]:
    seg = os.path.join(path, SEG_DIR)
    return (
        os.path.join(seg, f"p{pid}.rows.q"),
        os.path.join(seg, f"p{pid}.ords.q"),
    )


def _read_ints(path: str, count: int) -> array:
    """The first ``count`` ints of an ``array('q')`` file (the file may
    be longer — un-committed appends are ignored)."""
    out = array("q")
    if count:
        with open(path, "rb") as fh:
            out.fromfile(fh, count)
    return out


def _map_ints(path: str, count: int):
    """A read-only ``memoryview('q')`` over the first ``count`` ints of
    a segment file (mmap-backed; pages fault in as rows decode)."""
    if not count:
        return memoryview(b"").cast("q")
    with open(path, "rb") as fh:
        mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    view = memoryview(mm).cast("q")
    if len(view) < count:
        raise StoreFormatError(
            f"{path}: {len(view)} ints on disk, manifest expects {count}"
        )
    return view[:count]


def _append_ints(path: str, values) -> None:
    data = values if isinstance(values, array) else array("q", values)
    if not data:
        return
    with open(path, "ab") as fh:
        data.tofile(fh)


def _append_pickle(path: str, chunk: list) -> None:
    if not chunk:
        return
    with open(path, "ab") as fh:
        pickle.dump(chunk, fh, protocol=pickle.HIGHEST_PROTOCOL)


def _read_pickle_chunks(path: str, count: int) -> list:
    """Concatenate appended pickle chunks until ``count`` items are
    collected (later, possibly torn chunks are never read)."""
    out: list = []
    if not count:
        return out
    with open(path, "rb") as fh:
        while len(out) < count:
            out.extend(pickle.load(fh))
    return out[:count]


def _atomic_json(path: str, payload: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=0, sort_keys=True)
    os.replace(tmp, path)


def read_manifest(path: str) -> dict:
    """Load and sanity-check a store directory's manifest."""
    manifest_path = os.path.join(path, MANIFEST)
    if not os.path.exists(manifest_path):
        raise StoreFormatError(f"{path}: no {MANIFEST} — not a fact store")
    with open(manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    if manifest.get("format") != FORMAT_VERSION:
        raise StoreFormatError(
            f"{path}: format {manifest.get('format')!r}, "
            f"this build reads {FORMAT_VERSION}"
        )
    import sys

    if manifest.get("byteorder") != sys.byteorder or (
        manifest.get("itemsize") != _ITEMSIZE
    ):
        raise StoreFormatError(
            f"{path}: written on a {manifest.get('byteorder')}-endian/"
            f"{manifest.get('itemsize')}-byte platform, "
            f"this one is {sys.byteorder}/{_ITEMSIZE}"
        )
    return manifest


class DurableFactStore(FactStore):
    """A fact store hydrated lazily from an on-disk segment directory.

    Behaviourally identical to the in-memory backend — same ids, same
    row order, same iteration order, same planner statistics — because
    every structure is rebuilt from data persisted in exactly the
    order the in-memory store created it.  Mutation is allowed (the
    resume path chases on top of a reopened store) but forces full
    residency first.
    """

    kind = "durable"

    __slots__ = ("path", "manifest", "_lazy", "_arity")

    def __init__(self, path: str):
        manifest = read_manifest(path)
        symbols = SymbolTable(
            _read_pickle_chunks(
                os.path.join(path, SYMBOLS), manifest["symbols"]
            )
        )
        FactStore.__init__(self, symbols)
        self.path = path
        self.manifest = manifest
        for pred, pid in _read_pickle_chunks(
            os.path.join(path, PREDS), manifest["preds"]
        ):
            self.prime_predicate(pred, pid)
        n = manifest["facts"]
        self.log_pids = _read_ints(os.path.join(path, LOG), n)
        self.log_rows = [None] * n
        self.domain_ids = dict.fromkeys(
            _read_ints(os.path.join(path, DOMAIN), manifest["domain"])
        )
        for pid, position, count in manifest["pos_card"]:
            self.pos_card[(pid, position)] = count
        # pid -> not-yet-hydrated row count; arity from the predicate.
        self._lazy: Dict[int, int] = {
            int(pid): meta["rows"]
            for pid, meta in manifest["predicates"].items()
            if meta["rows"]
        }
        self._arity = {
            pid: self.pred_objs[pid].arity for pid in self._lazy
        }

    # -- hydration ---------------------------------------------------------

    def ensure_pred(self, pid: int) -> None:
        nrows = self._lazy.pop(pid, None)
        if nrows is None:
            return
        arity = self._arity[pid]
        rows_path, ords_path = _seg_paths(self.path, pid)
        flat = _map_ints(rows_path, nrows * arity)
        ords = _read_ints(ords_path, nrows)
        rows_list: List[Row] = []
        member: Dict[Row, int] = {}
        log_rows = self.log_rows
        index = self.index
        index_get = index.get
        offset = 0
        for i in range(nrows):
            row = tuple(flat[offset:offset + arity])
            offset += arity
            rows_list.append(row)
            ordinal = ords[i]
            member[row] = ordinal
            log_rows[ordinal] = row
            for position in range(arity):
                key = (pid, position, row[position])
                bucket = index_get(key)
                if bucket is None:
                    index[key] = [row]
                else:
                    bucket.append(row)
        # The dicts themselves are never replaced (bound-.get contract,
        # see storage.base); their per-pid values are installed exactly
        # once, before any consumer could have resolved this pid.
        self.rows_by_pid[pid] = rows_list
        self.member_by_pid[pid] = member

    def ensure_all(self) -> None:
        for pid in list(self._lazy):
            self.ensure_pred(pid)
        if isinstance(self.log_pids, array):
            # Mutation appends int objects; a plain list keeps the
            # in-memory and reopened stores structurally identical.
            self.log_pids = list(self.log_pids)

    def loaded(self) -> bool:
        return not self._lazy

    # -- hydration-aware overrides -----------------------------------------

    def pred_id(self, predicate) -> int:
        pid = self.pred_ids.get(predicate)
        if pid is None:
            return FactStore.pred_id(self, predicate)
        if pid in self._lazy:
            self.ensure_pred(pid)
        return pid

    def pred_id_get(self, predicate) -> Optional[int]:
        pid = self.pred_ids.get(predicate)
        if pid is not None and pid in self._lazy:
            self.ensure_pred(pid)
        return pid

    def add_row(self, pid: int, row: Row) -> Optional[int]:
        if self._lazy or isinstance(self.log_pids, array):
            self.ensure_all()
        return FactStore.add_row(self, pid, row)

    def row_at(self, ordinal: int) -> Tuple[int, Row]:
        pid = self.log_pids[ordinal]
        row = self.log_rows[ordinal]
        if row is None:
            self.ensure_pred(pid)
            row = self.log_rows[ordinal]
        return pid, row

    def count_rows(self, pid: int) -> int:
        pending = self._lazy.get(pid)
        if pending is not None:
            return pending
        return FactStore.count_rows(self, pid)

    def nonempty_pids(self) -> List[int]:
        out = list(self._lazy)
        for pid, rows in self.rows_by_pid.items():
            if rows:
                out.append(pid)
        return out


class StoreWriter:
    """Append-only persister binding one :class:`FactStore` (either
    backend) to one store directory.

    Tracks per-structure watermarks — how much of the store's current
    state the directory already holds — so :meth:`flush` writes only
    tails plus one small manifest rewrite.  Round-boundary chase
    checkpoints reuse one writer; ``save()`` of a finished instance is
    a writer used once.
    """

    __slots__ = ("path", "store", "facts", "symbols", "preds", "domain",
                 "rows")

    def __init__(self, path: str, store: FactStore,
                 manifest: Optional[dict] = None):
        self.path = path
        self.store = store
        if manifest is None:
            self.facts = 0
            self.symbols = 0
            self.preds = 0
            self.domain = 0
            self.rows: Dict[int, int] = {}
        else:
            self.facts = manifest["facts"]
            self.symbols = manifest["symbols"]
            self.preds = manifest["preds"]
            self.domain = manifest["domain"]
            self.rows = {
                int(pid): meta["rows"]
                for pid, meta in manifest["predicates"].items()
            }

    @classmethod
    def create(cls, path: str, store: FactStore,
               overwrite: bool = False) -> "StoreWriter":
        """A writer over a fresh (empty) store directory.

        Refuses a directory already holding data unless ``overwrite``;
        overwriting removes the known store files only.
        """
        os.makedirs(os.path.join(path, SEG_DIR), exist_ok=True)
        existing = [
            name for name in os.listdir(path)
            if name != SEG_DIR and not name.endswith(".tmp")
        ]
        segs = os.listdir(os.path.join(path, SEG_DIR))
        if existing or segs:
            if not overwrite:
                raise FileExistsError(
                    f"{path} is not empty; pass overwrite=True "
                    f"(or delete it) to start a fresh store"
                )
            for name in existing:
                if name in _STORE_FILES:
                    os.remove(os.path.join(path, name))
            for name in segs:
                os.remove(os.path.join(path, SEG_DIR, name))
        return cls(path, store)

    @classmethod
    def attach(cls, path: str, store: "DurableFactStore") -> "StoreWriter":
        """A writer continuing an existing directory — the resume path.
        Watermarks come from the manifest, so only post-reopen growth
        is ever appended."""
        return cls(path, store, manifest=read_manifest(path))

    def append_ints(self, filename: str, values) -> None:
        """Append raw ints to an auxiliary append-only file (the chase
        checkpointer's steps/fired logs live beside the fact data)."""
        _append_ints(os.path.join(self.path, filename), values)

    def flush(self, extra: Optional[dict] = None) -> dict:
        """Persist everything the directory is missing, then commit by
        rewriting the manifest (atomically).  ``extra`` entries are
        merged into the manifest (the chase checkpointer marks the
        presence of resume state this way).  Returns the manifest."""
        store = self.store
        if not store.loaded() and (
            store.size() != self.facts or len(store.symbols) != self.symbols
        ):
            # Only a fully resident store knows its row tails.
            store.ensure_all()
        path = self.path
        # 1. symbols (id-dense tail; sparse/primed tables fall back to
        #    a full sorted slice).
        table = store.symbols
        try:
            tail = table.items_from(self.symbols)
        except KeyError:
            tail = table.items()[self.symbols:]
        _append_pickle(os.path.join(path, SYMBOLS), tail)
        self.symbols += len(tail)
        # 2. predicates, in id-assignment order.
        pred_items = list(store.pred_ids.items())
        _append_pickle(os.path.join(path, PREDS), pred_items[self.preds:])
        self.preds = len(pred_items)
        # 3. the global fact log.
        _append_ints(
            os.path.join(path, LOG), store.log_pids[self.facts:]
        )
        self.facts = store.size()
        # 4. per-predicate row segments (+ their global ordinals).
        for pid, rows in store.rows_by_pid.items():
            n = len(rows)
            done = self.rows.get(pid, 0)
            if n <= done:
                continue
            rows_path, ords_path = _seg_paths(path, pid)
            flat = array("q")
            for row in rows[done:]:
                flat.extend(row)
            _append_ints(rows_path, flat)
            _append_ints(
                ords_path,
                islice(store.member_by_pid[pid].values(), done, None),
            )
            self.rows[pid] = n
        # 5. active domain, in first-occurrence order.
        _append_ints(
            os.path.join(path, DOMAIN),
            islice(store.domain_ids, self.domain, None),
        )
        self.domain = len(store.domain_ids)
        # 6. commit.
        import sys

        manifest = {
            "format": FORMAT_VERSION,
            "byteorder": sys.byteorder,
            "itemsize": _ITEMSIZE,
            "facts": self.facts,
            "symbols": self.symbols,
            "preds": self.preds,
            "domain": self.domain,
            "predicates": {
                str(pid): {"rows": n} for pid, n in self.rows.items()
            },
            "pos_card": [
                [pid, position, count]
                for (pid, position), count in store.pos_card.items()
            ],
        }
        if extra:
            manifest.update(extra)
        _atomic_json(os.path.join(path, MANIFEST), manifest)
        if isinstance(store, DurableFactStore):
            store.manifest = manifest
        return manifest


def open_store(path: str) -> DurableFactStore:
    """Reopen a saved store (lazy; see the module docstring)."""
    return DurableFactStore(path)


def save_store(store: FactStore, path: str,
               overwrite: bool = False) -> StoreWriter:
    """Persist ``store`` to a (fresh) directory at ``path``."""
    writer = StoreWriter.create(path, store, overwrite=overwrite)
    writer.flush()
    return writer


def open_instance(path: str):
    """Reopen a saved store as an :class:`~repro.model.instances.Instance`
    (lazily hydrated — ready for query serving without re-chasing)."""
    from ..model.instances import Instance

    return Instance(store=open_store(path))
