"""Interned symbol tables: dense integer ids for terms and predicates.

The columnar fact core (:mod:`repro.model.instances`) stores every
relation as rows of small integers and the join engine
(:mod:`repro.model.joinplan`) probes and compares those integers
directly — int hashing and int equality instead of Python-level
``__hash__``/``__eq__`` dispatch on :class:`~repro.model.terms.Term`
object graphs.  This module provides the bijection the core is built
on: a :class:`SymbolTable` maps each term (constant, labelled null,
Skolem term, …) to a dense id and back.

Design points:

* **Per-instance, not global.**  Every :class:`Instance` owns its own
  table, so long-lived processes do not pin every null and Skolem term
  of every run ever executed, and two runs assign ids independently.
  Determinism still holds: ids are handed out in first-intern order,
  and a byte-identical execution interns in a byte-identical order.
* **Lock-guarded.**  The ``threaded`` round executor resolves compiled
  plans from worker threads; double-checked interning under a
  ``threading.Lock`` keeps "one symbol, one id" true under races.
  (Engines additionally pre-intern all rule symbols serially — see
  ``Instance.prepare_rules`` — so threaded discovery never *allocates*
  ids and id order cannot depend on thread scheduling.)
* **Primed / sealed tables.**  ``process``-executor workers mirror the
  parent's fact log as raw int rows and never materialize terms; the
  only symbols they need are the rule constants, shipped once as
  ``(term, parent_id)`` pairs and installed with :meth:`prime`.  A
  *sealed* table allocates **negative** ids for anything interned past
  that point, so a worker can never mint an id that collides with a
  parent id appearing in shipped rows.

Pickling rebuilds through the constructor (the intern dict's hashes are
only valid under the pickling interpreter's hash randomization, exactly
like the term classes themselves — see :mod:`repro.model.terms`).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple


class SymbolTable:
    """A thread-safe bijection ``object <-> dense int id``.

    Ids are non-negative and dense in first-intern order for ordinary
    tables; a ``sealed`` table (worker mirrors) hands out negative ids
    instead, so fresh allocations can never shadow primed parent ids.
    """

    __slots__ = ("_ids", "_objs", "_next", "_sealed", "_lock")

    def __init__(
        self,
        primed: Iterable[Tuple[object, int]] = (),
        sealed: bool = False,
    ):
        self._ids: Dict[object, int] = {}
        self._objs: Dict[int, object] = {}
        self._next = 0
        self._sealed = sealed
        self._lock = threading.Lock()
        for obj, sid in primed:
            self.prime(obj, sid)

    # -- interning ---------------------------------------------------------

    def intern(self, obj: object) -> int:
        """The id for ``obj``, allocating one on first sight."""
        sid = self._ids.get(obj)
        if sid is None:
            with self._lock:
                sid = self._ids.get(obj)
                if sid is None:
                    if self._sealed:
                        sid = -len(self._ids) - 1
                    else:
                        sid = self._next
                        self._next = sid + 1
                    self._ids[obj] = sid
                    self._objs[sid] = obj
        return sid

    def get(self, obj: object) -> Optional[int]:
        """The id for ``obj`` if already interned, else ``None``."""
        return self._ids.get(obj)

    def prime(self, obj: object, sid: int) -> None:
        """Install ``obj ↔ sid`` (the process executor's symbol-diff
        application).  Idempotent; conflicting re-priming raises."""
        with self._lock:
            known = self._ids.get(obj)
            if known is not None:
                if known != sid:
                    raise ValueError(
                        f"symbol {obj!r} already interned as {known}, "
                        f"cannot re-prime as {sid}"
                    )
                return
            if sid in self._objs:
                raise ValueError(
                    f"id {sid} already maps to {self._objs[sid]!r}"
                )
            self._ids[obj] = sid
            self._objs[sid] = obj
            if sid >= self._next:
                self._next = sid + 1

    def clone(self) -> "SymbolTable":
        """An independent copy with identical assignments — the fast
        path for instance copies (same ids, no re-interning)."""
        out = SymbolTable.__new__(SymbolTable)
        out._ids = dict(self._ids)
        out._objs = dict(self._objs)
        out._next = self._next
        out._sealed = self._sealed
        out._lock = threading.Lock()
        return out

    # -- decoding ----------------------------------------------------------

    def obj(self, sid: int) -> object:
        """The object for ``sid`` (KeyError for unknown ids)."""
        return self._objs[sid]

    def decode_many(self, sids: Iterable[int]) -> List[object]:
        """Decode a batch of ids."""
        objs = self._objs
        return [objs[s] for s in sids]

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, obj: object) -> bool:
        return obj in self._ids

    def items(self) -> List[Tuple[object, int]]:
        """``(object, id)`` pairs in id order — the wire form shipped to
        process-executor workers and used by the round-trip tests."""
        return sorted(self._ids.items(), key=lambda kv: kv[1])

    def items_from(self, start: int) -> List[Tuple[object, int]]:
        """``(object, id)`` pairs with ``id >= start``, in id order —
        the durable store's append-only persistence tail.  Assumes a
        dense (intern-built) table; raises ``KeyError`` on sparse
        primed tables, for which callers fall back to :meth:`items`."""
        objs = self._objs
        return [(objs[i], i) for i in range(start, self._next)]

    def seal(self) -> None:
        """Switch to sealed allocation (negative ids) from now on —
        worker mirrors hydrated from a store seal the full parent
        table so they can never mint a colliding id."""
        self._sealed = True

    def __reduce__(self):
        # Rebuild through the constructor: dict keys carry hashes from
        # the sending interpreter (see module docstring).
        return (SymbolTable, (tuple(self.items()), self._sealed))

    def __repr__(self) -> str:
        kind = "sealed " if self._sealed else ""
        return f"SymbolTable(<{kind}{len(self._ids)} symbols>)"
