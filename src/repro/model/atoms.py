"""Predicates, positions, and atoms.

An :class:`Atom` is a predicate applied to a tuple of terms.  Atoms over
constants and nulls populate instances; atoms over variables (possibly
mixed with constants) form rule bodies and heads.

A :class:`Position` is a (predicate, index) pair — the vertices of the
dependency graphs used by weak/rich acyclicity (§3.1 of the paper).
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, Sequence, Set, Tuple

from .terms import Constant, Null, Term, Variable, is_ground


class Predicate:
    """A relation name with a fixed arity."""

    __slots__ = ("name", "arity", "_hash")

    def __init__(self, name: str, arity: int):
        if arity < 0:
            raise ValueError(f"negative arity for predicate {name!r}: {arity}")
        self.name = name
        self.arity = arity
        self._hash = hash(("Predicate", name, arity))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Predicate)
            and self.name == other.name
            and self.arity == other.arity
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild through the lock-guarded intern table: the cached
        # ``_hash`` is only valid under the pickling interpreter's hash
        # randomization (see :mod:`repro.model.terms`).
        return (intern_predicate, (self.name, self.arity))

    def __lt__(self, other: "Predicate") -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return (self.name, self.arity) < (other.name, other.arity)

    def __repr__(self) -> str:
        return f"Predicate({self.name!r}, {self.arity})"

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"

    def positions(self) -> Tuple["Position", ...]:
        """All positions of this predicate, in argument order."""
        return tuple(Position(self, i) for i in range(self.arity))


class Position:
    """Position ``i`` of predicate ``p`` — written ``p[i]`` (0-based)."""

    __slots__ = ("predicate", "index", "_hash")

    def __init__(self, predicate: Predicate, index: int):
        if not 0 <= index < predicate.arity:
            raise ValueError(
                f"position index {index} out of range for {predicate}"
            )
        self.predicate = predicate
        self.index = index
        self._hash = hash(("Position", predicate, index))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Position)
            and self.predicate == other.predicate
            and self.index == other.index
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Position, (self.predicate, self.index))

    def __lt__(self, other: "Position") -> bool:
        if not isinstance(other, Position):
            return NotImplemented
        return (self.predicate.name, self.predicate.arity, self.index) < (
            other.predicate.name,
            other.predicate.arity,
            other.index,
        )

    def __repr__(self) -> str:
        return f"Position({self.predicate!r}, {self.index})"

    def __str__(self) -> str:
        return f"{self.predicate.name}[{self.index}]"


class Atom:
    """A predicate applied to terms.

    Immutable and hashable; the same class is used for schema-level
    atoms (with variables) and instance-level facts (constants/nulls).
    """

    __slots__ = ("predicate", "terms", "_hash")

    def __init__(self, predicate: Predicate, terms: Sequence[Term]):
        terms = tuple(terms)
        if len(terms) != predicate.arity:
            raise ValueError(
                f"{predicate} applied to {len(terms)} terms: {terms}"
            )
        self.predicate = predicate
        self.terms = terms
        self._hash = hash(("Atom", predicate, terms))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self.predicate == other.predicate
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Atom, (self.predicate, self.terms))

    def __repr__(self) -> str:
        return f"Atom({self.predicate.name!r}, {list(self.terms)!r})"

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate.name}({inner})"

    # -- schema-level helpers -------------------------------------------------

    def variables(self) -> Set[Variable]:
        """The set of variables occurring in this atom."""
        return {t for t in self.terms if isinstance(t, Variable)}

    def constants(self) -> Set[Constant]:
        """The set of constants occurring in this atom."""
        return {t for t in self.terms if isinstance(t, Constant)}

    def nulls(self) -> Set[Null]:
        """The set of labelled nulls occurring in this atom."""
        return {t for t in self.terms if isinstance(t, Null)}

    def is_ground(self) -> bool:
        """True iff the atom contains no variables (a fact)."""
        return all(is_ground(t) for t in self.terms)

    def positions_of(self, term: Term) -> Tuple[Position, ...]:
        """All positions at which ``term`` occurs in this atom."""
        return tuple(
            Position(self.predicate, i)
            for i, t in enumerate(self.terms)
            if t == term
        )

    def has_repeated_variables(self) -> bool:
        """True iff some variable occurs more than once."""
        seen: Set[Variable] = set()
        for t in self.terms:
            if isinstance(t, Variable):
                if t in seen:
                    return True
                seen.add(t)
        return False

    def substitute(self, mapping: Dict[Term, Term]) -> "Atom":
        """Apply ``mapping`` to the atom's terms (identity where absent)."""
        return Atom(self.predicate, [mapping.get(t, t) for t in self.terms])


def atoms_predicates(atoms: Iterable[Atom]) -> FrozenSet[Predicate]:
    """The set of predicates appearing in ``atoms``."""
    return frozenset(a.predicate for a in atoms)


# -- predicate interning ---------------------------------------------------

_PREDICATE_INTERN: Dict[Tuple[str, int], Predicate] = {}
_PREDICATE_LOCK = threading.Lock()


def intern_predicate(name: str, arity: int) -> Predicate:
    """The canonical :class:`Predicate` for ``(name, arity)``
    (thread-safe); unpickling funnels through this so schema objects
    stay deduplicated across ``process``-executor round-trips."""
    key = (name, arity)
    pred = _PREDICATE_INTERN.get(key)
    if pred is None:
        with _PREDICATE_LOCK:
            pred = _PREDICATE_INTERN.get(key)
            if pred is None:
                pred = Predicate(name, arity)
                _PREDICATE_INTERN[key] = pred
    return pred
