"""Compiled join plans: the indexed evaluation engine for conjunctions.

Enumerating homomorphisms of a rule body (or CQ body, or head) into an
instance is the hot loop of everything in this library — trigger
discovery, the restricted chase's applicability test, CQ evaluation,
the MFA-style deciders.  This module compiles a conjunction of atoms
once into a :class:`JoinPlan` and then executes it iteratively:

* **per-atom compilation** (:class:`AtomStep`) — the constant checks,
  the variable positions (grouped so repeated variables are verified
  in one pass), and which positions can seed a term-level index probe
  are all precomputed, so matching a candidate fact touches no Python
  introspection;
* **index probing** — at each join level the step asks the instance
  for the smallest ``(predicate, position, term)`` index row among the
  positions whose value is already known (a bound variable or a
  pattern constant), falling back to the whole relation;
* **iterative execution** — a single mutable assignment dict with an
  explicit unbind trail replaces the seed engine's
  ``dict(assignment)`` copy per matched atom and its recursion.

Determinism: index rows and relation rows are append-only and kept in
insertion order, and every candidate iterator is bounded by the row
count observed when the join level was entered.  The plan therefore
enumerates exactly the matches the naive insertion-order scan
enumerates, in the same order — a property the restricted chase and
the sequence-level tests rely on, and which
``tests/test_join_equivalence.py`` checks against the retained naive
reference implementation.

Plans and per-atom steps are cached globally, keyed by the ordered
atom tuple / the atom (capped — bodies synthesised from whole
instances, as in ``instance_homomorphism``, would otherwise
accumulate forever).  A given rule body stabilises to a handful of
distinct orders, so steady-state lookups are two dict hits.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .atoms import Atom
from .instances import Instance
from .terms import Term, Variable

Assignment = Dict[Variable, Term]


class AtomStep:
    """One compiled body atom: matcher + index-probe menu."""

    __slots__ = ("atom", "predicate", "const_checks", "var_groups")

    def __init__(self, atom: Atom):
        self.atom = atom
        self.predicate = atom.predicate
        const_checks: List[Tuple[int, Term]] = []
        positions_of: Dict[Variable, List[int]] = {}
        order: List[Variable] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                if term not in positions_of:
                    positions_of[term] = []
                    order.append(term)
                positions_of[term].append(position)
            else:
                # Constants (and nulls embedded in patterns) match
                # themselves.
                const_checks.append((position, term))
        self.const_checks: Tuple[Tuple[int, Term], ...] = tuple(const_checks)
        self.var_groups: Tuple[Tuple[Variable, Tuple[int, ...]], ...] = tuple(
            (var, tuple(positions_of[var])) for var in order
        )

    def variables(self) -> FrozenSet[Variable]:
        return frozenset(var for var, _ in self.var_groups)

    def candidates(self, instance: Instance, assignment: Assignment):
        """Candidate facts for this step under ``assignment``.

        A step whose variables are all bound determines a single ground
        fact, so the search collapses to one O(1) membership probe —
        the hot case of selective multi-atom joins (and of
        head-satisfaction checks on full TGDs), where scanning even the
        best index row would touch every fact sharing one term.

        Otherwise probes the most selective available index: pattern
        constants always seed a probe; a variable seeds one when an
        outer level already bound it.  Iteration is bounded by the row
        count at call time, which snapshots the relation without
        copying (rows are append-only).
        """
        for var, _ in self.var_groups:
            if var not in assignment:
                break
        else:
            fact = Atom(
                self.predicate,
                [
                    assignment[t] if isinstance(t, Variable) else t
                    for t in self.atom.terms
                ],
            )
            return iter((fact,)) if fact in instance else iter(())
        best = instance._rows(self.predicate)
        for position, term in self.const_checks:
            rows = instance._probe(self.predicate, position, term)
            if len(rows) < len(best):
                best = rows
        for var, positions in self.var_groups:
            bound = assignment.get(var)
            if bound is not None:
                rows = instance._probe(self.predicate, positions[0], bound)
                if len(rows) < len(best):
                    best = rows
        return _bounded_iter(best)

    def try_match(
        self, fact: Atom, assignment: Assignment
    ) -> Optional[Tuple[Variable, ...]]:
        """Extend ``assignment`` in place so the step's atom maps onto
        ``fact``.

        Precondition: ``fact.predicate == self.predicate`` — unlike
        :func:`repro.model.homomorphism.match_atom` there is no
        predicate guard here, because every caller draws facts from a
        per-predicate row list (:meth:`candidates`, or the engine's
        per-predicate pivot buckets) and the check would be pure
        overhead in the innermost join loop.

        Returns the variables newly bound by this match (possibly
        empty) or ``None`` on failure, in which case ``assignment`` is
        left untouched.
        """
        terms = fact.terms
        for position, term in self.const_checks:
            if terms[position] != term:
                return None
        newly: List[Variable] = []
        for var, positions in self.var_groups:
            value = terms[positions[0]]
            bound = assignment.get(var)
            if bound is None:
                ok = all(terms[p] == value for p in positions[1:])
                if ok:
                    assignment[var] = value
                    newly.append(var)
            else:
                ok = bound == value and all(
                    terms[p] == bound for p in positions[1:]
                )
            if not ok:
                for v in newly:
                    del assignment[v]
                return None
        return tuple(newly)


def _bounded_iter(rows: Sequence[Atom]) -> Iterator[Atom]:
    """Iterate ``rows`` up to its length *now*.

    Rows are append-only, so this is an O(1) snapshot: facts added to
    the instance while a homomorphism generator is suspended (the MFA
    Skolem chase does this) are not seen by already-entered join
    levels — exactly the seed engine's copy-on-read semantics, minus
    the copy.
    """
    for i in range(len(rows)):
        yield rows[i]


class JoinPlan:
    """A compiled conjunction: ordered steps ready for execution.

    ``cache_steps=False`` builds the per-atom steps without touching
    the shared step cache — used for oversized one-shot conjunctions
    that would otherwise flood it (see :data:`_PLAN_ATOM_CAP`).
    """

    __slots__ = ("steps", "variables")

    def __init__(self, ordered_atoms: Sequence[Atom], cache_steps: bool = True):
        make = atom_step if cache_steps else AtomStep
        self.steps: Tuple[AtomStep, ...] = tuple(
            make(atom) for atom in ordered_atoms
        )
        vars_: Set[Variable] = set()
        for step in self.steps:
            vars_ |= step.variables()
        self.variables: FrozenSet[Variable] = frozenset(vars_)

    def run(
        self, instance: Instance, assignment: Assignment
    ) -> Iterator[Assignment]:
        """Yield one dict per homomorphism extending ``assignment``.

        ``assignment`` is used as the working scratch dict and mutated
        during enumeration; it is restored to its input state when the
        generator is exhausted.  Yielded dicts are fresh copies.
        """
        steps = self.steps
        n = len(steps)
        if n == 0:
            yield dict(assignment)
            return
        iters: List[Optional[Iterator[Atom]]] = [None] * n
        trail: List[Tuple[Variable, ...]] = [()] * n
        depth = 0
        iters[0] = steps[0].candidates(instance, assignment)
        last = n - 1
        while True:
            step = steps[depth]
            newly: Optional[Tuple[Variable, ...]] = None
            for fact in iters[depth]:  # type: ignore[union-attr]
                newly = step.try_match(fact, assignment)
                if newly is not None:
                    break
            if newly is None:
                depth -= 1
                if depth < 0:
                    return
                for v in trail[depth]:
                    del assignment[v]
                continue
            if depth == last:
                yield dict(assignment)
                for v in newly:
                    del assignment[v]
            else:
                trail[depth] = newly
                depth += 1
                iters[depth] = steps[depth].candidates(instance, assignment)

    def first(
        self, instance: Instance, assignment: Assignment
    ) -> Optional[Assignment]:
        """The first homomorphism, or ``None`` — the applicability test
        of the restricted chase and of head-satisfaction checks."""
        return next(self.run(instance, assignment), None)


def order_atoms(
    atoms: Sequence[Atom],
    instance: Instance,
    bound: FrozenSet[Variable] = frozenset(),
) -> Tuple[Atom, ...]:
    """Join order: connected atoms first, then fewest candidate facts,
    then fewest new variables (most-constrained-first).

    ``bound`` are the variables an outer context has already fixed
    (e.g. a semi-naive pivot's bindings) — atoms sharing them count as
    connected and can seed index probes immediately.
    """
    remaining = [
        (atom, atom.variables(), instance.count_with_predicate(atom.predicate))
        for atom in atoms
    ]
    ordered: List[Atom] = []
    seen: Set[Variable] = set(bound)
    while remaining:

        def cost(entry: Tuple[Atom, Set[Variable], int]) -> Tuple[bool, int, int]:
            _, atom_vars, fan_out = entry
            disconnected = bool(atom_vars) and not (atom_vars & seen)
            return (disconnected, fan_out, len(atom_vars - seen))

        best = min(remaining, key=cost)
        remaining.remove(best)
        ordered.append(best[0])
        seen |= best[1]
    return tuple(ordered)


# -- caches ----------------------------------------------------------------

_STEP_CACHE: Dict[Atom, AtomStep] = {}
_PLAN_CACHE: Dict[Tuple[Atom, ...], JoinPlan] = {}
_CACHE_CAP = 4096
_PLAN_ATOM_CAP = 32
"""Conjunctions longer than this (instance-sized bodies synthesised by
``instance_homomorphism``) are compiled fresh each call instead of
cached: they would pin large plans and, on hitting the entry cap,
evict every small hot rule plan at once."""


def atom_step(atom: Atom) -> AtomStep:
    """The (cached) compiled step for one atom — the building block the
    chase engine uses for semi-naive pivot matching."""
    step = _STEP_CACHE.get(atom)
    if step is None:
        if len(_STEP_CACHE) >= _CACHE_CAP:
            _STEP_CACHE.clear()
        step = AtomStep(atom)
        _STEP_CACHE[atom] = step
    return step


def compile_plan(ordered_atoms: Sequence[Atom]) -> JoinPlan:
    """The (cached) plan executing ``ordered_atoms`` in the given order."""
    key = tuple(ordered_atoms)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        if len(key) > _PLAN_ATOM_CAP:
            return JoinPlan(key, cache_steps=False)
        if len(_PLAN_CACHE) >= _CACHE_CAP:
            _PLAN_CACHE.clear()
        plan = JoinPlan(key)
        _PLAN_CACHE[key] = plan
    return plan


def plan_for(
    atoms: Sequence[Atom],
    instance: Instance,
    bound: FrozenSet[Variable] = frozenset(),
) -> JoinPlan:
    """Order ``atoms`` for ``instance`` and return the compiled plan.

    Ordering is a cheap O(k²) pass over the conjunction (fan-outs are
    O(1) lookups); the expensive per-atom compilation is cached, and a
    given conjunction stabilises to a handful of distinct orders, so
    in the steady state this is two dict hits.
    """
    return compile_plan(order_atoms(atoms, instance, bound))
