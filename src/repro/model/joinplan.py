"""Compiled join plans: the interned-id evaluation engine for
conjunctions.

Enumerating homomorphisms of a rule body (or CQ body, or head) into an
instance is the hot loop of everything in this library — trigger
discovery, the restricted chase's applicability test, CQ evaluation,
the MFA-style deciders.  PR 1 compiled conjunctions into index-probing
plans over :class:`Atom` objects; this revision pushes the same plans
down onto the columnar fact core (:mod:`repro.model.instances`), so
the innermost loop touches **only small integers**:

* **slot-based assignments** — a compiled plan numbers its variables
  into dense *slots*; the working assignment is a plain list indexed
  by slot, so binding, probing and comparing never call a Python-level
  ``__hash__``/``__eq__`` (the old ``Variable``-keyed dict paid one
  method call per access);
* **per-atom resolution** (:class:`ResolvedStep`) — constant checks
  become ``(position, term_id)`` pairs, repeated variables become
  grouped positions, and the fully-bound case collapses to one row
  membership probe, all against a specific instance's id space;
* **index probing** — at each join level the step picks the smallest
  ``(pred_id, position, term_id)`` index row among the positions whose
  id is already known, falling back to the whole relation — the same
  selection rule, and therefore the same candidate order, as the
  object-level engine it replaces;
* **iterative execution** — a single mutable slot list with an
  explicit unbind trail; candidate iteration is bounded by the row
  count observed when the join level was entered (rows are
  append-only), preserving the copy-on-read snapshot semantics.

Determinism: index rows and relation rows are append-only and kept in
insertion order, the probe-selection rule is unchanged, and interning
never reorders rows — so a compiled plan enumerates exactly the
matches the naive insertion-order scan enumerates, in the same order.
``tests/test_join_equivalence.py`` holds the engine to that against
the retained naive reference implementation, assignment-for-assignment.

Resolution artifacts (steps, execs) are cached **per instance** (in
``Instance._plans``, capped) because constant ids are meaningless
across id spaces; the symbolic :class:`JoinPlan`/:class:`AtomStep`
objects keep their global caches and their public object-level
contracts — they encode at entry and decode at yield, so existing
callers see Variable→Term dicts exactly as before.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .atoms import Atom
from .instances import Instance
from .terms import Term, Variable

Assignment = Dict[Variable, Term]

_EMPTY_ROWS: Tuple = ()


# -- the int-level executor ------------------------------------------------


class ResolvedStep:
    """One body atom resolved against an instance's id space.

    ``const_checks`` are ``(position, term_id)`` pairs; ``groups`` are
    ``(slot, first_position, other_positions)`` triples, one per
    distinct variable; ``build`` rebuilds the fully-determined row for
    the all-bound membership fast path as ``(is_const, id_or_slot)``
    entries, one per position.

    Steps are cached per instance, so they bind the instance's index
    dicts directly — probing skips the accessor-method dispatch (the
    dict objects are never replaced, only grown).
    """

    __slots__ = ("pid", "const_checks", "groups", "build",
                 "_index_get", "_rows_get", "_members_get")

    def __init__(self, instance: Instance, atom: Atom,
                 slot_env: Dict[Variable, int]):
        # pred_id first: on a lazily reopened durable store it hydrates
        # the relation, so the dicts bound below are already complete
        # (and, per the FactStore contract, never replaced afterwards).
        self.pid = instance.pred_id(atom.predicate)
        store = instance.store
        self._index_get = store.index.get
        self._rows_get = store.rows_by_pid.get
        self._members_get = store.member_by_pid.get
        const_checks: List[Tuple[int, int]] = []
        positions_of: Dict[Variable, List[int]] = {}
        order: List[Variable] = []
        build: List[Tuple[bool, int]] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                if term not in positions_of:
                    positions_of[term] = []
                    order.append(term)
                    if term not in slot_env:
                        slot_env[term] = len(slot_env)
                positions_of[term].append(position)
                build.append((False, slot_env[term]))
            else:
                # Constants (and nulls embedded in patterns) match
                # themselves; interning here is deterministic because
                # engines pre-intern all rule symbols serially.
                tid = instance.term_id(term)
                const_checks.append((position, tid))
                build.append((True, tid))
        self.const_checks: Tuple[Tuple[int, int], ...] = tuple(const_checks)
        self.groups: Tuple[Tuple[int, int, Tuple[int, ...]], ...] = tuple(
            (slot_env[var], positions_of[var][0],
             tuple(positions_of[var][1:]))
            for var in order
        )
        self.build: Tuple[Tuple[bool, int], ...] = tuple(build)

    def match(self, row: Tuple[int, ...],
              assign: List[Optional[int]]) -> Optional[List[int]]:
        """Extend ``assign`` in place so this atom maps onto ``row``.

        Returns the slots newly bound (possibly empty) or ``None`` on
        failure, in which case ``assign`` is left untouched.  The same
        logic is inlined in :meth:`PlanExec.run`'s innermost loop.
        """
        for pos, tid in self.const_checks:
            if row[pos] != tid:
                return None
        newly: List[int] = []
        for slot, p0, rest in self.groups:
            value = row[p0]
            bound = assign[slot]
            if bound is None:
                ok = True
                for p in rest:
                    if row[p] != value:
                        ok = False
                        break
                if ok:
                    assign[slot] = value
                    newly.append(slot)
                    continue
            elif bound == value:
                ok = True
                for p in rest:
                    if row[p] != bound:
                        ok = False
                        break
                if ok:
                    continue
            for s in newly:
                assign[s] = None
            return None
        return newly

    def candidates(
        self, instance: Instance, assign: List[Optional[int]]
    ) -> Tuple[Sequence[Tuple[int, ...]], int]:
        """``(rows, limit)`` of candidate rows under ``assign``.

        A step whose slots are all bound determines a single ground
        row, so the search collapses to one O(1) membership probe.
        Otherwise the most selective available index row is returned;
        ``limit`` snapshots its length now (rows are append-only).
        """
        for slot, _, _ in self.groups:
            if assign[slot] is None:
                break
        else:
            row = tuple(
                v if is_const else assign[v]
                for is_const, v in self.build
            )
            member = self._members_get(self.pid)
            if member is not None and row in member:
                return (row,), 1
            return _EMPTY_ROWS, 0
        pid = self.pid
        best = self._rows_get(pid)
        if best is None:
            best = _EMPTY_ROWS
        index_get = self._index_get
        for pos, tid in self.const_checks:
            rows = index_get((pid, pos, tid), _EMPTY_ROWS)
            if len(rows) < len(best):
                best = rows
        for slot, p0, _ in self.groups:
            bound = assign[slot]
            if bound is not None:
                rows = index_get((pid, p0, bound), _EMPTY_ROWS)
                if len(rows) < len(best):
                    best = rows
        return best, len(best)


class PlanExec:
    """A resolved, slot-numbered plan ready to run over int rows."""

    __slots__ = ("steps", "nslots", "slot_of", "out")

    def __init__(self, steps: Sequence[ResolvedStep],
                 slot_env: Dict[Variable, int]):
        self.steps: Tuple[ResolvedStep, ...] = tuple(steps)
        self.nslots = len(slot_env)
        self.slot_of: Dict[Variable, int] = dict(slot_env)
        self.out: Tuple[Tuple[Variable, int], ...] = tuple(
            slot_env.items()
        )

    def fresh_assign(self) -> List[Optional[int]]:
        """A cleared working assignment."""
        return [None] * self.nslots

    def run(
        self, instance: Instance, assign: List[Optional[int]]
    ) -> Iterator[List[Optional[int]]]:
        """Yield the live ``assign`` list once per full match.

        ``assign`` is the working scratch (pre-seed bound slots before
        calling); it is mutated during enumeration and restored to its
        input state when the generator is exhausted.  Consumers must
        read out the slots they need before advancing.
        """
        steps = self.steps
        n = len(steps)
        if n == 0:
            yield assign
            return
        if n == 1:
            # Single-step fast path (most rest-of-body joins after a
            # pivot): no depth stacks, one scan.
            step = steps[0]
            const_checks = step.const_checks
            groups = step.groups
            rows, lim = step.candidates(instance, assign)
            i = 0
            while i < lim:
                row = rows[i]
                i += 1
                ok = True
                for pos, tid in const_checks:
                    if row[pos] != tid:
                        ok = False
                        break
                if not ok:
                    continue
                bound_here: Optional[List[int]] = None
                for slot, p0, rest in groups:
                    value = row[p0]
                    bound = assign[slot]
                    if bound is None:
                        ok = True
                        for p in rest:
                            if row[p] != value:
                                ok = False
                                break
                        if ok:
                            assign[slot] = value
                            if bound_here is None:
                                bound_here = [slot]
                            else:
                                bound_here.append(slot)
                            continue
                    elif bound == value:
                        ok = True
                        for p in rest:
                            if row[p] != bound:
                                ok = False
                                break
                        if ok:
                            continue
                    else:
                        ok = False
                    if bound_here:
                        for s in bound_here:
                            assign[s] = None
                    break
                if ok:
                    yield assign
                    if bound_here:
                        for s in bound_here:
                            assign[s] = None
            return
        rows_stack: List[Sequence] = [_EMPTY_ROWS] * n
        idx_stack = [0] * n
        lim_stack = [0] * n
        trail: List[List[int]] = [[]] * n
        depth = 0
        rows, lim = steps[0].candidates(instance, assign)
        rows_stack[0] = rows
        lim_stack[0] = lim
        last = n - 1
        while True:
            step = steps[depth]
            const_checks = step.const_checks
            groups = step.groups
            rows = rows_stack[depth]
            i = idx_stack[depth]
            lim = lim_stack[depth]
            newly: Optional[List[int]] = None
            # -- innermost loop: scan candidate rows, match inline ----
            while i < lim:
                row = rows[i]
                i += 1
                ok = True
                for pos, tid in const_checks:
                    if row[pos] != tid:
                        ok = False
                        break
                if not ok:
                    continue
                bound_here: Optional[List[int]] = None
                for slot, p0, rest in groups:
                    value = row[p0]
                    bound = assign[slot]
                    if bound is None:
                        ok = True
                        for p in rest:
                            if row[p] != value:
                                ok = False
                                break
                        if ok:
                            assign[slot] = value
                            if bound_here is None:
                                bound_here = [slot]
                            else:
                                bound_here.append(slot)
                            continue
                    elif bound == value:
                        ok = True
                        for p in rest:
                            if row[p] != bound:
                                ok = False
                                break
                        if ok:
                            continue
                    else:
                        ok = False
                    if bound_here:
                        for s in bound_here:
                            assign[s] = None
                    break
                if ok:
                    newly = bound_here if bound_here is not None else []
                    break
            idx_stack[depth] = i
            if newly is None:
                depth -= 1
                if depth < 0:
                    return
                for s in trail[depth]:
                    assign[s] = None
                continue
            if depth == last:
                yield assign
                for s in newly:
                    assign[s] = None
            else:
                trail[depth] = newly
                depth += 1
                rows, lim = steps[depth].candidates(instance, assign)
                rows_stack[depth] = rows
                idx_stack[depth] = 0
                lim_stack[depth] = lim

    def first(
        self, instance: Instance, assign: List[Optional[int]]
    ) -> bool:
        """True iff at least one full match exists from ``assign``."""
        for _ in self.run(instance, assign):
            return True
        return False


# -- per-instance resolution -----------------------------------------------

_RESOLVE_CACHE_CAP = 4096
_PLAN_ATOM_CAP = 32
"""Conjunctions longer than this (instance-sized bodies synthesised by
``instance_homomorphism``) are resolved fresh each call instead of
cached: they would pin large execs and, on hitting the entry cap,
evict every small hot exec at once."""


def resolve_step(instance: Instance, atom: Atom,
                 slot_env: Dict[Variable, int]) -> ResolvedStep:
    """Resolve one atom against ``instance``'s id space, assigning new
    slots into ``slot_env`` for unseen variables."""
    return ResolvedStep(instance, atom, slot_env)


def resolve_exec(
    instance: Instance, ordered_atoms: Sequence[Atom]
) -> PlanExec:
    """The (per-instance cached) exec running ``ordered_atoms`` in the
    given order."""
    key = tuple(ordered_atoms)
    cache = instance._plans
    exec_ = cache.get(key)
    if exec_ is None:
        env: Dict[Variable, int] = {}
        steps = [ResolvedStep(instance, atom, env) for atom in key]
        exec_ = PlanExec(steps, env)
        if len(key) <= _PLAN_ATOM_CAP:
            if len(cache) >= _RESOLVE_CACHE_CAP:
                cache.clear()
            cache[key] = exec_
    return exec_


# -- the symbolic (object-level) surface -----------------------------------


class AtomStep:
    """One compiled body atom: matcher + index-probe menu.

    The object-level building block retained for public callers and
    the naive reference paths; the engines run :class:`ResolvedStep`
    instead.  ``try_match`` is pure object logic; ``candidates``
    probes the instance's int indexes and decodes the matching rows
    back to Atoms.
    """

    __slots__ = ("atom", "predicate", "const_checks", "var_groups")

    def __init__(self, atom: Atom):
        self.atom = atom
        self.predicate = atom.predicate
        const_checks: List[Tuple[int, Term]] = []
        positions_of: Dict[Variable, List[int]] = {}
        order: List[Variable] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                if term not in positions_of:
                    positions_of[term] = []
                    order.append(term)
                positions_of[term].append(position)
            else:
                # Constants (and nulls embedded in patterns) match
                # themselves.
                const_checks.append((position, term))
        self.const_checks: Tuple[Tuple[int, Term], ...] = tuple(const_checks)
        self.var_groups: Tuple[Tuple[Variable, Tuple[int, ...]], ...] = tuple(
            (var, tuple(positions_of[var])) for var in order
        )

    def variables(self) -> FrozenSet[Variable]:
        return frozenset(var for var, _ in self.var_groups)

    def candidates(self, instance: Instance, assignment: Assignment):
        """Candidate facts for this step under ``assignment``.

        A step whose variables are all bound determines a single ground
        fact, so the search collapses to one O(1) membership probe.
        Otherwise probes the most selective available index and decodes
        the row list (bounded by its length now) back to Atoms.
        """
        for var, _ in self.var_groups:
            if var not in assignment:
                break
        else:
            fact = Atom(
                self.predicate,
                [
                    assignment[t] if isinstance(t, Variable) else t
                    for t in self.atom.terms
                ],
            )
            return iter((fact,)) if fact in instance else iter(())
        pid = instance.pred_id_get(self.predicate)
        if pid is None:
            return iter(())
        tid_get = instance.term_id_get
        best = instance.rows_of(pid)
        for position, term in self.const_checks:
            tid = tid_get(term)
            rows = (
                instance.probe_rows(pid, position, tid)
                if tid is not None else _EMPTY_ROWS
            )
            if len(rows) < len(best):
                best = rows
        for var, positions in self.var_groups:
            bound = assignment.get(var)
            if bound is not None:
                tid = tid_get(bound)
                rows = (
                    instance.probe_rows(pid, positions[0], tid)
                    if tid is not None else _EMPTY_ROWS
                )
                if len(rows) < len(best):
                    best = rows
        member = instance.member_rows(pid)
        atom_at = instance.atom_at
        return iter(
            [atom_at(member[row]) for row in best[: len(best)]]
        )

    def try_match(
        self, fact: Atom, assignment: Assignment
    ) -> Optional[Tuple[Variable, ...]]:
        """Extend ``assignment`` in place so the step's atom maps onto
        ``fact``.

        Precondition: ``fact.predicate == self.predicate`` — callers
        draw facts from a per-predicate row list and the check would be
        pure overhead.

        Returns the variables newly bound by this match (possibly
        empty) or ``None`` on failure, in which case ``assignment`` is
        left untouched.
        """
        terms = fact.terms
        for position, term in self.const_checks:
            if terms[position] != term:
                return None
        newly: List[Variable] = []
        for var, positions in self.var_groups:
            value = terms[positions[0]]
            bound = assignment.get(var)
            if bound is None:
                ok = all(terms[p] == value for p in positions[1:])
                if ok:
                    assignment[var] = value
                    newly.append(var)
            else:
                ok = bound == value and all(
                    terms[p] == bound for p in positions[1:]
                )
            if not ok:
                for v in newly:
                    del assignment[v]
                return None
        return tuple(newly)


class JoinPlan:
    """A compiled conjunction: ordered atoms ready for execution.

    The public object-level surface: ``run`` accepts and yields
    Variable→Term dicts exactly as before, but executes on the
    interned-id engine — the partial assignment is encoded to slot ids
    at entry and every match is decoded at yield, so only the
    conjunction's *results* ever materialize as objects.
    """

    __slots__ = ("atoms", "steps", "variables")

    def __init__(self, ordered_atoms: Sequence[Atom], cache_steps: bool = True):
        self.atoms: Tuple[Atom, ...] = tuple(ordered_atoms)
        make = atom_step if cache_steps else AtomStep
        self.steps: Tuple[AtomStep, ...] = tuple(
            make(atom) for atom in self.atoms
        )
        vars_: Set[Variable] = set()
        for step in self.steps:
            vars_ |= step.variables()
        self.variables: FrozenSet[Variable] = frozenset(vars_)

    def run(
        self, instance: Instance, assignment: Assignment
    ) -> Iterator[Assignment]:
        """Yield one fresh dict per homomorphism extending
        ``assignment`` (which is never mutated)."""
        exec_ = resolve_exec(instance, self.atoms)
        assign = exec_.fresh_assign()
        extra: List[Tuple[Variable, Term]] = []
        slot_of = exec_.slot_of
        for var, term in assignment.items():
            slot = slot_of.get(var)
            if slot is None:
                extra.append((var, term))
            else:
                assign[slot] = instance.term_id(term)
        out = exec_.out
        obj = instance.symbols.obj
        for match in exec_.run(instance, assign):
            result: Assignment = dict(extra)
            for var, slot in out:
                result[var] = obj(match[slot])
            yield result

    def first(
        self, instance: Instance, assignment: Assignment
    ) -> Optional[Assignment]:
        """The first homomorphism, or ``None`` — the applicability test
        of the restricted chase and of head-satisfaction checks."""
        return next(self.run(instance, assignment), None)


def order_atoms(
    atoms: Sequence[Atom],
    instance: Instance,
    bound: FrozenSet[Variable] = frozenset(),
) -> Tuple[Atom, ...]:
    """Join order: connected atoms first, then fewest candidate facts,
    then fewest new variables (most-constrained-first).

    ``bound`` are the variables an outer context has already fixed
    (e.g. a semi-naive pivot's bindings) — atoms sharing them count as
    connected and can seed index probes immediately.
    """
    remaining = [
        (atom, atom.variables(), instance.count_with_predicate(atom.predicate))
        for atom in atoms
    ]
    ordered: List[Atom] = []
    seen: Set[Variable] = set(bound)
    while remaining:

        def cost(entry: Tuple[Atom, Set[Variable], int]) -> Tuple[bool, int, int]:
            _, atom_vars, fan_out = entry
            disconnected = bool(atom_vars) and not (atom_vars & seen)
            return (disconnected, fan_out, len(atom_vars - seen))

        best = min(remaining, key=cost)
        remaining.remove(best)
        ordered.append(best[0])
        seen |= best[1]
    return tuple(ordered)


# -- caches ----------------------------------------------------------------

_STEP_CACHE: Dict[Atom, AtomStep] = {}
_PLAN_CACHE: Dict[Tuple[Atom, ...], JoinPlan] = {}
_CACHE_CAP = 4096


def atom_step(atom: Atom) -> AtomStep:
    """The (cached) compiled object-level step for one atom."""
    step = _STEP_CACHE.get(atom)
    if step is None:
        if len(_STEP_CACHE) >= _CACHE_CAP:
            _STEP_CACHE.clear()
        step = AtomStep(atom)
        _STEP_CACHE[atom] = step
    return step


def compile_plan(ordered_atoms: Sequence[Atom]) -> JoinPlan:
    """The (cached) plan executing ``ordered_atoms`` in the given order."""
    key = tuple(ordered_atoms)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        if len(key) > _PLAN_ATOM_CAP:
            return JoinPlan(key, cache_steps=False)
        if len(_PLAN_CACHE) >= _CACHE_CAP:
            _PLAN_CACHE.clear()
        plan = JoinPlan(key)
        _PLAN_CACHE[key] = plan
    return plan


def plan_for(
    atoms: Sequence[Atom],
    instance: Instance,
    bound: FrozenSet[Variable] = frozenset(),
) -> JoinPlan:
    """Order ``atoms`` for ``instance`` and return the compiled plan.

    Ordering is a cheap O(k²) pass over the conjunction (fan-outs are
    O(1) lookups); the expensive per-atom resolution is cached per
    instance, and a given conjunction stabilises to a handful of
    distinct orders, so in the steady state this is two dict hits.
    """
    return compile_plan(order_atoms(atoms, instance, bound))
