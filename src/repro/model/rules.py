"""Tuple-generating dependencies (TGDs, a.k.a. existential rules).

A TGD has the shape::

    forall X forall Y ( phi(X, Y)  ->  exists Z  psi(Y, Z) )

where ``phi`` (the *body*) and ``psi`` (the *head*) are conjunctions of
atoms.  Following the paper:

* the *frontier* of a TGD is the set of universally quantified
  variables shared by body and head (the ``Y`` above);
* the *existential* variables are the head variables not occurring in
  the body (the ``Z``);
* a TGD is *guarded* if some body atom contains every universally
  quantified body variable (Calì, Gottlob & Kifer);
* a TGD is *linear* if its body has exactly one atom, and *simple
  linear* if additionally no variable is repeated in the body.
"""

from __future__ import annotations

from operator import itemgetter as _itemgetter
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .atoms import Atom, Position, Predicate
from .terms import Constant, Term, Variable


def _EMPTY_PROJECTION(ids):
    return ()


class TGD:
    """A tuple-generating dependency ``body -> head``.

    ``label`` is an optional human-readable name used in printed
    certificates and error messages.
    """

    __slots__ = (
        "body",
        "head",
        "label",
        "_hash",
        "_frontier",
        "_existential",
        "_body_vars",
        "_head_vars",
        "_frontier_sorted",
        "_existential_sorted",
        "_body_vars_sorted",
        "_frontier_idx",
        "_frontier_get",
    )

    def __init__(
        self,
        body: Sequence[Atom],
        head: Sequence[Atom],
        label: str = "",
    ):
        body = tuple(body)
        head = tuple(head)
        if not body:
            raise ValueError("a TGD needs a non-empty body")
        if not head:
            raise ValueError("a TGD needs a non-empty head")
        self.body = body
        self.head = head
        self.label = label
        self._hash = hash(("TGD", body, head))
        body_vars: Set[Variable] = set()
        for atom in body:
            body_vars |= atom.variables()
        head_vars: Set[Variable] = set()
        for atom in head:
            head_vars |= atom.variables()
        self._body_vars = frozenset(body_vars)
        self._head_vars = frozenset(head_vars)
        self._frontier = frozenset(body_vars & head_vars)
        self._existential = frozenset(head_vars - body_vars)
        # Sorted orders, precomputed once: trigger keys, frontier
        # images, and existential-null creation all need a canonical
        # variable order and used to re-sort on every firing.
        self._frontier_sorted = tuple(sorted(self._frontier))
        self._existential_sorted = tuple(sorted(self._existential))
        self._body_vars_sorted = tuple(sorted(self._body_vars))
        # Positions of the frontier inside the sorted body variables —
        # the int-level trigger representation keys semi-oblivious
        # identification by projecting these indices.  ``_frontier_get``
        # is the compiled projector: None when the frontier covers the
        # whole body (identity), else an itemgetter returning the
        # projected id tuple (or scalar for a single frontier variable,
        # which cannot collide — a rule's key shape is fixed).
        body_index = {v: i for i, v in enumerate(self._body_vars_sorted)}
        self._frontier_idx = tuple(
            body_index[v] for v in self._frontier_sorted
        )
        if len(self._frontier_idx) == len(self._body_vars_sorted):
            self._frontier_get = None
        elif self._frontier_idx:
            self._frontier_get = _itemgetter(*self._frontier_idx)
        else:
            self._frontier_get = _EMPTY_PROJECTION

    # -- identity --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TGD)
            and self.body == other.body
            and self.head == other.head
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Constructor reconstruction: recomputes the cached hash and
        # the precomputed variable orders on the receiving interpreter
        # (see :mod:`repro.model.terms` on why slot-state pickling of
        # hash-caching classes is unsound across processes).
        return (TGD, (self.body, self.head, self.label))

    def __repr__(self) -> str:
        return f"TGD({list(self.body)!r}, {list(self.head)!r})"

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        head = ", ".join(str(a) for a in self.head)
        if self._existential:
            ex = ",".join(sorted(v.name for v in self._existential))
            return f"{body} -> exists {ex} . {head}"
        return f"{body} -> {head}"

    # -- variable structure ------------------------------------------------

    @property
    def body_variables(self) -> FrozenSet[Variable]:
        """All universally quantified variables (variables of the body)."""
        return self._body_vars

    @property
    def head_variables(self) -> FrozenSet[Variable]:
        """All variables of the head."""
        return self._head_vars

    @property
    def frontier(self) -> FrozenSet[Variable]:
        """Variables shared by body and head."""
        return self._frontier

    @property
    def existential_variables(self) -> FrozenSet[Variable]:
        """Head variables bound by the existential quantifier."""
        return self._existential

    @property
    def frontier_sorted(self) -> Tuple[Variable, ...]:
        """The frontier in name order (precomputed)."""
        return self._frontier_sorted

    @property
    def existentials_sorted(self) -> Tuple[Variable, ...]:
        """The existential variables in name order (precomputed)."""
        return self._existential_sorted

    @property
    def body_variables_sorted(self) -> Tuple[Variable, ...]:
        """All body variables in name order (precomputed)."""
        return self._body_vars_sorted

    @property
    def frontier_body_indices(self) -> Tuple[int, ...]:
        """Indices of the (sorted) frontier within the sorted body
        variables (precomputed) — used by int-level trigger keys."""
        return self._frontier_idx

    def is_full(self) -> bool:
        """True iff the TGD has no existential variables (a full TGD)."""
        return not self._existential

    # -- syntactic classes ---------------------------------------------------

    def is_linear(self) -> bool:
        """True iff the body consists of a single atom."""
        return len(self.body) == 1

    def is_simple_linear(self) -> bool:
        """True iff linear and no variable repeats in the body atom."""
        return self.is_linear() and not self.body[0].has_repeated_variables()

    def guards(self) -> Tuple[Atom, ...]:
        """The body atoms containing *all* body variables (may be empty)."""
        return tuple(
            atom
            for atom in self.body
            if self._body_vars <= atom.variables()
        )

    def guard(self) -> Optional[Atom]:
        """A canonical guard atom (first in body order), or ``None``."""
        for atom in self.body:
            if self._body_vars <= atom.variables():
                return atom
        return None

    def is_guarded(self) -> bool:
        """True iff some body atom guards all body variables."""
        return self.guard() is not None

    def is_single_head(self) -> bool:
        """True iff the head consists of a single atom."""
        return len(self.head) == 1

    # -- positions -------------------------------------------------------

    def body_positions_of(self, var: Variable) -> Tuple[Position, ...]:
        """All body positions at which ``var`` occurs."""
        out: List[Position] = []
        for atom in self.body:
            out.extend(atom.positions_of(var))
        return tuple(out)

    def head_positions_of(self, var: Variable) -> Tuple[Position, ...]:
        """All head positions at which ``var`` occurs."""
        out: List[Position] = []
        for atom in self.head:
            out.extend(atom.positions_of(var))
        return tuple(out)

    def predicates(self) -> FrozenSet[Predicate]:
        """All predicates mentioned by the TGD."""
        return frozenset(
            a.predicate for a in self.body
        ) | frozenset(a.predicate for a in self.head)

    def constants(self) -> FrozenSet[Constant]:
        """All constants mentioned by the TGD."""
        out: Set[Constant] = set()
        for atom in self.body + self.head:
            out |= atom.constants()
        return frozenset(out)

    def rename_apart(self, suffix: str) -> "TGD":
        """Return a variant whose variables carry ``suffix`` (for safe
        composition of rule sets, e.g. by the looping operator)."""
        mapping: Dict[Term, Term] = {
            v: Variable(v.name + suffix)
            for v in self._body_vars | self._head_vars
        }
        return TGD(
            [a.substitute(mapping) for a in self.body],
            [a.substitute(mapping) for a in self.head],
            label=self.label,
        )


def program_predicates(rules: Iterable[TGD]) -> FrozenSet[Predicate]:
    """All predicates mentioned by a set of TGDs."""
    out: Set[Predicate] = set()
    for rule in rules:
        out |= rule.predicates()
    return frozenset(out)


def program_constants(rules: Iterable[TGD]) -> FrozenSet[Constant]:
    """All constants mentioned by a set of TGDs."""
    out: Set[Constant] = set()
    for rule in rules:
        out |= rule.constants()
    return frozenset(out)


def validate_program(rules: Sequence[TGD]) -> None:
    """Check arity-consistency of predicate usage across ``rules``.

    Raises ``ValueError`` when the same predicate name is used with two
    different arities — a frequent authoring mistake that would
    otherwise surface as a confusing empty chase.
    """
    arities: Dict[str, int] = {}
    for rule in rules:
        for pred in rule.predicates():
            prev = arities.get(pred.name)
            if prev is None:
                arities[pred.name] = pred.arity
            elif prev != pred.arity:
                raise ValueError(
                    f"predicate {pred.name!r} used with arities "
                    f"{prev} and {pred.arity}"
                )
