"""Homomorphisms: from conjunctions of atoms into instances, and
between instances.

Two flavours are needed by the library:

* :func:`homomorphisms` — all assignments of the variables of a
  conjunction ``atoms`` to terms of an instance such that every atom
  maps to a fact.  Constants map to themselves.  This drives trigger
  computation, CQ evaluation, and the restricted chase's applicability
  test.
* :func:`instance_homomorphism` — a homomorphism between instances
  that is the identity on constants and maps nulls to arbitrary terms;
  this is the universality test of chase results (§1 of the paper).

The implementation is a deterministic indexed join: conjunctions are
ordered most-constrained-first, compiled once into a
:class:`~repro.model.joinplan.JoinPlan`, and executed iteratively with
term-level index probes supplied by
:class:`~repro.model.instances.Instance`.  The pre-index backtracking
matcher is retained as :func:`naive_homomorphisms` — it enumerates the
same assignments in the same order and serves as the reference
implementation for the equivalence tests and the benchmark baseline.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from .atoms import Atom
from .instances import Instance
from .joinplan import order_atoms, plan_for
from .terms import Null, Term, Variable


Assignment = Dict[Variable, Term]


def match_atom(
    pattern: Atom, fact: Atom, assignment: Assignment
) -> Optional[Assignment]:
    """Extend ``assignment`` so that ``pattern`` maps onto ``fact``.

    Returns the extended assignment, or ``None`` if the match fails.
    ``assignment`` itself is never mutated.
    """
    if pattern.predicate != fact.predicate:
        return None
    out = dict(assignment)
    for pat_term, fact_term in zip(pattern.terms, fact.terms):
        if isinstance(pat_term, Variable):
            bound = out.get(pat_term)
            if bound is None:
                out[pat_term] = fact_term
            elif bound != fact_term:
                return None
        elif pat_term != fact_term:
            # Constants (and nulls embedded in patterns) match themselves.
            return None
    return out


def homomorphisms(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Optional[Assignment] = None,
) -> Iterator[Assignment]:
    """Yield every homomorphism from ``atoms`` into ``instance``.

    Each yielded assignment maps every variable of ``atoms`` to a term
    of the instance and extends ``partial`` if given.  Assignments are
    yielded in a deterministic order (insertion order of the matched
    facts under a most-constrained-first join order).
    """
    if not atoms:
        yield dict(partial or {})
        return
    if partial:
        plan = plan_for(atoms, instance, frozenset(partial))
        yield from plan.run(instance, dict(partial))
    else:
        yield from plan_for(atoms, instance).run(instance, {})


def naive_homomorphisms(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Optional[Assignment] = None,
) -> Iterator[Assignment]:
    """The seed engine's recursive backtracking matcher, retained as the
    reference implementation.

    Scans every fact of each atom's relation and copies the assignment
    per matched atom — no term-level indexes, no in-place binding.  It
    uses the same join order as :func:`homomorphisms` and must yield
    exactly the same assignments in the same order; the property tests
    and the benchmark harness both hold it to that.
    """
    if not atoms:
        yield dict(partial or {})
        return
    bound = frozenset(partial) if partial else frozenset()
    ordered = order_atoms(atoms, instance, bound)

    def extend(idx: int, assignment: Assignment) -> Iterator[Assignment]:
        if idx == len(ordered):
            yield assignment
            return
        pattern = ordered[idx]
        for fact in instance.facts_with_predicate(pattern.predicate):
            nxt = match_atom(pattern, fact, assignment)
            if nxt is not None:
                yield from extend(idx + 1, nxt)

    yield from extend(0, dict(partial or {}))


def has_homomorphism(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Optional[Assignment] = None,
) -> bool:
    """True iff at least one homomorphism exists."""
    if not atoms:
        return True
    if partial:
        plan = plan_for(atoms, instance, frozenset(partial))
        return plan.first(instance, dict(partial)) is not None
    return plan_for(atoms, instance).first(instance, {}) is not None


def apply_assignment(atoms: Sequence[Atom], assignment: Assignment) -> List[Atom]:
    """Instantiate ``atoms`` under ``assignment`` (variables must be covered
    for the result to be ground; uncovered variables survive)."""
    mapping: Dict[Term, Term] = dict(assignment)
    return [a.substitute(mapping) for a in atoms]


def instance_homomorphism(
    source: Instance, target: Instance
) -> Optional[Dict[Term, Term]]:
    """A homomorphism ``source -> target``: identity on constants, nulls
    map to arbitrary target terms.  Returns the mapping or ``None``.

    This is the universality check: the result of a terminating chase
    on (D, Σ) maps homomorphically into every model of D and Σ.
    """
    # Convert the source's nulls to variables and reuse the CQ matcher.
    null_vars: Dict[Null, Variable] = {}
    patterns: List[Atom] = []
    for fact in source:
        terms: List[Term] = []
        for t in fact.terms:
            if isinstance(t, Null):
                var = null_vars.get(t)
                if var is None:
                    var = Variable(f"__null_{t.index}")
                    null_vars[t] = var
                terms.append(var)
            else:
                terms.append(t)
        patterns.append(Atom(fact.predicate, terms))
    assignment = next(homomorphisms(patterns, target), None)
    if assignment is None:
        return None
    mapping: Dict[Term, Term] = {}
    for null, var in null_vars.items():
        mapping[null] = assignment[var]
    for term in source.active_domain():
        if not isinstance(term, Null):
            mapping[term] = term
    return mapping


def is_homomorphically_equivalent(left: Instance, right: Instance) -> bool:
    """True iff homomorphisms exist in both directions."""
    return (
        instance_homomorphism(left, right) is not None
        and instance_homomorphism(right, left) is not None
    )
