"""Relational schemas: the finite signature a program or database is over."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from .atoms import Position, Predicate
from .rules import TGD


class Schema:
    """A finite set of predicates, addressable by name.

    Schemas are immutable.  :meth:`from_rules` infers the schema of a
    program; :meth:`merge` composes schemas (used by the looping
    operator when it extends a program with auxiliary predicates).
    """

    __slots__ = ("_by_name",)

    def __init__(self, predicates: Iterable[Predicate] = ()):
        by_name: Dict[str, Predicate] = {}
        for pred in predicates:
            prev = by_name.get(pred.name)
            if prev is not None and prev != pred:
                raise ValueError(
                    f"conflicting declarations for predicate {pred.name!r}: "
                    f"arity {prev.arity} vs {pred.arity}"
                )
            by_name[pred.name] = pred
        self._by_name = dict(sorted(by_name.items()))

    @classmethod
    def from_rules(cls, rules: Iterable[TGD]) -> "Schema":
        """The schema consisting of every predicate used by ``rules``."""
        preds: List[Predicate] = []
        for rule in rules:
            preds.extend(rule.predicates())
        return cls(preds)

    @classmethod
    def from_atoms(cls, atoms: Iterable) -> "Schema":
        """The schema consisting of every predicate used by ``atoms``."""
        return cls(a.predicate for a in atoms)

    # -- container protocol -----------------------------------------------

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Predicate):
            return self._by_name.get(item.name) == item
        if isinstance(item, str):
            return item in self._by_name
        return False

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._by_name == other._by_name

    def __hash__(self) -> int:
        return hash(tuple(self._by_name.values()))

    def __repr__(self) -> str:
        inner = ", ".join(str(p) for p in self)
        return f"Schema({{{inner}}})"

    # -- accessors --------------------------------------------------------

    def get(self, name: str) -> Optional[Predicate]:
        """The predicate called ``name``, or ``None``."""
        return self._by_name.get(name)

    def predicates(self) -> Tuple[Predicate, ...]:
        """All predicates, sorted by name."""
        return tuple(self._by_name.values())

    def positions(self) -> Tuple[Position, ...]:
        """All positions of all predicates."""
        out: List[Position] = []
        for pred in self:
            out.extend(pred.positions())
        return tuple(out)

    def max_arity(self) -> int:
        """The largest arity in the schema (0 for the empty schema)."""
        return max((p.arity for p in self), default=0)

    def merge(self, other: "Schema") -> "Schema":
        """The union schema; raises on arity conflicts."""
        return Schema(list(self) + list(other))

    def predicate_names(self) -> FrozenSet[str]:
        """The set of predicate names."""
        return frozenset(self._by_name)
